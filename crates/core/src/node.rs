//! One service's Synapse runtime and the ecosystem wiring harness.

use crate::api::{Publication, Subscription};
use crate::config::SynapseConfig;
use crate::context::{self, TxBuffer};
use crate::deps::DepName;
use crate::durability::{NodeSnapshot, SnapshotStore};
use crate::publisher::{Publisher, PublisherStats};
use crate::semantics::DeliveryMode;
use crate::subscriber::{ProcessError, Subscriber, SubscriberStats};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use synapse_broker::{Broker, Delivery, QueueConfig, QueueState, RecoveryReport, WalConfig};
use synapse_db::DbError;
use synapse_model::Id;
use synapse_orm::{Adapter, Orm, OrmError};
use synapse_telemetry::{mono_nanos, Telemetry, TelemetrySnapshot};
use synapse_versionstore::{DepKey, GenerationStore, VersionStore};

/// Coarse phase of the bootstrap state machine — `Copy`-cheap so it can
/// ride in [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootstrapPhase {
    /// No bootstrap running (and none has completed since the last reset).
    #[default]
    Idle,
    /// Step 1: bulk version-snapshot transfer.
    Snapshot,
    /// Step 2: chunked object copy.
    Copying,
    /// Step 3: draining the backlog published meanwhile.
    Draining,
    /// Bootstrap completed; the node serves live traffic.
    Live,
}

/// The bootstrap state machine: Idle → Snapshot → Copying{model, chunk} →
/// Draining → Live, falling back to Idle when an attempt fails. The rich
/// variant carries which model/chunk the copier is on; tests hook
/// [`SynapseNode::set_bootstrap_probe`] on transitions to inject faults at
/// exact phases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BootstrapState {
    /// No bootstrap running.
    #[default]
    Idle,
    /// Step 1: bulk version-snapshot transfer.
    Snapshot,
    /// Step 2: copying `model`, currently on 0-based chunk `chunk`.
    Copying {
        /// Model being copied.
        model: String,
        /// 0-based chunk index within this attempt.
        chunk: u64,
    },
    /// Step 3: draining the backlog.
    Draining,
    /// Bootstrap completed.
    Live,
}

impl BootstrapState {
    /// The coarse phase of this state.
    pub fn phase(&self) -> BootstrapPhase {
        match self {
            BootstrapState::Idle => BootstrapPhase::Idle,
            BootstrapState::Snapshot => BootstrapPhase::Snapshot,
            BootstrapState::Copying { .. } => BootstrapPhase::Copying,
            BootstrapState::Draining => BootstrapPhase::Draining,
            BootstrapState::Live => BootstrapPhase::Live,
        }
    }
}

/// Bootstrap attempt/retry/resume accounting, surfaced through
/// [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BootstrapStats {
    /// Current coarse phase.
    pub phase: BootstrapPhase,
    /// `bootstrap_from` invocations (completed or not).
    pub attempts: u64,
    /// Completed bootstraps (same counter as [`NodeStats::bootstraps`]).
    pub completions: u64,
    /// Transient step failures absorbed by the retry policy (chunk copies,
    /// snapshot transfers) rather than failing the attempt.
    pub retries: u64,
    /// Models whose copy resumed from a surviving watermark instead of
    /// starting over.
    pub resumes: u64,
    /// Chunks committed (watermark advanced) across all attempts.
    pub chunks_copied: u64,
    /// Records persisted by the copier.
    pub records_copied: u64,
    /// Copied records discarded because the live stream had already
    /// delivered an equal-or-newer version.
    pub records_reconciled: u64,
}

/// Observer of bootstrap state transitions (fault-injection hook).
type BootstrapProbe = Box<dyn Fn(&BootstrapState) + Send + Sync>;

/// Shared bootstrap bookkeeping: the state machine, its transition probe,
/// and the attempt/retry/resume counters.
#[derive(Default)]
struct BootstrapTracker {
    state: RwLock<BootstrapState>,
    probe: RwLock<Option<BootstrapProbe>>,
    attempts: AtomicU64,
    retries: AtomicU64,
    resumes: AtomicU64,
    chunks_copied: AtomicU64,
    records_copied: AtomicU64,
    records_reconciled: AtomicU64,
}

impl BootstrapTracker {
    /// Moves the state machine and notifies the probe (outside the state
    /// lock, so a probe may read the state or inject faults freely).
    fn transition(&self, next: BootstrapState) {
        *self.state.write() = next.clone();
        if let Some(probe) = self.probe.read().as_ref() {
            probe(&next);
        }
    }
}

/// RAII guard around one bootstrap attempt: sets the ORM bootstrap flag on
/// entry and clears it on *every* exit path — the `?` early-returns in
/// steps 1–2 used to leak the flag and permanently wedge the node in
/// bootstrap mode. A drop without [`BootstrapGuard::complete`] also walks
/// the state machine back to Idle, so a failed attempt leaves the node
/// writable and re-enterable.
struct BootstrapGuard<'a> {
    node: &'a SynapseNode,
    completed: bool,
}

impl<'a> BootstrapGuard<'a> {
    fn new(node: &'a SynapseNode) -> Self {
        node.orm.set_bootstrap(true);
        BootstrapGuard {
            node,
            completed: false,
        }
    }

    /// Marks the attempt successful: the flag still clears on drop, but
    /// the state machine is left to the caller (which moves it to Live).
    fn complete(mut self) {
        self.completed = true;
    }
}

impl Drop for BootstrapGuard<'_> {
    fn drop(&mut self) {
        self.node.orm.set_bootstrap(false);
        if !self.completed {
            self.node.bootstrap.transition(BootstrapState::Idle);
        }
    }
}

/// One application's Synapse runtime: its ORM, publisher, subscriber, and
/// version stores, bound to the shared broker.
pub struct SynapseNode {
    config: SynapseConfig,
    orm: Arc<Orm>,
    broker: Broker,
    pub_store: Arc<VersionStore>,
    sub_store: Arc<VersionStore>,
    generations: GenerationStore,
    publications: Arc<RwLock<BTreeMap<String, Publication>>>,
    subscriptions: Arc<RwLock<Vec<Subscription>>>,
    publisher: Arc<Publisher>,
    subscriber: Arc<Subscriber>,
    publisher_modes: Arc<RwLock<HashMap<String, DeliveryMode>>>,
    /// The node's telemetry plane: staged latency histograms, counters,
    /// and the structured event ring, shared by publisher and subscriber.
    telemetry: Arc<Telemetry>,
    /// Completed (re-)bootstraps — the recovery counter of §4.4.
    bootstraps: AtomicU64,
    /// Bootstrap state machine, probe, and counters.
    bootstrap: BootstrapTracker,
    /// Version-store snapshot store, when the durability plane is on.
    snapshots: Option<SnapshotStore>,
    /// Subscriber-processed count at the last persisted snapshot — the
    /// reference point of the driver-clocked snapshot cadence.
    snapshot_marker: AtomicU64,
}

/// One node's counters across the whole pipeline, aggregated for fault
/// accounting: everything a soak test needs to prove zero silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Publisher-side counters (publishes, retries, journal exhaustions,
    /// generation bumps).
    pub publisher: PublisherStats,
    /// Subscriber-side counters (processed, retries, redeliveries,
    /// dead-lettered, poison).
    pub subscriber: SubscriberStats,
    /// Payloads journaled but not yet confirmed at the broker.
    pub journaled: usize,
    /// Deliveries in this node's dead-letter store.
    pub dead_lettered: usize,
    /// Completed (re-)bootstraps.
    pub bootstraps: u64,
    /// Bootstrap state-machine phase and attempt/retry/resume counters.
    pub bootstrap: BootstrapStats,
}

impl SynapseNode {
    /// Creates a node for `config.app` over `adapter`, attached to
    /// `broker`. Declares the app's queue and installs the publisher as a
    /// query observer on the ORM.
    pub fn new(config: SynapseConfig, adapter: Arc<dyn Adapter>, broker: Broker) -> Arc<Self> {
        let orm = Arc::new(Orm::new(config.app.clone(), adapter));
        let pub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let sub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let generations = GenerationStore::new();
        let publications = Arc::new(RwLock::new(BTreeMap::new()));
        let subscriptions = Arc::new(RwLock::new(Vec::new()));
        let publisher_modes = Arc::new(RwLock::new(HashMap::new()));
        let telemetry = Arc::new(Telemetry::new(config.telemetry_enabled));

        // Recover version state *before* any traffic: with the durability
        // plane on, load the latest snapshot into both stores so causal
        // waits and bootstrap watermarks see pre-crash state. The broker
        // has already replayed its WAL by this point (Broker::open_durable
        // runs before nodes are built), so this pass completes the node's
        // half of recovery. Store errors degrade to a memory-only node
        // with a counter raised, never a panic.
        let snapshots = config.durability.dir.as_ref().and_then(|root| {
            let t0 = mono_nanos();
            let counters = telemetry.counters();
            let store = match SnapshotStore::open(root.join("snapshots")) {
                Ok(store) => store,
                Err(_) => {
                    counters.counter("recovery.snapshot_open_errors").bump();
                    return None;
                }
            };
            match store.load_latest() {
                Ok(Some(snapshot)) => {
                    let entries =
                        (snapshot.pub_entries.len() + snapshot.sub_entries.len()) as u64;
                    let _ = pub_store.load_dump(&snapshot.pub_entries);
                    let _ = sub_store.load_dump(&snapshot.sub_entries);
                    counters.counter("recovery.snapshots_loaded").bump();
                    counters.counter("recovery.snapshot_entries").add(entries);
                }
                Ok(None) => {}
                Err(_) => counters.counter("recovery.snapshot_load_errors").bump(),
            }
            let skipped = store.stats().skipped_corrupt;
            if skipped > 0 {
                counters
                    .counter("recovery.snapshots_skipped_corrupt")
                    .add(skipped);
            }
            telemetry.record_recovery(mono_nanos().saturating_sub(t0));
            Some(store)
        });
        if let Some(report) = broker.recovery_report() {
            let counters = telemetry.counters();
            counters
                .counter("recovery.wal_replayed_entries")
                .add(report.replayed_entries);
            counters
                .counter("recovery.wal_torn_entries_dropped")
                .add(report.torn_entries_dropped);
            counters
                .counter("recovery.queues_recovered")
                .add(report.queues_recovered);
            counters
                .counter("recovery.messages_recovered")
                .add(report.messages_recovered);
        }

        broker.declare_queue(
            &config.app,
            QueueConfig {
                max_len: config.queue_max_len,
                partitions: config.queue_partitions,
            },
        );

        let publisher = Arc::new(Publisher::new(
            config.app.clone(),
            config.publisher_mode,
            config.dep_space,
            pub_store.clone(),
            sub_store.clone(),
            broker.clone(),
            generations.clone(),
            publications.clone(),
            subscriptions.clone(),
            config.retry,
            telemetry.clone(),
        ));
        orm.observe(publisher.clone());

        let subscriber = Arc::new(Subscriber::new(
            &config,
            orm.clone(),
            sub_store.clone(),
            subscriptions.clone(),
            publisher_modes.clone(),
            broker.clone(),
            telemetry.clone(),
        ));

        Arc::new(SynapseNode {
            config,
            orm,
            broker,
            pub_store,
            sub_store,
            generations,
            publications,
            subscriptions,
            publisher,
            subscriber,
            publisher_modes,
            telemetry,
            bootstraps: AtomicU64::new(0),
            bootstrap: BootstrapTracker::default(),
            snapshots,
            snapshot_marker: AtomicU64::new(0),
        })
    }

    /// The application name.
    pub fn app(&self) -> &str {
        &self.config.app
    }

    /// The node's configuration.
    pub fn config(&self) -> &SynapseConfig {
        &self.config
    }

    /// The node's ORM (models, CRUD, callbacks, virtual attributes).
    pub fn orm(&self) -> &Arc<Orm> {
        &self.orm
    }

    /// The publisher runtime (stats, failure injection, recovery).
    pub fn publisher(&self) -> &Arc<Publisher> {
        &self.publisher
    }

    /// The subscriber runtime (stats, manual processing).
    pub fn subscriber(&self) -> &Arc<Subscriber> {
        &self.subscriber
    }

    /// The publisher-side version store.
    pub fn pub_store(&self) -> &Arc<VersionStore> {
        &self.pub_store
    }

    /// The subscriber-side version store.
    pub fn sub_store(&self) -> &Arc<VersionStore> {
        &self.sub_store
    }

    /// The publisher's generation store.
    pub fn generations(&self) -> &GenerationStore {
        &self.generations
    }

    /// Declares a publication (the `publish do … end` block).
    ///
    /// Enforces the decorator rule of §3.1: a service cannot publish
    /// attributes it subscribes to.
    pub fn publish(&self, publication: Publication) -> Result<(), OrmError> {
        let subs = self.subscriptions.read();
        if let Some(sub) = subs.iter().find(|s| s.model == publication.model) {
            for f in &publication.fields {
                if sub.local_fields().contains(&f.as_str()) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot publish subscribed attribute {}.{}",
                        self.app(),
                        publication.model,
                        f
                    )));
                }
            }
        }
        drop(subs);
        self.publications
            .write()
            .insert(publication.model.clone(), publication);
        Ok(())
    }

    /// Declares a subscription (the `subscribe from: … do … end` block) and
    /// binds this app's queue to the publisher's exchange.
    pub fn subscribe(&self, subscription: Subscription) -> Result<(), OrmError> {
        // Decorator rule, checked from the other side.
        let pubs = self.publications.read();
        if let Some(publication) = pubs.get(&subscription.model) {
            for f in subscription.local_fields() {
                if publication.fields.iter().any(|pf| pf == f) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot subscribe to attribute {}.{} it publishes",
                        self.app(),
                        subscription.model,
                        f
                    )));
                }
            }
        }
        drop(pubs);
        self.broker.bind(&subscription.from, self.app());
        self.publisher_modes
            .write()
            .entry(subscription.from.clone())
            .or_insert(DeliveryMode::Causal);
        self.subscriptions.write().push(subscription);
        Ok(())
    }

    /// Records the delivery mode `pub_app` supports (done automatically by
    /// [`Ecosystem::connect`]).
    pub fn set_publisher_mode(&self, pub_app: &str, mode: DeliveryMode) {
        self.publisher_modes
            .write()
            .insert(pub_app.to_owned(), mode);
    }

    /// All declared publications.
    pub fn publications(&self) -> Vec<Publication> {
        self.publications.read().values().cloned().collect()
    }

    /// All declared subscriptions.
    pub fn subscriptions(&self) -> Vec<Subscription> {
        self.subscriptions.read().clone()
    }

    /// Starts the subscriber worker pool.
    pub fn start(&self) {
        self.subscriber.start(self.config.subscriber_workers);
    }

    /// Stops the subscriber workers.
    pub fn stop(&self) {
        self.subscriber.stop();
    }

    /// Runs `f` with all its writes combined into a single message (§4.2:
    /// "all writes within a single transaction are combined into a single
    /// message").
    pub fn transaction<R>(&self, f: impl FnOnce() -> R) -> R {
        let opened_scope = !context::in_scope();
        let run = || {
            context::scope_mut(|s| s.tx_buffer = Some(TxBuffer::default()));
            let out = f();
            let buffer = context::scope_mut(|s| s.tx_buffer.take()).flatten();
            if let Some(buffer) = buffer {
                self.publisher.flush_transaction(buffer);
            }
            out
        };
        if opened_scope {
            context::with_scope(run).0
        } else {
            run()
        }
    }

    /// Publisher counters.
    pub fn publisher_stats(&self) -> PublisherStats {
        self.publisher.stats()
    }

    /// Subscriber counters.
    pub fn subscriber_stats(&self) -> SubscriberStats {
        self.subscriber.stats()
    }

    /// The node's telemetry plane (staged latency histograms, counters,
    /// event ring, controller-overhead table).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One coherent export of the telemetry plane: the staged
    /// visibility-latency histograms and delivered counts per mode, plus
    /// every layer's counters folded into the counter list — publisher and
    /// subscriber pipeline counters, ORM intercept counts, and the version
    /// stores' apply/wait timing — so a single snapshot answers both "how
    /// late" and "how much" for this node.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        let stats = self.stats();
        let mut extra: Vec<(String, u64)> = vec![
            ("publisher.messages_published".into(), stats.publisher.messages_published),
            ("publisher.operations".into(), stats.publisher.operations),
            ("publisher.publish_retries".into(), stats.publisher.publish_retries),
            ("publisher.publish_failures".into(), stats.publisher.publish_failures),
            ("publisher.journaled".into(), stats.journaled as u64),
            ("subscriber.messages_processed".into(), stats.subscriber.messages_processed),
            ("subscriber.ops_applied".into(), stats.subscriber.ops_applied),
            ("subscriber.ops_stale".into(), stats.subscriber.ops_stale),
            ("subscriber.dep_timeouts".into(), stats.subscriber.dep_timeouts),
            ("subscriber.retries".into(), stats.subscriber.retries),
            ("subscriber.dead_lettered".into(), stats.subscriber.dead_lettered),
            ("subscriber.steals".into(), stats.subscriber.steals),
            ("subscriber.messages_stolen".into(), stats.subscriber.messages_stolen),
            ("orm.writes_intercepted".into(), self.orm.writes_intercepted()),
            ("orm.reads_observed".into(), self.orm.reads_observed()),
        ];
        // Delivery-plane gauges and counters: the queue-depth reads are
        // lock-free (relaxed atomics maintained by the partitions), so this
        // poll never contends with the publish/pop hot path.
        let app = &self.config.app;
        if let Some(depth) = self.broker.queue_len(app) {
            extra.push(("broker.queue_depth".into(), depth as u64));
        }
        if let Some(unacked) = self.broker.queue_unacked_len(app) {
            extra.push(("broker.queue_unacked".into(), unacked as u64));
        }
        if let Some(depths) = self.broker.partition_depths(app) {
            for (i, d) in depths.iter().enumerate() {
                extra.push((format!("broker.partition_depth.{i}"), *d as u64));
            }
        }
        let broker_stats = self.broker.stats();
        extra.push(("broker.wakeups".into(), broker_stats.wakeups));
        extra.push(("broker.steals".into(), broker_stats.steals));
        extra.push(("broker.stolen".into(), broker_stats.stolen));
        for (store, name) in [(&self.pub_store, "pub_store"), (&self.sub_store, "sub_store")] {
            let timing = store.timing();
            extra.push((format!("{name}.applies"), timing.applies));
            extra.push((format!("{name}.apply_nanos"), timing.apply_nanos));
            extra.push((format!("{name}.waits"), timing.waits));
            extra.push((format!("{name}.wait_nanos"), timing.wait_nanos));
        }
        // Durability-plane counters: live WAL accounting from the broker
        // and the snapshot store's lifetime counters. (The `recovery.*`
        // counters were bumped into the registry at construction, so they
        // ride in through the registry snapshot.)
        if let Some(ws) = self.broker.wal_stats() {
            extra.push(("wal.appends".into(), ws.appends));
            extra.push(("wal.bytes_appended".into(), ws.bytes_appended));
            extra.push(("wal.fsyncs".into(), ws.fsyncs));
            extra.push(("wal.segments_rolled".into(), ws.segments_rolled));
            extra.push(("wal.segments_removed".into(), ws.segments_removed));
            extra.push(("wal.group_commits".into(), ws.group_commits));
        }
        if let Some(gs) = self.broker.wal_group_size() {
            extra.push(("wal.group_size_p50".into(), gs.p50()));
            extra.push(("wal.group_size_p99".into(), gs.p99()));
        }
        if let Some(cw) = self.broker.wal_commit_wait() {
            extra.push(("wal.commit_wait_p50_nanos".into(), cw.p50()));
            extra.push(("wal.commit_wait_p99_nanos".into(), cw.p99()));
        }
        if let Some(store) = &self.snapshots {
            let s = store.stats();
            extra.push(("durability.snapshots_persisted".into(), s.persisted));
            extra.push(("durability.snapshots_interrupted".into(), s.interrupted));
        }
        snap.counters.extend(extra);
        snap.counters.sort();
        snap
    }

    /// The version-store snapshot store, when the durability plane is on
    /// (fault hooks and lifetime counters live there).
    pub fn snapshot_store(&self) -> Option<&SnapshotStore> {
        self.snapshots.as_ref()
    }

    /// Persists a [`NodeSnapshot`] of both version stores — including the
    /// bootstrap watermarks riding in the subscriber store — plus the
    /// broker's current WAL position. Returns the assigned sequence, or
    /// `Ok(0)` as a no-op when durability is off (mirroring
    /// [`Broker::checkpoint`]).
    pub fn persist_snapshot(&self) -> io::Result<u64> {
        let Some(store) = &self.snapshots else {
            return Ok(0);
        };
        let pub_entries = self
            .pub_store
            .dump()
            .map_err(|e| io::Error::other(format!("pub store dump failed: {e:?}")))?;
        let sub_entries = self
            .sub_store
            .dump()
            .map_err(|e| io::Error::other(format!("sub store dump failed: {e:?}")))?;
        let snapshot = NodeSnapshot {
            seq: 0, // assigned by the store
            wal_pos: self.broker.wal_position().unwrap_or_default(),
            pub_entries,
            sub_entries,
        };
        store.persist(&snapshot)
    }

    /// Driver-clocked snapshot cadence: persists a snapshot once the
    /// subscriber has processed `durability.snapshot_every` more messages
    /// since the last one. Message-count-based rather than wall-clock, so
    /// seeded runs snapshot at identical points (see DESIGN.md). Returns
    /// the persisted sequence, if one was taken; persist errors raise a
    /// counter and leave the marker unmoved, so the next call retries.
    pub fn maybe_snapshot(&self) -> Option<u64> {
        let every = self.config.durability.snapshot_every?;
        self.snapshots.as_ref()?;
        let processed = self.subscriber.stats().messages_processed;
        let marker = self.snapshot_marker.load(Ordering::Relaxed);
        if processed.saturating_sub(marker) < every.max(1) {
            return None;
        }
        match self.persist_snapshot() {
            Ok(seq) => {
                self.snapshot_marker.store(processed, Ordering::Relaxed);
                Some(seq)
            }
            Err(_) => {
                self.telemetry
                    .counters()
                    .counter("durability.snapshot_errors")
                    .bump();
                None
            }
        }
    }

    /// Aggregated pipeline counters for fault accounting.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            publisher: self.publisher.stats(),
            subscriber: self.subscriber.stats(),
            journaled: self.publisher.journal_len(),
            dead_lettered: self.broker.dead_letter_len(self.app()).unwrap_or(0),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
            bootstrap: self.bootstrap_stats(),
        }
    }

    /// Bootstrap state-machine phase and counters.
    pub fn bootstrap_stats(&self) -> BootstrapStats {
        BootstrapStats {
            phase: self.bootstrap.state.read().phase(),
            attempts: self.bootstrap.attempts.load(Ordering::Relaxed),
            completions: self.bootstraps.load(Ordering::Relaxed),
            retries: self.bootstrap.retries.load(Ordering::Relaxed),
            resumes: self.bootstrap.resumes.load(Ordering::Relaxed),
            chunks_copied: self.bootstrap.chunks_copied.load(Ordering::Relaxed),
            records_copied: self.bootstrap.records_copied.load(Ordering::Relaxed),
            records_reconciled: self.bootstrap.records_reconciled.load(Ordering::Relaxed),
        }
    }

    /// The current bootstrap state (rich variant, with model/chunk).
    pub fn bootstrap_state(&self) -> BootstrapState {
        self.bootstrap.state.read().clone()
    }

    /// Installs a probe called on every bootstrap state transition — the
    /// fault plane's bootstrap-phase hook: a test can kill a shard or
    /// restart the broker exactly when the copier enters a given chunk.
    pub fn set_bootstrap_probe(&self, probe: impl Fn(&BootstrapState) + Send + Sync + 'static) {
        *self.bootstrap.probe.write() = Some(Box::new(probe));
    }

    /// Removes the bootstrap transition probe.
    pub fn clear_bootstrap_probe(&self) {
        *self.bootstrap.probe.write() = None;
    }

    /// Snapshot of this node's dead-letter store (consumed-but-unapplied
    /// deliveries, §6.5 hardening).
    pub fn dead_letters(&self) -> Vec<Delivery> {
        self.broker.dead_letters(self.app()).unwrap_or_default()
    }

    /// Whether this node's queue has been decommissioned (§4.4).
    pub fn is_decommissioned(&self) -> bool {
        self.broker.queue_state(self.app()) == Some(QueueState::Decommissioned)
    }

    /// Sets the bootstrap flag *before* starting the workers, then runs the
    /// three-step bootstrap — the ordering a fresh subscriber needs so that
    /// no backlog message is processed outside bootstrap mode (Fig. 2's
    /// `Synapse.bootstrap?` contract).
    pub fn start_and_bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        self.orm.set_bootstrap(true);
        self.start();
        self.bootstrap_from(publisher)
    }

    /// Three-step bootstrap from a publisher node (§4.4), rebuilt as a
    /// chunked, watermarked, fault-survivable recovery path (the shape of
    /// DBLog's watermark-based snapshots). Also used for *partial*
    /// bootstrap after a decommission or subscriber version-store loss —
    /// the queue is reinstated and the store revived first. Workers must
    /// already be running (or use
    /// [`SynapseNode::start_and_bootstrap_from`]).
    ///
    /// Fault posture:
    /// - The ORM bootstrap flag is held by an RAII guard, so every exit
    ///   path — including transient-fault exhaustion mid-copy — leaves the
    ///   node writable.
    /// - Step 2 copies in chunks of `config.bootstrap_chunk_size` records,
    ///   committing a per-model watermark (last copied id) to the
    ///   subscriber version store after each chunk. A transient engine or
    ///   store fault retries the *chunk* under `config.retry` instead of
    ///   aborting the bootstrap; if the attempt still fails, the
    ///   watermarks survive and the next `bootstrap_from` resumes after
    ///   the last committed chunk.
    /// - Live messages delivered between chunks are reconciled by version
    ///   comparison (each copied record carries the publisher's version
    ///   for the object), so concurrent writes are neither dropped nor
    ///   double-applied.
    pub fn bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        let guard = BootstrapGuard::new(self);
        self.bootstrap.attempts.fetch_add(1, Ordering::Relaxed);
        let reinstated = if self.is_decommissioned() {
            self.broker.reinstate_queue(self.app())
        } else {
            false
        };
        if self.sub_store.is_dead() {
            self.sub_store.revive();
        }
        if reinstated {
            // The decommission discarded the live backlog, so watermarks
            // from earlier attempts no longer cover writes published since
            // those chunks were copied: restart the copy from scratch.
            self.clear_bootstrap_watermarks(publisher)?;
        }

        // Step 1: bulk-load the publisher's current versions.
        self.bootstrap.transition(BootstrapState::Snapshot);
        let snapshot = self.retry_transient(|| {
            publisher
                .pub_store
                .snapshot()
                .map_err(|_| OrmError::Db(DbError::Unavailable))
        })?;
        self.retry_transient(|| {
            self.subscriber
                .load_version_snapshot(&snapshot)
                .map_err(|_| OrmError::Db(DbError::Unavailable))
        })?;

        // Step 2: chunked copy of all currently published objects. The
        // subscription/publication locks are held only long enough to
        // collect the matching pairs — not across the paged reads and
        // marshalling (the old code pinned the `subscriptions` read lock
        // for the whole full-table copy).
        let pairs: Vec<(String, Publication)> = {
            let subs = self.subscriptions.read();
            let pubs = publisher.publications.read();
            subs.iter()
                .filter(|s| s.from == publisher.app())
                .filter_map(|s| pubs.get(&s.model).map(|p| (s.model.clone(), p.clone())))
                .collect()
        };
        for (model, publication) in &pairs {
            if publication.ephemeral {
                continue;
            }
            let wm_key = self
                .config
                .dep_space
                .key(&DepName::bootstrap_watermark(publisher.app(), model));
            let mut after = self.retry_transient(|| {
                self.sub_store
                    .latest_version(wm_key)
                    .map_err(|_| OrmError::Db(DbError::Unavailable))
            })?;
            if after > 0 {
                self.bootstrap.resumes.fetch_add(1, Ordering::Relaxed);
            }
            let mut chunk = 0u64;
            loop {
                self.bootstrap.transition(BootstrapState::Copying {
                    model: model.clone(),
                    chunk,
                });
                let copied = self.retry_transient(|| {
                    self.copy_chunk(publisher, model, publication, wm_key, after)
                })?;
                match copied {
                    Some(last) => {
                        after = last;
                        chunk += 1;
                        self.bootstrap.chunks_copied.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }

        // Step 3: drain messages published meanwhile. Workers may already
        // be running; otherwise the caller starts them and the flag clears
        // once the backlog is gone.
        self.bootstrap.transition(BootstrapState::Draining);
        if !self.subscriber.drain(self.config.bootstrap_drain_timeout) {
            // The guard clears the flag and resets the state machine; the
            // watermarks survive, so the next attempt resumes the copy
            // instead of redoing it.
            return Err(OrmError::Restriction(
                "bootstrap did not drain the backlog in time".into(),
            ));
        }
        // Watermarks are resume state for *failed* attempts only: a future
        // bootstrap must re-copy from the start (rows copied this time may
        // change again before then).
        self.clear_bootstrap_watermarks(publisher)?;
        guard.complete();
        self.bootstrap.transition(BootstrapState::Live);
        self.bootstraps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Copies the next chunk of `model` after id `after`. Returns the last
    /// id copied (the new watermark, already committed), or `None` when the
    /// table is exhausted.
    ///
    /// Each record's publisher-side version is captured *before* the row
    /// is re-read for marshalling. The carried marker is therefore never
    /// newer than the copied data: a concurrent write lands with a
    /// strictly higher version and overwrites the copy when its live
    /// message arrives, while a copy racing behind the live stream is
    /// discarded as stale. Capturing versions after reading the rows would
    /// allow the fatal inverse — stale data carrying a marker equal to a
    /// newer live write, regressing the replica permanently.
    fn copy_chunk(
        &self,
        publisher: &SynapseNode,
        model: &str,
        publication: &Publication,
        wm_key: DepKey,
        after: u64,
    ) -> Result<Option<u64>, OrmError> {
        let chunk_size = self.config.bootstrap_chunk_size.max(1);
        let page = publisher.orm.all_after(model, Id(after), chunk_size)?;
        let last = match page.last() {
            Some(record) => record.id.raw(),
            None => return Ok(None),
        };
        let mut batch = Vec::with_capacity(page.len());
        for record in &page {
            let key = publisher
                .config
                .dep_space
                .key(&DepName::object(publisher.app(), model, record.id));
            let version = publisher
                .pub_store
                .latest_version(key)
                .map_err(|_| OrmError::Db(DbError::Unavailable))?;
            // Re-read the row now that its version floor is pinned; a row
            // deleted meanwhile is skipped (its destroy message is in the
            // live stream).
            let Some(fresh) = publisher.orm.find(model, record.id)? else {
                continue;
            };
            // Marshal through the publisher so only published (and
            // virtual) attributes cross, exactly as live updates do. The
            // marker mirrors the write-dependency convention (`version-1`
            // for the write that produced this state).
            let marshalled =
                publisher
                    .publisher
                    .marshal_for_bootstrap(&publisher.orm, publication, &fresh);
            batch.push((marshalled, version.saturating_sub(1)));
        }
        let load = self
            .subscriber
            .load_objects(publisher.app(), model, &batch)
            .map_err(|e| match e {
                ProcessError::Transient(_) => OrmError::Db(DbError::Unavailable),
                ProcessError::Poison(msg) => OrmError::Restriction(msg),
            })?;
        self.bootstrap
            .records_copied
            .fetch_add(load.applied, Ordering::Relaxed);
        self.bootstrap
            .records_reconciled
            .fetch_add(load.reconciled, Ordering::Relaxed);
        self.sub_store
            .load_watermark(wm_key, last)
            .map_err(|_| OrmError::Db(DbError::Unavailable))?;
        Ok(Some(last))
    }

    /// Drops the per-model bootstrap watermarks for `publisher`'s models.
    fn clear_bootstrap_watermarks(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        let models: Vec<String> = self
            .subscriptions
            .read()
            .iter()
            .filter(|s| s.from == publisher.app())
            .map(|s| s.model.clone())
            .collect();
        for model in models {
            let key = self
                .config
                .dep_space
                .key(&DepName::bootstrap_watermark(publisher.app(), &model));
            self.retry_transient(|| {
                self.sub_store
                    .clear_watermark(key)
                    .map_err(|_| OrmError::Db(DbError::Unavailable))
            })?;
        }
        Ok(())
    }

    /// Runs one bootstrap step, retrying transient failures (dead store,
    /// unavailable engine) under the node's [`RetryPolicy`] with its
    /// deterministic backoff; deterministic errors fail immediately.
    ///
    /// [`RetryPolicy`]: crate::config::RetryPolicy
    fn retry_transient<T>(
        &self,
        mut step: impl FnMut() -> Result<T, OrmError>,
    ) -> Result<T, OrmError> {
        let mut failures = 0u32;
        loop {
            match step() {
                Ok(v) => return Ok(v),
                Err(e @ OrmError::Db(DbError::Unavailable)) => {
                    failures += 1;
                    if self.config.retry.exhausted(failures) {
                        return Err(e);
                    }
                    self.bootstrap.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.config.retry.backoff(failures));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The deployment harness: a shared broker and a set of nodes, with static
/// cross-service checks (§4.5).
#[derive(Default)]
pub struct Ecosystem {
    broker: Broker,
    nodes: RwLock<BTreeMap<String, Arc<SynapseNode>>>,
}

impl Ecosystem {
    /// Creates an empty ecosystem with its own broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ecosystem whose broker logs to a durable WAL rooted at
    /// `cfg.dir`, replaying any existing log first — the restart entry
    /// point of the durability plane. Returns the recovery report so
    /// callers can assert exactly what the restart recovered.
    pub fn new_durable(cfg: WalConfig) -> io::Result<(Ecosystem, RecoveryReport)> {
        let (broker, report) = Broker::open_durable(cfg)?;
        Ok((Ecosystem::with_broker(broker), report))
    }

    /// Creates an ecosystem around an existing broker (one opened durable
    /// by the caller, or shared with another harness).
    pub fn with_broker(broker: Broker) -> Ecosystem {
        Ecosystem {
            broker,
            nodes: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shared broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Creates and registers a node.
    pub fn add_node(&self, config: SynapseConfig, adapter: Arc<dyn Adapter>) -> Arc<SynapseNode> {
        let node = SynapseNode::new(config, adapter, self.broker.clone());
        self.nodes
            .write()
            .insert(node.app().to_owned(), node.clone());
        node
    }

    /// Looks up a node by app name.
    pub fn node(&self, app: &str) -> Option<Arc<SynapseNode>> {
        self.nodes.read().get(app).cloned()
    }

    /// Propagates publisher delivery modes to subscribers and runs the
    /// static checks; returns the list of violations (empty = ok).
    ///
    /// This is the paper's static checking: "Synapse statically checks that
    /// subscribers don't attempt to subscribe to models and attributes that
    /// are unpublished, providing warnings immediately" (§4.5).
    pub fn connect(&self) -> Vec<String> {
        let nodes = self.nodes.read();
        let mut violations = Vec::new();
        for node in nodes.values() {
            for sub in node.subscriptions() {
                match nodes.get(&sub.from) {
                    None => violations.push(format!(
                        "{}: subscribes to {} from unknown app {}",
                        node.app(),
                        sub.model,
                        sub.from
                    )),
                    Some(publisher) => {
                        node.set_publisher_mode(sub.from.clone().as_str(), publisher.config().publisher_mode);
                        let pubs = publisher.publications();
                        match pubs.iter().find(|p| p.model == sub.model) {
                            None => violations.push(format!(
                                "{}: subscribes to unpublished model {}/{}",
                                node.app(),
                                sub.from,
                                sub.model
                            )),
                            Some(publication) => {
                                for f in &sub.fields {
                                    if !publication.fields.contains(f) {
                                        violations.push(format!(
                                            "{}: subscribes to unpublished attribute {}/{}.{}",
                                            node.app(),
                                            sub.from,
                                            sub.model,
                                            f
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        violations
    }

    /// Starts every node's subscriber workers.
    pub fn start_all(&self) {
        for node in self.nodes.read().values() {
            node.start();
        }
    }

    /// Stops every node's subscriber workers.
    pub fn stop_all(&self) {
        for node in self.nodes.read().values() {
            node.stop();
        }
    }
}
