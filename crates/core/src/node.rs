//! One service's Synapse runtime and the ecosystem wiring harness.

use crate::api::{Publication, Subscription};
use crate::config::SynapseConfig;
use crate::context::{self, TxBuffer};
use crate::publisher::{Publisher, PublisherStats};
use crate::semantics::DeliveryMode;
use crate::subscriber::{Subscriber, SubscriberStats};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use synapse_broker::{Broker, Delivery, QueueConfig, QueueState};
use synapse_orm::{Adapter, Orm, OrmError};
use synapse_versionstore::{GenerationStore, VersionStore};

/// One application's Synapse runtime: its ORM, publisher, subscriber, and
/// version stores, bound to the shared broker.
pub struct SynapseNode {
    config: SynapseConfig,
    orm: Arc<Orm>,
    broker: Broker,
    pub_store: Arc<VersionStore>,
    sub_store: Arc<VersionStore>,
    generations: GenerationStore,
    publications: Arc<RwLock<BTreeMap<String, Publication>>>,
    subscriptions: Arc<RwLock<Vec<Subscription>>>,
    publisher: Arc<Publisher>,
    subscriber: Arc<Subscriber>,
    publisher_modes: Arc<RwLock<HashMap<String, DeliveryMode>>>,
    /// Completed (re-)bootstraps — the recovery counter of §4.4.
    bootstraps: AtomicU64,
}

/// One node's counters across the whole pipeline, aggregated for fault
/// accounting: everything a soak test needs to prove zero silent loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// Publisher-side counters (publishes, retries, journal exhaustions,
    /// generation bumps).
    pub publisher: PublisherStats,
    /// Subscriber-side counters (processed, retries, redeliveries,
    /// dead-lettered, poison).
    pub subscriber: SubscriberStats,
    /// Payloads journaled but not yet confirmed at the broker.
    pub journaled: usize,
    /// Deliveries in this node's dead-letter store.
    pub dead_lettered: usize,
    /// Completed (re-)bootstraps.
    pub bootstraps: u64,
}

impl SynapseNode {
    /// Creates a node for `config.app` over `adapter`, attached to
    /// `broker`. Declares the app's queue and installs the publisher as a
    /// query observer on the ORM.
    pub fn new(config: SynapseConfig, adapter: Arc<dyn Adapter>, broker: Broker) -> Arc<Self> {
        let orm = Arc::new(Orm::new(config.app.clone(), adapter));
        let pub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let sub_store = Arc::new(VersionStore::new(config.version_store_shards));
        let generations = GenerationStore::new();
        let publications = Arc::new(RwLock::new(BTreeMap::new()));
        let subscriptions = Arc::new(RwLock::new(Vec::new()));
        let publisher_modes = Arc::new(RwLock::new(HashMap::new()));

        broker.declare_queue(
            &config.app,
            QueueConfig {
                max_len: config.queue_max_len,
            },
        );

        let publisher = Arc::new(Publisher::new(
            config.app.clone(),
            config.publisher_mode,
            config.dep_space,
            pub_store.clone(),
            sub_store.clone(),
            broker.clone(),
            generations.clone(),
            publications.clone(),
            subscriptions.clone(),
            config.retry,
        ));
        orm.observe(publisher.clone());

        let subscriber = Arc::new(Subscriber::new(
            &config,
            orm.clone(),
            sub_store.clone(),
            subscriptions.clone(),
            publisher_modes.clone(),
            broker.clone(),
        ));

        Arc::new(SynapseNode {
            config,
            orm,
            broker,
            pub_store,
            sub_store,
            generations,
            publications,
            subscriptions,
            publisher,
            subscriber,
            publisher_modes,
            bootstraps: AtomicU64::new(0),
        })
    }

    /// The application name.
    pub fn app(&self) -> &str {
        &self.config.app
    }

    /// The node's configuration.
    pub fn config(&self) -> &SynapseConfig {
        &self.config
    }

    /// The node's ORM (models, CRUD, callbacks, virtual attributes).
    pub fn orm(&self) -> &Arc<Orm> {
        &self.orm
    }

    /// The publisher runtime (stats, failure injection, recovery).
    pub fn publisher(&self) -> &Arc<Publisher> {
        &self.publisher
    }

    /// The subscriber runtime (stats, manual processing).
    pub fn subscriber(&self) -> &Arc<Subscriber> {
        &self.subscriber
    }

    /// The publisher-side version store.
    pub fn pub_store(&self) -> &Arc<VersionStore> {
        &self.pub_store
    }

    /// The subscriber-side version store.
    pub fn sub_store(&self) -> &Arc<VersionStore> {
        &self.sub_store
    }

    /// The publisher's generation store.
    pub fn generations(&self) -> &GenerationStore {
        &self.generations
    }

    /// Declares a publication (the `publish do … end` block).
    ///
    /// Enforces the decorator rule of §3.1: a service cannot publish
    /// attributes it subscribes to.
    pub fn publish(&self, publication: Publication) -> Result<(), OrmError> {
        let subs = self.subscriptions.read();
        if let Some(sub) = subs.iter().find(|s| s.model == publication.model) {
            for f in &publication.fields {
                if sub.local_fields().contains(&f.as_str()) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot publish subscribed attribute {}.{}",
                        self.app(),
                        publication.model,
                        f
                    )));
                }
            }
        }
        drop(subs);
        self.publications
            .write()
            .insert(publication.model.clone(), publication);
        Ok(())
    }

    /// Declares a subscription (the `subscribe from: … do … end` block) and
    /// binds this app's queue to the publisher's exchange.
    pub fn subscribe(&self, subscription: Subscription) -> Result<(), OrmError> {
        // Decorator rule, checked from the other side.
        let pubs = self.publications.read();
        if let Some(publication) = pubs.get(&subscription.model) {
            for f in subscription.local_fields() {
                if publication.fields.iter().any(|pf| pf == f) {
                    return Err(OrmError::Restriction(format!(
                        "decorator {} cannot subscribe to attribute {}.{} it publishes",
                        self.app(),
                        subscription.model,
                        f
                    )));
                }
            }
        }
        drop(pubs);
        self.broker.bind(&subscription.from, self.app());
        self.publisher_modes
            .write()
            .entry(subscription.from.clone())
            .or_insert(DeliveryMode::Causal);
        self.subscriptions.write().push(subscription);
        Ok(())
    }

    /// Records the delivery mode `pub_app` supports (done automatically by
    /// [`Ecosystem::connect`]).
    pub fn set_publisher_mode(&self, pub_app: &str, mode: DeliveryMode) {
        self.publisher_modes
            .write()
            .insert(pub_app.to_owned(), mode);
    }

    /// All declared publications.
    pub fn publications(&self) -> Vec<Publication> {
        self.publications.read().values().cloned().collect()
    }

    /// All declared subscriptions.
    pub fn subscriptions(&self) -> Vec<Subscription> {
        self.subscriptions.read().clone()
    }

    /// Starts the subscriber worker pool.
    pub fn start(&self) {
        self.subscriber.start(self.config.subscriber_workers);
    }

    /// Stops the subscriber workers.
    pub fn stop(&self) {
        self.subscriber.stop();
    }

    /// Runs `f` with all its writes combined into a single message (§4.2:
    /// "all writes within a single transaction are combined into a single
    /// message").
    pub fn transaction<R>(&self, f: impl FnOnce() -> R) -> R {
        let opened_scope = !context::in_scope();
        let run = || {
            context::scope_mut(|s| s.tx_buffer = Some(TxBuffer::default()));
            let out = f();
            let buffer = context::scope_mut(|s| s.tx_buffer.take()).flatten();
            if let Some(buffer) = buffer {
                self.publisher.flush_transaction(buffer);
            }
            out
        };
        if opened_scope {
            context::with_scope(run).0
        } else {
            run()
        }
    }

    /// Publisher counters.
    pub fn publisher_stats(&self) -> PublisherStats {
        self.publisher.stats()
    }

    /// Subscriber counters.
    pub fn subscriber_stats(&self) -> SubscriberStats {
        self.subscriber.stats()
    }

    /// Aggregated pipeline counters for fault accounting.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            publisher: self.publisher.stats(),
            subscriber: self.subscriber.stats(),
            journaled: self.publisher.journal_len(),
            dead_lettered: self.broker.dead_letter_len(self.app()).unwrap_or(0),
            bootstraps: self.bootstraps.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of this node's dead-letter store (consumed-but-unapplied
    /// deliveries, §6.5 hardening).
    pub fn dead_letters(&self) -> Vec<Delivery> {
        self.broker.dead_letters(self.app()).unwrap_or_default()
    }

    /// Whether this node's queue has been decommissioned (§4.4).
    pub fn is_decommissioned(&self) -> bool {
        self.broker.queue_state(self.app()) == Some(QueueState::Decommissioned)
    }

    /// Sets the bootstrap flag *before* starting the workers, then runs the
    /// three-step bootstrap — the ordering a fresh subscriber needs so that
    /// no backlog message is processed outside bootstrap mode (Fig. 2's
    /// `Synapse.bootstrap?` contract).
    pub fn start_and_bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        self.orm.set_bootstrap(true);
        self.start();
        self.bootstrap_from(publisher)
    }

    /// Three-step bootstrap from a publisher node (§4.4). Also used for
    /// *partial* bootstrap after a decommission or subscriber version-store
    /// loss — the queue is reinstated first. Workers must already be
    /// running (or use [`SynapseNode::start_and_bootstrap_from`]).
    pub fn bootstrap_from(&self, publisher: &SynapseNode) -> Result<(), OrmError> {
        self.orm.set_bootstrap(true);
        if self.is_decommissioned() {
            self.broker.reinstate_queue(self.app());
        }
        if self.sub_store.is_dead() {
            self.sub_store.revive();
        }

        // Step 1: bulk-load the publisher's current versions.
        let snapshot = publisher
            .pub_store
            .snapshot()
            .map_err(|e| OrmError::Restriction(e.to_string()))?;
        self.subscriber
            .load_version_snapshot(&snapshot)
            .map_err(OrmError::Restriction)?;

        // Step 2: bulk-copy all currently published objects.
        for sub in self.subscriptions.read().iter() {
            if sub.from != publisher.app() {
                continue;
            }
            if let Some(publication) = publisher.publications.read().get(&sub.model) {
                if publication.ephemeral {
                    continue;
                }
                let records = publisher.orm.all(&sub.model)?;
                // Marshal through the publisher so only published (and
                // virtual) attributes cross, exactly as live updates do.
                let marshalled: Vec<_> = records
                    .iter()
                    .map(|r| publisher.publisher.marshal_for_bootstrap(&publisher.orm, publication, r))
                    .collect();
                self.subscriber
                    .load_objects(publisher.app(), &sub.model, &marshalled);
            }
        }

        // Step 3: drain messages published meanwhile. Workers may already
        // be running; otherwise the caller starts them and the flag clears
        // once the backlog is gone.
        let drained = self.subscriber.drain(Duration::from_secs(30));
        self.orm.set_bootstrap(false);
        if drained {
            self.bootstraps.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(OrmError::Restriction(
                "bootstrap did not drain the backlog in time".into(),
            ))
        }
    }
}

/// The deployment harness: a shared broker and a set of nodes, with static
/// cross-service checks (§4.5).
#[derive(Default)]
pub struct Ecosystem {
    broker: Broker,
    nodes: RwLock<BTreeMap<String, Arc<SynapseNode>>>,
}

impl Ecosystem {
    /// Creates an empty ecosystem with its own broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Creates and registers a node.
    pub fn add_node(&self, config: SynapseConfig, adapter: Arc<dyn Adapter>) -> Arc<SynapseNode> {
        let node = SynapseNode::new(config, adapter, self.broker.clone());
        self.nodes
            .write()
            .insert(node.app().to_owned(), node.clone());
        node
    }

    /// Looks up a node by app name.
    pub fn node(&self, app: &str) -> Option<Arc<SynapseNode>> {
        self.nodes.read().get(app).cloned()
    }

    /// Propagates publisher delivery modes to subscribers and runs the
    /// static checks; returns the list of violations (empty = ok).
    ///
    /// This is the paper's static checking: "Synapse statically checks that
    /// subscribers don't attempt to subscribe to models and attributes that
    /// are unpublished, providing warnings immediately" (§4.5).
    pub fn connect(&self) -> Vec<String> {
        let nodes = self.nodes.read();
        let mut violations = Vec::new();
        for node in nodes.values() {
            for sub in node.subscriptions() {
                match nodes.get(&sub.from) {
                    None => violations.push(format!(
                        "{}: subscribes to {} from unknown app {}",
                        node.app(),
                        sub.model,
                        sub.from
                    )),
                    Some(publisher) => {
                        node.set_publisher_mode(sub.from.clone().as_str(), publisher.config().publisher_mode);
                        let pubs = publisher.publications();
                        match pubs.iter().find(|p| p.model == sub.model) {
                            None => violations.push(format!(
                                "{}: subscribes to unpublished model {}/{}",
                                node.app(),
                                sub.from,
                                sub.model
                            )),
                            Some(publication) => {
                                for f in &sub.fields {
                                    if !publication.fields.contains(f) {
                                        violations.push(format!(
                                            "{}: subscribes to unpublished attribute {}/{}.{}",
                                            node.app(),
                                            sub.from,
                                            sub.model,
                                            f
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        violations
    }

    /// Starts every node's subscriber workers.
    pub fn start_all(&self) {
        for node in self.nodes.read().values() {
            node.start();
        }
    }

    /// Stops every node's subscriber workers.
    pub fn stop_all(&self) {
        for node in self.nodes.read().values() {
            node.stop();
        }
    }
}
