//! Table 1 / Table 3 support matrix: replicate a model between every
//! publisher-capable vendor and every subscriber-capable vendor, verifying
//! the data lands.
//!
//! Run with: `cargo run -p synapse-bench --bin table1_support_matrix`

use std::time::Duration;
use synapse_bench::{eventually, render_table};
use synapse_core::{DeliveryMode, Ecosystem};
use synapse_db::LatencyModel;
use synapse_repro_bench_support::*;

// Inline support module: vendor capability lists from Table 3.
mod synapse_repro_bench_support {
    /// Vendors that can publish (Table 3's "Pub?" column; Elasticsearch,
    /// Neo4j, and RethinkDB are subscriber-only).
    pub const PUBLISHERS: &[&str] = &[
        "postgresql",
        "mysql",
        "oracle",
        "mongodb",
        "tokumx",
        "cassandra",
        "ephemeral",
    ];
    /// Vendors that can subscribe (everything except pure ephemerals keeps
    /// data; the ephemeral column exercises observers).
    pub const SUBSCRIBERS: &[&str] = &[
        "postgresql",
        "mysql",
        "oracle",
        "mongodb",
        "tokumx",
        "cassandra",
        "elasticsearch",
        "neo4j",
        "rethinkdb",
    ];
}

fn pair_works(pub_vendor: &str, sub_vendor: &str) -> bool {
    let eco = Ecosystem::new();
    let pair = synapse_apps::stress::build_pair(
        &eco,
        pub_vendor,
        sub_vendor,
        DeliveryMode::Causal,
        2,
        LatencyModel::off(),
    );
    if !eco.connect().is_empty() {
        return false;
    }
    eco.start_all();
    let user = pair
        .publisher
        .orm()
        .create("User", synapse_model::vmap! { "name" => "matrix" });
    let ok = match user {
        Ok(user) => eventually(Duration::from_secs(5), || {
            pair.subscriber
                .orm()
                .find("User", user.id)
                .map(|r| {
                    r.map(|r| r.get("name").as_str() == Some("matrix"))
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        }),
        Err(_) => false,
    };
    eco.stop_all();
    ok
}

fn main() {
    println!("Table 1/3 — cross-vendor replication support matrix");
    println!("(publisher rows × subscriber columns; each cell runs a live replication)\n");
    let mut rows = Vec::new();
    for pub_vendor in PUBLISHERS {
        let mut row = vec![pub_vendor.to_string()];
        for sub_vendor in SUBSCRIBERS {
            row.push(if pair_works(pub_vendor, sub_vendor) {
                "Y".into()
            } else {
                "n".into()
            });
        }
        rows.push(row);
    }
    let mut header = vec!["pub \\ sub"];
    header.extend_from_slice(SUBSCRIBERS);
    println!("{}", render_table(&header, &rows));
    let total = PUBLISHERS.len() * SUBSCRIBERS.len();
    let working: usize = rows
        .iter()
        .map(|r| r.iter().filter(|c| c.as_str() == "Y").count())
        .sum();
    println!("{working}/{total} vendor pairs replicate successfully");
    assert_eq!(working, total, "every pair of Table 3 must work");
}
