//! Durable delivery sweep: does persistence still scale with the
//! partitioned broker?
//!
//! Three arms over the same Crowdtap-shaped keyed trace and the same
//! work-stealing consumer pool as `scaling_sweep`:
//!
//! * `durable/group_<W>w` — WAL on, Interval fsync, group commit on: the
//!   leader/follower protocol this PR adds, one lock round trip and one
//!   fsync amortized over every concurrently staged append.
//! * `durable/perwrite_<W>w` — WAL on, Interval fsync, `group_commit
//!   (false)`: the historical path, one `Mutex<WalInner>` acquisition and
//!   one write syscall per record, publishers and ackers convoying on the
//!   log.
//! * `durable/memory_<W>w` — no WAL at all: the scale-out plane's ceiling.
//!
//! Prints one `durable/<arm>_<W>w <value> msgs_per_sec` line per run,
//! consumed by `scripts/bench.sh` into `BENCH_durable_scaling.json`, whose
//! acceptance gates are group ≥ 4× per-write at 64 workers and group
//! within 2.5× of memory-only. Tunables: `DURABLE_MESSAGES` (per run;
//! default 24 000), `DURABLE_WORKERS` (comma list; default `4,16,64`).
//!
//! `--smoke` is the tier-1 durable-mode liveness gate: a tiny trace per
//! arm with zero-loss drains, plus a publish → deliver-half → crash →
//! recover → drain round trip under Interval fsync that must lose nothing
//! and resurrect nothing.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use synapse_broker::{Broker, Delivery, FsyncPolicy, QueueConfig, SharedStr, WalConfig};

/// Deliveries taken per pop, matching `core::Subscriber::BATCH_MAX`.
const BATCH: usize = 32;
/// Payloads per publish call — the paper's a-few-per-request write stream.
const PUB_BATCH: usize = 8;
/// Concurrent publisher threads (the paper's many request handlers all
/// publishing writes). Shared by all three arms; the group arm turns the
/// concurrency into deeper commit groups, the per-write arm convoys it
/// on the WAL lock.
const PUBLISHERS: usize = 8;

fn message_count(smoke: bool) -> usize {
    std::env::var("DURABLE_MESSAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 2_000 } else { 24_000 })
}

fn worker_counts(smoke: bool) -> Vec<usize> {
    let default = if smoke { "4" } else { "4,16,64" };
    let spec = std::env::var("DURABLE_WORKERS").unwrap_or_else(|_| default.to_owned());
    spec.split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The Crowdtap routing trace of `scaling_sweep`: 25% posts across 500
/// users, 75% comments onto 20 hot posts; keys nonzero so they hash-route.
fn trace(messages: usize) -> Vec<(SharedStr, u64, u64)> {
    let payload: SharedStr =
        "{\"op\":\"update\",\"types\":[\"Post\"],\"attrs\":\"durable\"}".into();
    let mut rng = 0xd00d_feed_u64;
    (0..messages)
        .map(|_| {
            let r = splitmix64(&mut rng);
            let key = if r.is_multiple_of(4) {
                1 + (r >> 2) % 500
            } else {
                10_001 + (r >> 2) % 20
            };
            (payload.clone(), 0u64, key)
        })
        .collect()
}

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-durable-scaling-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunResult {
    rate: f64,
    acked: u64,
    residue: (usize, usize),
}

fn spawn_publishers(
    trace: Arc<Vec<(SharedStr, u64, u64)>>,
    broker: Arc<Broker>,
) -> Vec<std::thread::JoinHandle<()>> {
    let cursor = Arc::new(AtomicUsize::new(0));
    (0..PUBLISHERS)
        .map(|_| {
            let trace = Arc::clone(&trace);
            let broker = Arc::clone(&broker);
            let cursor = Arc::clone(&cursor);
            std::thread::spawn(move || loop {
                let start = cursor.fetch_add(PUB_BATCH, Ordering::Relaxed);
                if start >= trace.len() {
                    return;
                }
                let end = (start + PUB_BATCH).min(trace.len());
                broker
                    .publish_batch_routed("pub", trace[start..end].to_vec())
                    .expect("publish");
                std::thread::yield_now();
            })
        })
        .collect()
}

/// The `scaling_sweep` work-stealing worker: home-partition scan → steal
/// scan → counted-wakeup park.
fn worker(
    consumer: synapse_broker::Consumer,
    worker: usize,
    total: usize,
    target: u64,
    acked: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    broker: Arc<Broker>,
) {
    let parts = consumer.partition_count();
    let home: Vec<usize> = (0..parts).filter(|p| p % total == worker).collect();
    let mut cursor = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let mut batch: Vec<Delivery> = Vec::new();
        if !home.is_empty() {
            for k in 0..home.len() {
                let p = home[(cursor + k) % home.len()];
                batch = consumer.pop_batch_from(p, BATCH, Duration::ZERO);
                if !batch.is_empty() {
                    cursor = (cursor + k + 1) % home.len();
                    break;
                }
            }
        }
        if batch.is_empty() {
            for i in 0..parts {
                let p = (worker + 1 + i) % parts;
                if total <= parts && p % total == worker {
                    continue;
                }
                batch = consumer.steal_batch(p, BATCH);
                if !batch.is_empty() {
                    break;
                }
            }
        }
        if batch.is_empty() {
            consumer.wait_ready(Duration::from_millis(50));
            continue;
        }
        let tags: Vec<u64> = batch.iter().map(|d| d.tag).collect();
        let n = consumer.ack_batch(&tags);
        if acked.fetch_add(n, Ordering::Relaxed) + n >= target {
            stop.store(true, Ordering::Relaxed);
            broker.wake_queue("sub");
        }
    }
}

/// Drives the full trace through `broker` with `workers` consumers and
/// returns the end-to-end delivery rate (publish → pop → ack).
fn run(broker: Arc<Broker>, trace: Arc<Vec<(SharedStr, u64, u64)>>, workers: usize) -> RunResult {
    broker.declare_queue("sub", QueueConfig::default());
    broker.bind("pub", "sub");
    let target = trace.len() as u64;
    let acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let consumers: Vec<_> = (0..workers)
        .map(|w| {
            let consumer = broker.consumer("sub").unwrap();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || worker(consumer, w, workers, target, acked, stop, broker))
        })
        .collect();
    let publishers = spawn_publishers(trace, Arc::clone(&broker));
    for h in publishers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    RunResult {
        rate: target as f64 / elapsed.as_secs_f64(),
        acked: acked.load(Ordering::Relaxed),
        residue: (
            broker.queue_len("sub").unwrap_or(0),
            broker.queue_unacked_len("sub").unwrap_or(0),
        ),
    }
}

/// Fsync policy for both durable arms: `DURABLE_FSYNC=off|every|<n>`
/// (default `Interval(8)`), for isolating fsync cost from lock/write
/// cost when reading the sweep. The default is deliberately tight: the
/// group arm counts the interval in committed *groups* (one fsync per
/// ~8 publish batches), the per-write arm in appends — the same knob
/// value, and the amortisation gap between the two regimes is exactly
/// what the bench exists to show.
fn fsync_policy() -> FsyncPolicy {
    match std::env::var("DURABLE_FSYNC").ok().as_deref() {
        Some("off") => FsyncPolicy::Off,
        Some("every") => FsyncPolicy::EveryWrite,
        Some(n) => FsyncPolicy::Interval(n.parse().unwrap_or(8)),
        None => FsyncPolicy::Interval(8),
    }
}

/// Leader linger before writing a shallow group:
/// `DURABLE_GROUP_WAIT_US=<micros>` (default 0 — write immediately).
/// Only the group arm reads it; the per-write arm has no leader to hold.
fn group_max_wait() -> Duration {
    std::env::var("DURABLE_GROUP_WAIT_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::ZERO, Duration::from_micros)
}

fn durable_broker(dir: &std::path::Path, group_commit: bool) -> Broker {
    let cfg = WalConfig::new(dir)
        .segment_max_bytes(4 << 20)
        .fsync(fsync_policy())
        .group_max_wait(if group_commit {
            group_max_wait()
        } else {
            Duration::ZERO
        })
        .group_commit(group_commit);
    let (broker, report) = Broker::open_durable(cfg).expect("open durable broker");
    assert_eq!(report.replayed_entries, 0, "bench dirs start fresh");
    broker
}

/// `DURABLE_STATS=1` dumps per-arm WAL counters on stderr — fsync rate,
/// group geometry, and follower commit waits — for reading *why* a sweep
/// configuration lands where it does.
fn report_wal_stats(arm: &str, workers: usize, broker: &Broker) {
    if std::env::var("DURABLE_STATS").is_err() {
        return;
    }
    let Some(stats) = broker.wal_stats() else {
        return;
    };
    let (size_p50, size_p99) = broker
        .wal_group_size()
        .map_or((0, 0), |h| (h.p50(), h.p99()));
    let (wait_p50, wait_p99) = broker
        .wal_commit_wait()
        .map_or((0, 0), |h| (h.p50(), h.p99()));
    eprintln!(
        "# {arm}_{workers}w wal: appends={} fsyncs={} group_commits={} \
         group_size_p50={size_p50} p99={size_p99} commit_wait_p50={wait_p50}ns p99={wait_p99}ns",
        stats.appends, stats.fsyncs, stats.group_commits
    );
}

fn assert_drained(arm: &str, workers: usize, messages: usize, r: &RunResult) {
    assert!(
        r.acked >= messages as u64 && r.residue == (0, 0),
        "{arm}/{workers}w lost messages: acked {} of {messages}, residue {:?}",
        r.acked,
        r.residue
    );
}

/// The tier-1 durable liveness gate: publish a keyed backlog, deliver and
/// ack half, crash (drop without checkpoint), recover, and drain — the
/// unacked half must come back exactly once and the acked half never.
fn crash_recover_round_trip() {
    const MSGS: usize = 400;
    let dir = temp_dir("liveness");
    let cfg = || {
        WalConfig::new(&dir)
            .segment_max_bytes(64 << 10)
            .fsync(FsyncPolicy::Interval(64))
    };
    let (broker, _) = Broker::open_durable(cfg()).expect("fresh open");
    broker.declare_queue("sub", QueueConfig::default());
    broker.bind("pub", "sub");
    let consumer = broker.consumer("sub").expect("queue declared");

    let mut batch = Vec::new();
    for i in 0..MSGS {
        batch.push((
            SharedStr::from(format!("live-{i}")),
            0u64,
            1 + i as u64 % 97,
        ));
    }
    broker
        .publish_batch_routed("pub", batch)
        .expect("durable publish");

    let mut acked = BTreeSet::new();
    while acked.len() < MSGS / 2 {
        let got = consumer.pop_batch(BATCH, Duration::ZERO);
        assert!(!got.is_empty(), "backlog present before the crash");
        for d in got {
            assert!(consumer.ack(d.tag));
            acked.insert(d.payload.as_str().to_owned());
            if acked.len() >= MSGS / 2 {
                break;
            }
        }
    }
    // Crash: no checkpoint, no graceful drain — Drop flushes the staged
    // relaxed-lane tail, Interval fsync leaves the rest to recovery replay.
    drop(consumer);
    drop(broker);

    let (broker, report) = Broker::open_durable(cfg()).expect("recovery open");
    assert!(report.replayed_entries > 0, "the WAL had traffic to replay");
    broker.declare_queue("sub", QueueConfig::default());
    let consumer = broker.consumer("sub").expect("queue declared");
    let mut survivors = BTreeSet::new();
    while let Some(d) = consumer.pop(Duration::ZERO) {
        assert!(
            survivors.insert(d.payload.as_str().to_owned()),
            "duplicate recovery of {:?}",
            d.payload.as_str()
        );
        assert!(consumer.ack(d.tag));
    }
    assert_eq!(
        survivors.len(),
        MSGS - acked.len(),
        "recovery must restore exactly the unacked half"
    );
    for p in &acked {
        assert!(!survivors.contains(p), "acked {p:?} resurrected");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("durable smoke ok: {MSGS} msgs published, half acked, crash-recovery drained clean");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let messages = message_count(smoke);
    let workers = worker_counts(smoke);

    let trace = Arc::new(trace(messages));
    let mut rates: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &w in &workers {
        let dir = temp_dir(&format!("group-{w}w"));
        let broker = Arc::new(durable_broker(&dir, true));
        let group = run(Arc::clone(&broker), Arc::clone(&trace), w);
        report_wal_stats("group", w, &broker);
        drop(broker);
        let _ = std::fs::remove_dir_all(&dir);
        assert_drained("group", w, messages, &group);

        let dir = temp_dir(&format!("perwrite-{w}w"));
        let broker = Arc::new(durable_broker(&dir, false));
        let perwrite = run(Arc::clone(&broker), Arc::clone(&trace), w);
        report_wal_stats("perwrite", w, &broker);
        drop(broker);
        let _ = std::fs::remove_dir_all(&dir);
        assert_drained("perwrite", w, messages, &perwrite);

        let memory = run(Arc::new(Broker::new()), Arc::clone(&trace), w);
        assert_drained("memory", w, messages, &memory);

        println!("durable/group_{w}w {:.0} msgs_per_sec", group.rate);
        println!("durable/perwrite_{w}w {:.0} msgs_per_sec", perwrite.rate);
        println!("durable/memory_{w}w {:.0} msgs_per_sec", memory.rate);
        rates.push((w, group.rate, perwrite.rate, memory.rate));
    }
    for (w, group, perwrite, memory) in &rates {
        eprintln!(
            "# {w} workers: group {:.2}x per-write, memory {:.2}x group",
            group / perwrite,
            memory / group
        );
    }
    if smoke {
        // Collapse guard on the tiny trace (the ≥4x gate lives on the
        // recorded full-trace artifact): durable group commit must not
        // run far below the per-write path it replaces.
        for (w, group, perwrite, _) in &rates {
            assert!(
                group >= &(perwrite * 0.3),
                "smoke: group commit collapsed at {w} workers ({group:.0} vs {perwrite:.0} msgs/s)"
            );
        }
        crash_recover_round_trip();
        println!("durable scaling smoke ok: {messages} msgs drained with zero loss in all arms");
    }
}
