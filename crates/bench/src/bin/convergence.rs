//! Multi-writer convergence trajectory: what the version-vector plane
//! costs and how the mesh behaves as contention rises.
//!
//! Two measurements, consumed by `scripts/bench.sh` into
//! `BENCH_convergence.json`:
//!
//! * **Single-writer overhead A/B** — the same create load driven through
//!   a plain publication and through a bidirectional one. The only
//!   difference is the vector plane: mesh-key stamping on the publisher
//!   and dominance classification on the subscriber. The ratio is the
//!   price a single-writer deployment pays for turning on multi-writer
//!   support it never exercises.
//! * **Two-writer conflict-rate sweep** — two bidirectional nodes update
//!   a shared pool of rows concurrently; shrinking the pool raises the
//!   chance that both regions touch the same row in flight. (Detected
//!   conflict counts are interleaving-dependent and noisy — the gate is
//!   convergence, never a count.) Each arm measures updates
//!   per second until the mesh converges (identical rows both sides,
//!   journals empty, apply counters quiescent) and reports the conflicts
//!   the classifiers detected. One arm re-runs the hottest pool under a
//!   merge resolver to price the resolver escape hatch against LWW.
//!
//! Prints `convergence/<arm> <rate> msgs_per_sec` lines plus
//! `convergence/conflicts_<arm> <count> conflicts` lines. Tunables:
//! `CONVERGENCE_OPS` (updates per writer per arm, default 1500),
//! `CONVERGENCE_SINGLE_OPS` (creates in the A/B arms, default 3000).
//!
//! `--smoke` runs tiny counts and gates on liveness only: every mesh arm
//! must converge exactly, and the bidirectional single-writer arm must
//! not collapse below 0.2x the plain arm (a collapse means vector
//! stamping serialized the write path).

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_core::{
    DeliveryMode, Ecosystem, Publication, Resolution, Subscription, SynapseConfig, SynapseNode,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;

fn env_count(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn post_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config
            .mode(DeliveryMode::Weak)
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(2),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm()
        .define_model(ModelSchema::new("Post").field("body"))
        .unwrap();
    node
}

/// Single-writer A/B arm: `ops` creates through one publisher, drained by
/// one subscriber. `bidirectional` swaps the plain publication for the
/// vector-stamped one — the workload is otherwise identical.
fn single_writer_rate(ops: u64, bidirectional: bool) -> f64 {
    let eco = Ecosystem::new();
    let publisher = post_node(&eco, SynapseConfig::new("pub"));
    let subscriber = post_node(&eco, SynapseConfig::new("sub"));
    let (publication, subscription) = if bidirectional {
        (
            Publication::model("Post").field("body").bidirectional(),
            Subscription::model("Post", "pub")
                .field("body")
                .bidirectional(),
        )
    } else {
        (
            Publication::model("Post").field("body"),
            Subscription::model("Post", "pub").field("body"),
        )
    };
    publisher.publish(publication).unwrap();
    subscriber.subscribe(subscription).unwrap();
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    let start = Instant::now();
    for i in 0..ops {
        publisher
            .orm()
            .create("Post", vmap! { "body" => format!("p-{i}") })
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while subscriber.orm().count("Post").unwrap() < ops {
        assert!(
            Instant::now() < deadline,
            "subscriber stalled at {}/{ops} creates",
            subscriber.orm().count("Post").unwrap()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = start.elapsed();
    eco.stop_all();
    ops as f64 / elapsed.as_secs_f64()
}

struct MeshResult {
    /// Applied updates per second, clocked from the first update to the
    /// converged (and quiescent) mesh.
    rate: f64,
    /// Conflicts the two classifiers detected, summed over both nodes.
    conflicts: u64,
}

/// Two-writer arm: both nodes update rows drawn from a shared pool of
/// `pool` Posts, `ops` updates each, concurrently. Returns the applied
/// throughput to convergence plus the detected-conflict count.
fn mesh_rate(pool: u64, ops: u64, merge: bool) -> MeshResult {
    let eco = Ecosystem::new();
    let configure = |config: SynapseConfig| {
        if merge {
            // Commutative pick (lexicographic max body): both regions
            // settle identically without the LWW stamp.
            config.merge_resolver("Post", |ctx| {
                let incoming = ctx
                    .incoming
                    .get("body")
                    .and_then(|v| v.as_str())
                    .unwrap_or("");
                let local = ctx
                    .local
                    .and_then(|attrs| attrs.get("body"))
                    .and_then(|v| v.as_str())
                    .unwrap_or("");
                if local >= incoming {
                    Resolution::KeepLocal
                } else {
                    Resolution::TakeIncoming
                }
            })
        } else {
            config
        }
    };
    let a = post_node(&eco, configure(SynapseConfig::new("mesh_a")));
    let b = post_node(&eco, configure(SynapseConfig::new("mesh_b")));
    for node in [&a, &b] {
        node.publish(Publication::model("Post").field("body").bidirectional())
            .unwrap();
    }
    a.subscribe(
        Subscription::model("Post", "mesh_b")
            .field("body")
            .bidirectional(),
    )
    .unwrap();
    b.subscribe(
        Subscription::model("Post", "mesh_a")
            .field("body")
            .bidirectional(),
    )
    .unwrap();
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    // The shared pool originates on one writer and replicates before the
    // storm, so both sides race over the same logical rows.
    let ids: Vec<Id> = (0..pool)
        .map(|i| {
            a.orm()
                .create("Post", vmap! { "body" => format!("seed-{i}") })
                .unwrap()
                .id
        })
        .collect();
    let last = *ids.last().unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while b.orm().find("Post", last).unwrap().is_none() {
        assert!(Instant::now() < deadline, "pool never replicated");
        std::thread::sleep(Duration::from_millis(1));
    }

    let start = Instant::now();
    let writers: Vec<_> = [(a.clone(), 0x9E37u64), (b.clone(), 0x79B9u64)]
        .into_iter()
        .enumerate()
        .map(|(region, (node, seed))| {
            let ids = ids.clone();
            std::thread::spawn(move || {
                let mut state = seed | 1;
                for i in 0..ops {
                    let id = ids[(xorshift(&mut state) % ids.len() as u64) as usize];
                    node.orm()
                        .update("Post", id, vmap! { "body" => format!("r{region}-{i}") })
                        .unwrap();
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    // Convergence: identical rows on both sides, empty journals, and the
    // apply counters stable across several consecutive polls (a
    // transient match while messages are still in flight doesn't count).
    let progress = |node: &Arc<SynapseNode>| {
        let stats = node.subscriber_stats();
        (
            stats.messages_processed,
            stats.ops_applied,
            node.publisher().journal_len(),
        )
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut stable = 0;
    let mut marks = (progress(&a), progress(&b));
    while stable < 5 {
        assert!(
            Instant::now() < deadline,
            "mesh never converged (pool={pool})"
        );
        std::thread::sleep(Duration::from_millis(5));
        let now = (progress(&a), progress(&b));
        let drained = now.0 .2 == 0 && now.1 .2 == 0;
        let equal = ids.iter().all(|&id| {
            a.orm()
                .find("Post", id)
                .unwrap()
                .map(|r| r.get("body").clone())
                == b.orm()
                    .find("Post", id)
                    .unwrap()
                    .map(|r| r.get("body").clone())
        });
        if drained && equal && now == marks {
            stable += 1;
        } else {
            stable = 0;
            marks = now;
        }
    }
    let elapsed = start.elapsed();

    let conflicts =
        a.subscriber_stats().conflicts_detected + b.subscriber_stats().conflicts_detected;
    eco.stop_all();
    MeshResult {
        rate: (2 * ops) as f64 / elapsed.as_secs_f64(),
        conflicts,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mesh_ops = env_count("CONVERGENCE_OPS", if smoke { 150 } else { 1_500 });
    let single_ops = env_count("CONVERGENCE_SINGLE_OPS", if smoke { 300 } else { 3_000 });
    let pools: &[u64] = if smoke { &[4, 64] } else { &[4, 32, 256] };

    let plain = single_writer_rate(single_ops, false);
    let stamped = single_writer_rate(single_ops, true);
    println!("convergence/single_writer_plain {plain:.0} msgs_per_sec");
    println!("convergence/single_writer_bidirectional {stamped:.0} msgs_per_sec");
    eprintln!(
        "# single-writer vector-plane retention: {:.2}x",
        stamped / plain
    );

    for &pool in pools {
        let result = mesh_rate(pool, mesh_ops, false);
        println!(
            "convergence/mesh_lww_pool{pool} {:.0} msgs_per_sec",
            result.rate
        );
        println!(
            "convergence/conflicts_lww_pool{pool} {} conflicts",
            result.conflicts
        );
    }
    // Price the merge escape hatch on the hottest pool.
    let merge = mesh_rate(pools[0], mesh_ops, true);
    println!(
        "convergence/mesh_merge_pool{} {:.0} msgs_per_sec",
        pools[0], merge.rate
    );
    println!(
        "convergence/conflicts_merge_pool{} {} conflicts",
        pools[0], merge.conflicts
    );

    if smoke {
        // Liveness gates only: every mesh arm above already asserted exact
        // convergence; here we catch the vector plane serializing the
        // single-writer path.
        assert!(
            stamped >= plain * 0.2,
            "smoke: bidirectional single-writer collapsed ({stamped:.0} vs {plain:.0} msgs/s)"
        );
        println!(
            "convergence smoke ok: {} mesh arms converged, single-writer retention {:.2}x",
            pools.len() + 1,
            stamped / plain
        );
    }
}
