//! Bootstrap stall elimination: live delivery throughput with and without
//! a concurrent watermark-interleaved bootstrap.
//!
//! The headline claim of the §4.4 rebuild is that a chunked copy no
//! longer pauses the live stream: chunks ride the partitioned delivery
//! queue behind live traffic instead of forcing a stop-the-world drain.
//! This harness measures that directly. Both arms drive the same live
//! write load through a publisher/subscriber pair seeded with a large
//! backlog of Posts:
//!
//! * `live_only` — the subscriber bootstraps *first*, then the live load
//!   runs against a converged node (the steady-state ceiling);
//! * `live_during_bootstrap` — the live load and the full chunked copy
//!   run concurrently, and the arm's rate is measured over exactly the
//!   live (causal-slice) deliveries, not the copies.
//!
//! Prints `bootstrap_stall/<arm> <rate> msgs_per_sec` lines plus
//! `bootstrap_stall/<metric> <value> ns` lines (steady vs. during-copy
//! live queue-residency p99, and the longest gap between consecutive
//! subscriber-side applies inside the bootstrap window), consumed by
//! `scripts/bench.sh` into `BENCH_bootstrap_stall.json`. Tunables:
//! `STALL_SEED_ROWS` (default 4000), `STALL_LIVE_OPS` (default 2000).
//!
//! `--smoke` runs tiny counts and gates on liveness: the copy must merge
//! through the queue, convergence must be exact, no apply gap during the
//! copy may exceed one second, and the during-bootstrap arm must not
//! collapse below 0.2x the live-only arm (a collapse means the copy is
//! starving or pausing live delivery again).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_core::{
    Ecosystem, ModeSlice, Publication, Stage, Subscription, SynapseConfig, SynapseNode,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;
use synapse_orm::CallbackPoint;

fn env_count(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

struct RunResult {
    /// Live (causal-slice) deliveries per second over the measured load.
    rate: f64,
    /// Live queue-residency p99 at the end of the run.
    live_p99_nanos: u64,
    /// Longest gap between consecutive subscriber applies inside the
    /// bootstrap window (0 for the live-only arm).
    max_gap_nanos: u64,
    /// Copies merged through the delivery queue during the run.
    copies_merged: u64,
}

/// Runs one arm: seeds `seed_rows` Posts, then drives `live_ops` creates
/// from a writer thread and measures how fast they become visible on the
/// subscriber. With `concurrent_bootstrap` the chunked copy runs in the
/// middle of the live load; otherwise it completes before the clock
/// starts.
fn run(seed_rows: u64, live_ops: u64, concurrent_bootstrap: bool) -> RunResult {
    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(2)
            .bootstrap_chunk(16)
            .bootstrap_window_timeout(Duration::from_millis(250)),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();

    // Apply clock: every subscriber-side Post write stamps the shared
    // cell; gaps between stamps measure delivery liveness under the copy.
    let t0 = Instant::now();
    let last_apply = Arc::new(AtomicU64::new(0));
    let max_gap = Arc::new(AtomicU64::new(0));
    for point in [CallbackPoint::AfterCreate, CallbackPoint::AfterUpdate] {
        let last_apply = last_apply.clone();
        let max_gap = max_gap.clone();
        subscriber.orm().on("Post", point, move |_ctx, _record| {
            let now = t0.elapsed().as_nanos() as u64;
            let prev = last_apply.swap(now, Ordering::Relaxed);
            if prev > 0 && now > prev {
                max_gap.fetch_max(now - prev, Ordering::Relaxed);
            }
            Ok(())
        });
    }

    for i in 0..seed_rows {
        publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("seed-{i}"), "version" => i as i64 },
            )
            .unwrap();
    }
    eco.connect();
    subscriber.start();

    if !concurrent_bootstrap {
        // Steady-state arm: converge first, measure live-only after.
        subscriber.bootstrap_from(&publisher).unwrap();
        assert!(subscriber.subscriber().drain(Duration::from_secs(60)));
    }

    let delivered_before = subscriber.telemetry().delivered(ModeSlice::Causal);
    // Reset the gap clock so the measurement window starts at the load,
    // not at the seed copy the live-only arm just drained.
    last_apply.store(0, Ordering::Relaxed);
    max_gap.store(0, Ordering::Relaxed);

    let start = Instant::now();
    let writer = {
        let publisher = publisher.clone();
        std::thread::spawn(move || {
            for i in 0..live_ops {
                publisher
                    .orm()
                    .create(
                        "Post",
                        vmap! { "body" => format!("live-{i}"), "version" => (seed_rows + i) as i64 },
                    )
                    .unwrap();
                std::thread::yield_now();
            }
        })
    };
    if concurrent_bootstrap {
        subscriber.bootstrap_from(&publisher).unwrap();
        let stats = subscriber.bootstrap_stats();
        assert_eq!(
            stats.completions, 1,
            "the concurrent bootstrap must converge"
        );
    }
    writer.join().unwrap();

    // Every live message must become visible before the clock stops.
    let deadline = Instant::now() + Duration::from_secs(120);
    while subscriber.telemetry().delivered(ModeSlice::Causal) < delivered_before + live_ops {
        assert!(
            Instant::now() < deadline,
            "subscriber failed to drain the live load ({}/{live_ops})",
            subscriber.telemetry().delivered(ModeSlice::Causal) - delivered_before,
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = start.elapsed();
    assert!(subscriber.subscriber().drain(Duration::from_secs(60)));

    assert_eq!(
        subscriber.orm().count("Post").unwrap(),
        publisher.orm().count("Post").unwrap(),
        "exact convergence with the writer racing the copy"
    );
    let snap = subscriber.telemetry_snapshot();
    let result = RunResult {
        rate: live_ops as f64 / elapsed.as_secs_f64(),
        live_p99_nanos: snap
            .stage(ModeSlice::Causal, Stage::QueueResidency)
            .p99_nanos,
        max_gap_nanos: if concurrent_bootstrap {
            max_gap.load(Ordering::Relaxed)
        } else {
            0
        },
        copies_merged: subscriber.bootstrap_stats().copies_merged,
    };
    eco.stop_all();
    result
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed_rows = env_count("STALL_SEED_ROWS", if smoke { 400 } else { 4_000 });
    let live_ops = env_count("STALL_LIVE_OPS", if smoke { 300 } else { 2_000 });

    let live_only = run(seed_rows, live_ops, false);
    let during = run(seed_rows, live_ops, true);
    assert!(
        during.copies_merged > 0,
        "the concurrent copy must ride the partitioned delivery queue"
    );

    println!(
        "bootstrap_stall/live_only {:.0} msgs_per_sec",
        live_only.rate
    );
    println!(
        "bootstrap_stall/live_during_bootstrap {:.0} msgs_per_sec",
        during.rate
    );
    println!(
        "bootstrap_stall/steady_residency_p99 {} ns",
        live_only.live_p99_nanos
    );
    println!(
        "bootstrap_stall/bootstrap_residency_p99 {} ns",
        during.live_p99_nanos
    );
    println!("bootstrap_stall/max_apply_gap {} ns", during.max_gap_nanos);
    eprintln!(
        "# live retention under bootstrap: {:.2}x ({} copies merged)",
        during.rate / live_only.rate,
        during.copies_merged
    );

    if smoke {
        // Liveness gates only — the recorded full-trace artifact carries
        // the perf numbers. A during-bootstrap arm far below the
        // steady-state ceiling, or a long apply gap, means the copy is
        // pausing live delivery again.
        assert!(
            during.max_gap_nanos < 1_000_000_000,
            "smoke: a {}ms apply gap opened during the copy",
            during.max_gap_nanos / 1_000_000
        );
        assert!(
            during.rate >= live_only.rate * 0.2,
            "smoke: live delivery collapsed under the copy ({:.0} vs {:.0} msgs/s)",
            during.rate,
            live_only.rate
        );
        println!(
            "bootstrap_stall smoke ok: {live_ops} live msgs drained during a {seed_rows}-row copy"
        );
    }
}
