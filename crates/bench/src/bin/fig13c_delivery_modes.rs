//! Fig. 13(c): subscriber throughput vs. workers for the three delivery
//! modes, with a heavy per-message callback.
//!
//! The paper configures subscribers with a 100 ms callback to simulate
//! heavy processing (e.g. sending email) and scales workers to 400; global
//! delivery stays flat (every message serialized), causal scales to the
//! workload's inherent parallelism, weak scales linearly. This harness
//! scales the callback to 10 ms and the workers to a single machine.
//!
//! Run with: `cargo run --release -p synapse-bench --bin fig13c_delivery_modes [max_workers] [callback_ms]`

use std::time::{Duration, Instant};
use synapse_apps::stress::{self, StressConfig};
use synapse_bench::render_table;
use synapse_core::{DeliveryMode, Ecosystem};
use synapse_db::LatencyModel;

fn run_mode(mode: DeliveryMode, workers: usize, callback: Duration, messages: u64) -> f64 {
    let eco = Ecosystem::new();
    let pair = stress::build_pair(
        &eco,
        "mongodb",
        "mongodb",
        mode,
        workers,
        LatencyModel::off(),
    );
    stress::install_callback_delay(&pair.subscriber, callback);
    eco.connect();

    // Publish the whole batch first (many users → inherent parallelism),
    // then start the workers and time the drain: this isolates subscriber
    // scaling exactly as the figure does.
    let config = StressConfig {
        users: 64,
        post_percent: 25,
        publisher_threads: 4,
        duration: Duration::from_millis(50),
    };
    let mut load = stress::run_load(&pair, &config);
    while load.operations < messages {
        let more = stress::run_load(&pair, &config);
        load.operations += more.operations;
    }
    let published = pair.publisher.publisher_stats().messages_published;
    let start = Instant::now();
    pair.subscriber.start();
    let deadline = Instant::now() + Duration::from_secs(120);
    while pair.subscriber.subscriber_stats().messages_processed < published {
        if Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let processed = pair.subscriber.subscriber_stats().messages_processed;
    let rate = processed as f64 / start.elapsed().as_secs_f64();
    eco.stop_all();
    rate
}

fn main() {
    let max_workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let callback_ms: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let callback = Duration::from_millis(callback_ms);
    let messages: u64 = 300;
    let worker_counts: Vec<usize> = (0..)
        .map(|i| 1 << i)
        .take_while(|w| *w <= max_workers)
        .collect();

    println!("Fig. 13(c) — subscriber throughput (msg/s) vs. workers, per delivery mode");
    println!("(subscriber callback delay: {callback_ms} ms — paper used 100 ms on EC2)\n");
    let mut rows = Vec::new();
    for mode in [
        DeliveryMode::Weak,
        DeliveryMode::Causal,
        DeliveryMode::Global,
    ] {
        let mut row = vec![mode.name().to_string()];
        for w in &worker_counts {
            row.push(format!("{:.0}", run_mode(mode, *w, callback, messages)));
        }
        rows.push(row);
    }
    let header_cells: Vec<String> = std::iter::once("mode".to_string())
        .chain(worker_counts.iter().map(|w| format!("{w}w")))
        .collect();
    let header_refs: Vec<&str> = header_cells.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("expected shape: weak ≈ linear in workers; causal scales to the workload's");
    println!("parallelism; global stays flat at ~1/callback (paper's Fig. 13(c)).");
}
