//! Scale-out delivery plane sweep: partitioned queues + work stealing
//! vs. the pre-partitioning single-lock queue, across worker counts.
//!
//! The partitioned arm drives the *real* broker: `publish_batch_routed`
//! with Crowdtap-shaped routing keys into a partitioned queue, drained by
//! a work-stealing consumer pool (home-partition scan → steal scan →
//! counted-wakeup park — the same protocol as `core::Subscriber`). The
//! baseline arm is an in-bench replica of the queue this PR replaced: one
//! `Mutex<VecDeque>` guarding ready + unacked, and a `Condvar` that
//! `notify_all`s every waiter on every enqueue. On a small host the
//! baseline's cost is not lock *parallelism* loss — it is the thundering
//! herd (every enqueue wakes every idle worker; all but one find the
//! queue drained and go back to sleep) plus the convoy of every pop and
//! ack serializing through one lock that publishers also need.
//!
//! Prints one `scaling/<arm>_<W>w <value> msgs_per_sec` line per run,
//! consumed by `scripts/bench.sh` into `BENCH_scaling.json`. Tunables:
//! `SCALING_MESSAGES` (per run; default 40 000), `SCALING_WORKERS`
//! (comma list; default `4,16,64,256`). `--smoke` runs a tiny trace on
//! `4,16` workers and asserts zero acked-loss in both arms plus a
//! collapse guard (partitioned ≥ 0.3× baseline) — the ≥3× speedup gate
//! lives on the recorded full-trace artifact, not the smoke run.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use synapse_broker::{Broker, Delivery, QueueConfig, SharedStr};

/// Deliveries taken per pop, matching `core::Subscriber::BATCH_MAX`.
const BATCH: usize = 32;
/// Payloads per publish call. Small on purpose: the paper's write stream
/// arrives a-few-at-a-time per request, and small batches are what expose
/// the wake-per-enqueue herd in the legacy queue.
const PUB_BATCH: usize = 8;
const PUBLISHERS: usize = 2;

fn message_count(smoke: bool) -> usize {
    std::env::var("SCALING_MESSAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3_000 } else { 40_000 })
}

fn worker_counts(smoke: bool) -> Vec<usize> {
    let default = if smoke { "4,16" } else { "4,16,64,256" };
    let spec = std::env::var("SCALING_WORKERS").unwrap_or_else(|_| default.to_owned());
    spec.split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A Crowdtap-shaped routing trace (§6.3): 25% of messages are posts by
/// one of 500 users, 75% are comments piling onto a hot set of 20 posts.
/// Keys are the written object's dependency key — nonzero, so they route
/// by hash instead of the key-0 legacy lane.
fn trace(messages: usize) -> Vec<(SharedStr, u64, u64)> {
    let payload: SharedStr =
        "{\"op\":\"update\",\"types\":[\"Post\"],\"attrs\":\"scaling\"}".into();
    let mut rng = 0x5ca1_ab1e_u64;
    (0..messages)
        .map(|_| {
            let r = splitmix64(&mut rng);
            let key = if r.is_multiple_of(4) {
                1 + (r >> 2) % 500 // a post: one of 500 user timelines
            } else {
                10_001 + (r >> 2) % 20 // a comment: one of 20 hot posts
            };
            (payload.clone(), 0u64, key)
        })
        .collect()
}

/// Faithful replica of the queue hot path this PR replaced: one mutex
/// over ready + unacked, `notify_all` on every enqueue, pops and acks
/// serialized through the same lock.
struct LegacyQueue {
    inner: Mutex<LegacyInner>,
    cv: Condvar,
}

#[derive(Default)]
struct LegacyInner {
    ready: VecDeque<(u64, SharedStr)>,
    unacked: HashMap<u64, SharedStr>,
    next_tag: u64,
}

impl LegacyQueue {
    fn new() -> Self {
        LegacyQueue {
            inner: Mutex::new(LegacyInner::default()),
            cv: Condvar::new(),
        }
    }

    fn enqueue_batch(&self, payloads: &[(SharedStr, u64, u64)]) {
        let mut inner = self.inner.lock();
        for (payload, _, _) in payloads {
            let tag = inner.next_tag;
            inner.next_tag += 1;
            inner.ready.push_back((tag, payload.clone()));
        }
        self.cv.notify_all();
    }

    fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<u64> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        while inner.ready.is_empty() {
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Vec::new();
            }
        }
        let take = max.min(inner.ready.len());
        let mut tags = Vec::with_capacity(take);
        for _ in 0..take {
            let (tag, payload) = inner.ready.pop_front().unwrap();
            inner.unacked.insert(tag, payload);
            tags.push(tag);
        }
        tags
    }

    fn ack_batch(&self, tags: &[u64]) -> u64 {
        let mut inner = self.inner.lock();
        tags.iter()
            .filter(|t| inner.unacked.remove(t).is_some())
            .count() as u64
    }

    fn wake_all(&self) {
        let _inner = self.inner.lock();
        self.cv.notify_all();
    }

    fn residue(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.ready.len(), inner.unacked.len())
    }
}

struct RunResult {
    rate: f64,
    acked: u64,
    residue: (usize, usize),
}

/// Publishes the trace from `PUBLISHERS` threads in `PUB_BATCH` chunks,
/// yielding between calls so delivery interleaves with publishing on a
/// single core — the same pacing in both arms.
fn spawn_publishers<F>(
    trace: Arc<Vec<(SharedStr, u64, u64)>>,
    publish: F,
) -> Vec<std::thread::JoinHandle<()>>
where
    F: Fn(&[(SharedStr, u64, u64)]) + Send + Sync + 'static,
{
    let publish = Arc::new(publish);
    let cursor = Arc::new(AtomicUsize::new(0));
    (0..PUBLISHERS)
        .map(|_| {
            let trace = Arc::clone(&trace);
            let publish = Arc::clone(&publish);
            let cursor = Arc::clone(&cursor);
            std::thread::spawn(move || loop {
                let start = cursor.fetch_add(PUB_BATCH, Ordering::Relaxed);
                if start >= trace.len() {
                    return;
                }
                let end = (start + PUB_BATCH).min(trace.len());
                publish(&trace[start..end]);
                std::thread::yield_now();
            })
        })
        .collect()
}

fn run_legacy(trace: Arc<Vec<(SharedStr, u64, u64)>>, workers: usize) -> RunResult {
    let queue = Arc::new(LegacyQueue::new());
    let target = trace.len() as u64;
    let acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let consumers: Vec<_> = (0..workers)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let tags = queue.pop_batch(BATCH, Duration::from_millis(50));
                    if tags.is_empty() {
                        continue;
                    }
                    let n = queue.ack_batch(&tags);
                    if acked.fetch_add(n, Ordering::Relaxed) + n >= target {
                        stop.store(true, Ordering::Relaxed);
                        queue.wake_all();
                    }
                }
            })
        })
        .collect();
    let publishers = {
        let queue = Arc::clone(&queue);
        spawn_publishers(trace, move |chunk| queue.enqueue_batch(chunk))
    };
    for h in publishers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    RunResult {
        rate: target as f64 / elapsed.as_secs_f64(),
        acked: acked.load(Ordering::Relaxed),
        residue: queue.residue(),
    }
}

/// One work-stealing worker over the real partitioned queue: drain home
/// partitions round-robin, then steal from a victim, then park on the
/// counted-wakeup condvar — the `core::Subscriber` scan, minus the ORM.
fn partitioned_worker(
    consumer: synapse_broker::Consumer,
    worker: usize,
    total: usize,
    target: u64,
    acked: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    broker: Arc<Broker>,
) {
    let parts = consumer.partition_count();
    let home: Vec<usize> = (0..parts).filter(|p| p % total == worker).collect();
    let mut cursor = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let mut batch: Vec<Delivery> = Vec::new();
        if !home.is_empty() {
            for k in 0..home.len() {
                let p = home[(cursor + k) % home.len()];
                batch = consumer.pop_batch_from(p, BATCH, Duration::ZERO);
                if !batch.is_empty() {
                    cursor = (cursor + k + 1) % home.len();
                    break;
                }
            }
        }
        if batch.is_empty() {
            for i in 0..parts {
                let p = (worker + 1 + i) % parts;
                if total <= parts && p % total == worker {
                    continue;
                }
                batch = consumer.steal_batch(p, BATCH);
                if !batch.is_empty() {
                    break;
                }
            }
        }
        if batch.is_empty() {
            consumer.wait_ready(Duration::from_millis(50));
            continue;
        }
        let tags: Vec<u64> = batch.iter().map(|d| d.tag).collect();
        let n = consumer.ack_batch(&tags);
        if acked.fetch_add(n, Ordering::Relaxed) + n >= target {
            stop.store(true, Ordering::Relaxed);
            broker.wake_queue("sub");
        }
    }
}

fn run_partitioned(trace: Arc<Vec<(SharedStr, u64, u64)>>, workers: usize) -> RunResult {
    let broker = Arc::new(Broker::new());
    broker.declare_queue("sub", QueueConfig::default());
    broker.bind("pub", "sub");
    let target = trace.len() as u64;
    let acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let consumers: Vec<_> = (0..workers)
        .map(|w| {
            let consumer = broker.consumer("sub").unwrap();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || {
                partitioned_worker(consumer, w, workers, target, acked, stop, broker)
            })
        })
        .collect();
    let publishers = {
        let broker = Arc::clone(&broker);
        spawn_publishers(trace, move |chunk| {
            broker
                .publish_batch_routed("pub", chunk.to_vec())
                .expect("publish");
        })
    };
    for h in publishers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    RunResult {
        rate: target as f64 / elapsed.as_secs_f64(),
        acked: acked.load(Ordering::Relaxed),
        residue: (
            broker.queue_len("sub").unwrap_or(0),
            broker.queue_unacked_len("sub").unwrap_or(0),
        ),
    }
}

fn assert_drained(arm: &str, workers: usize, messages: usize, r: &RunResult) {
    assert!(
        r.acked >= messages as u64 && r.residue == (0, 0),
        "{arm}/{workers}w lost messages: acked {} of {messages}, residue {:?}",
        r.acked,
        r.residue
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let messages = message_count(smoke);
    let workers = worker_counts(smoke);

    let trace = Arc::new(trace(messages));
    let mut rates: Vec<(usize, f64, f64)> = Vec::new();
    for &w in &workers {
        let baseline = run_legacy(Arc::clone(&trace), w);
        assert_drained("baseline", w, messages, &baseline);
        let partitioned = run_partitioned(Arc::clone(&trace), w);
        assert_drained("partitioned", w, messages, &partitioned);
        println!("scaling/baseline_{w}w {:.0} msgs_per_sec", baseline.rate);
        println!(
            "scaling/partitioned_{w}w {:.0} msgs_per_sec",
            partitioned.rate
        );
        rates.push((w, baseline.rate, partitioned.rate));
    }
    for (w, base, part) in &rates {
        eprintln!("# {w} workers: speedup {:.2}x", part / base);
    }
    if smoke {
        // Collapse guard only: on a tiny trace the speedup is noise, but a
        // partitioned arm running far below the single lock means the
        // delivery plane livelocked or serialized somewhere it shouldn't.
        for (w, base, part) in &rates {
            assert!(
                part >= &(base * 0.3),
                "smoke: partitioned collapsed at {w} workers ({part:.0} vs {base:.0} msgs/s)"
            );
        }
        println!("scaling smoke ok: {messages} msgs drained with zero loss in both arms");
    }
}
