//! Fig. 9: execution timelines in the social ecosystem.
//!
//! * `sample-a` — a user posts on Diaspora; the mailer and semantic
//!   analyzer receive it in parallel; Diaspora and Spree then receive the
//!   decorated model (Fig. 9(a)).
//! * `sample-b` — two users post twice each while the mailer is
//!   disconnected; when it reconnects, it processes the two users' backlogs
//!   in parallel but each user's posts in serial order (Fig. 9(b)).
//!
//! Run with: `cargo run -p synapse-bench --bin fig9_timeline -- sample-a`

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_bench::eventually;
use synapse_core::Ecosystem;
use synapse_db::LatencyModel;
use synapse_model::Value;
use synapse_mvc::Request;
use synapse_orm::CallbackPoint;

type Timeline = Arc<Mutex<Vec<(Duration, String)>>>;

fn record(timeline: &Timeline, start: Instant, label: impl Into<String>) {
    timeline.lock().push((start.elapsed(), label.into()));
}

fn print_timeline(timeline: &Timeline) {
    let mut events = timeline.lock().clone();
    events.sort_by_key(|(t, _)| *t);
    for (t, label) in events {
        println!("  {:>8.2} ms  {label}", t.as_secs_f64() * 1e3);
    }
}

fn sample_a() {
    println!("Fig. 9(a) — one post flows through the ecosystem\n");
    let eco = Ecosystem::new();
    let apps = synapse_apps::social::build(&eco, LatencyModel::off());
    assert!(eco.connect().is_empty());

    let timeline: Timeline = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();

    // Instrument arrivals with callbacks.
    let t = timeline.clone();
    let s = start;
    apps.analyzer
        .orm()
        .on("Post", CallbackPoint::AfterCreate, move |_, _| {
            record(&t, s, "③ semantic analyzer received the post");
            Ok(())
        });
    let t = timeline.clone();
    apps.mailer
        .orm()
        .on("Post", CallbackPoint::AfterCreate, move |_, _| {
            record(&t, s, "② mailer received the post");
            Ok(())
        });
    let t = timeline.clone();
    apps.spree
        .orm()
        .on("User", CallbackPoint::AfterUpdate, move |_, u| {
            if !u.get("interests").is_null() {
                record(&t, s, "⑤ spree received the decorated User (interests)");
            }
            Ok(())
        });
    eco.start_all();

    let users = synapse_apps::social::seed_users(&apps.diaspora, &[("alice", "a@x.com")]);
    record(&timeline, start, "① alice posts on diaspora");
    apps.diaspora
        .dispatch(
            "posts/create",
            &Request::as_user(users[0]).param("body", "hiking hiking hiking"),
        )
        .unwrap();

    assert!(eventually(Duration::from_secs(10), || {
        timeline.lock().len() >= 4
    }));
    print_timeline(&timeline);
    println!("\nmailer ② and analyzer ③ receive in parallel; the decorated model ⑤ follows.");
    eco.stop_all();
}

fn sample_b() {
    println!("Fig. 9(b) — subscriber disconnection and parallel-per-user catch-up\n");
    let eco = Ecosystem::new();
    let apps = synapse_apps::social::build(&eco, LatencyModel::off());
    assert!(eco.connect().is_empty());

    let timeline: Timeline = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let order: Arc<Mutex<Vec<(i64, String)>>> = Arc::new(Mutex::new(Vec::new()));

    let t = timeline.clone();
    let o = order.clone();
    apps.mailer
        .orm()
        .on("Post", CallbackPoint::AfterCreate, move |_, post| {
            let author = post.get("author_id").as_int().unwrap_or(0);
            let body = post.get("body").as_str().unwrap_or("?").to_owned();
            record(
                &t,
                start,
                format!("mailer processed {body} (user {author})"),
            );
            o.lock().push((author, body));
            // Simulate notification work so parallelism is visible.
            std::thread::sleep(Duration::from_millis(30));
            Ok(())
        });

    // Start everything EXCEPT the mailer: it is disconnected.
    for app in ["diaspora", "discourse", "analyzer", "spree"] {
        eco.node(app).unwrap().start();
    }

    let users = synapse_apps::social::seed_users(
        &apps.diaspora,
        &[("alice", "a@x.com"), ("bob", "b@x.com")],
    );
    for (i, round) in ["first", "second"].iter().enumerate() {
        for (u, name) in users.iter().zip(["alice", "bob"]) {
            record(&timeline, start, format!("{} posts ({} post)", name, round));
            apps.diaspora
                .dispatch(
                    "posts/create",
                    &Request::as_user(*u).param("body", format!("{name}-post-{}", i + 1)),
                )
                .unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(100));
    record(&timeline, start, "mailer comes online");
    apps.mailer.node().start();

    assert!(eventually(Duration::from_secs(10), || {
        order.lock().len() >= 4
    }));
    print_timeline(&timeline);

    // Verify causality: each user's posts processed in order.
    let order = order.lock();
    for user in [1i64, 2] {
        let bodies: Vec<&str> = order
            .iter()
            .filter(|(a, _)| *a == user)
            .map(|(_, b)| b.as_str())
            .collect();
        assert!(
            bodies.windows(2).all(|w| w[0] < w[1]),
            "user {user} posts out of order: {bodies:?}"
        );
    }
    println!("\neach user's posts were processed serially; users in parallel ✓");
    eco.stop_all();
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "sample-a" => sample_a(),
        "sample-b" => sample_b(),
        _ => {
            sample_a();
            println!();
            sample_b();
        }
    }
    // Keep the ecosystem's Value type linked for the `--bin` build.
    let _ = Value::Null;
}
