//! Fig. 8: dependency tracking and message generation, replayed exactly.
//!
//! Four controller executions — User1 posts, User2 comments, User1
//! comments back, User1 edits the post — and the version-store state plus
//! message dependencies after each write, printed next to the figure's
//! expected values.
//!
//! Run with: `cargo run -p synapse-bench --bin fig8_dependencies`

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;
use synapse_bench::{eventually, render_table};
use synapse_core::{
    with_user_scope, DepName, DepSpace, Ecosystem, Publication, Subscription, SynapseConfig,
    WriteMessage,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;

fn main() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    let orm = publisher.orm();
    for m in ["User", "Post", "Comment"] {
        orm.define_model(ModelSchema::open(m)).unwrap();
    }
    // `User` is deliberately not published: the figure's walk-through
    // tracks users only as session dependencies, with fresh counters.
    publisher
        .publish(Publication::model("Post").fields(&["author_id", "body"]))
        .unwrap();
    publisher
        .publish(Publication::model("Comment").fields(&["post_id", "author_id", "body"]))
        .unwrap();

    // A tap subscriber records raw messages as they arrive.
    let tap = eco.add_node(
        SynapseConfig::new("tap"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    tap.orm().define_model(ModelSchema::open("Post")).unwrap();
    tap.subscribe(Subscription::model("Post", "pub").fields(&["author_id", "body"]))
        .unwrap();
    eco.connect();

    // Pre-create the two users (the figure's walk-through starts with
    // users existing; their finds create the read context).
    let u1 = orm.create("User", vmap! { "name" => "User1" }).unwrap();
    let u2 = orm.create("User", vmap! { "name" => "User2" }).unwrap();

    let space = DepSpace::new(1 << 20);
    let key = |name: &DepName| space.key(name);
    let dep = |model: &str, id: Id| DepName::object("pub", model, id);

    let messages: Arc<Mutex<Vec<WriteMessage>>> = Arc::new(Mutex::new(Vec::new()));
    // A second raw queue captures payloads without stealing them from the
    // tap node's own queue.
    eco.broker()
        .declare_queue("fig8_raw", synapse_broker::QueueConfig::default());
    eco.broker().bind("pub", "fig8_raw");
    let consumer = eco.broker().consumer("fig8_raw").unwrap();

    // W1: User1 creates a post.
    let post = with_user_scope(dep("User", u1.id), || {
        orm.create(
            "Post",
            vmap! { "author_id" => u1.id.raw(), "body" => "helo" },
        )
        .unwrap()
    })
    .0;

    // W2: User2 comments on it (reads the post first → read dependency).
    with_user_scope(dep("User", u2.id), || {
        let p = orm.find("Post", post.id).unwrap().unwrap();
        orm.create(
            "Comment",
            vmap! { "post_id" => p.id.raw(), "author_id" => u2.id.raw(), "body" => "you have a typo" },
        )
        .unwrap();
    });

    // W3: User1 comments back.
    with_user_scope(dep("User", u1.id), || {
        let p = orm.find("Post", post.id).unwrap().unwrap();
        orm.create(
            "Comment",
            vmap! { "post_id" => p.id.raw(), "author_id" => u1.id.raw(), "body" => "thanks for noticing" },
        )
        .unwrap();
    });

    // W4: User1 fixes the post.
    with_user_scope(dep("User", u1.id), || {
        orm.update("Post", post.id, vmap! { "body" => "hello" })
            .unwrap();
    });

    // Collect the four messages (skip the two user creations).
    while let Some(d) = consumer.pop(Duration::from_millis(200)) {
        let msg = WriteMessage::decode(&d.payload).unwrap();
        if msg.operations[0].model() != "User" {
            messages.lock().unwrap().push(msg);
        }
        consumer.ack(d.tag);
    }
    let messages = messages.lock().unwrap();
    assert_eq!(messages.len(), 4, "four writes → four messages");

    // Pretty-print each message's dependencies with symbolic names.
    let symbol = |k: u64| -> String {
        let candidates = [
            ("u1", key(&dep("User", u1.id))),
            ("u2", key(&dep("User", u2.id))),
            ("p1", key(&dep("Post", post.id))),
            ("c1", key(&dep("Comment", Id(1)))),
            ("c2", key(&dep("Comment", Id(2)))),
        ];
        candidates
            .iter()
            .find(|(_, ck)| *ck == k)
            .map(|(n, _)| (*n).to_string())
            .unwrap_or_else(|| k.to_string())
    };
    println!("Fig. 8 — messages and dependencies (expected values from the figure)\n");
    let expected = ["u1:0 p1:0", "u2:0 c1:0 p1:1", "u1:1 c2:0 p1:1", "u1:2 p1:3"];
    let mut rows = Vec::new();
    for (i, msg) in messages.iter().enumerate() {
        let mut deps: Vec<String> = msg
            .dependencies
            .iter()
            .map(|(k, v)| format!("{}:{}", symbol(*k), v))
            .collect();
        deps.sort();
        let mut want: Vec<String> = expected[i].split(' ').map(str::to_owned).collect();
        want.sort();
        assert_eq!(deps, want, "M{} dependencies", i + 1);
        rows.push(vec![
            format!("M{}", i + 1),
            format!(
                "{} {}",
                msg.operations[0].operation,
                msg.operations[0].model()
            ),
            deps.join(" "),
            expected[i].to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "msg",
                "operation",
                "dependencies (measured)",
                "expected (paper)"
            ],
            &rows
        )
    );

    // And the subscriber processes them respecting the dependency graph
    // (M2/M3 after M1, M4 last).
    tap.start();
    assert!(eventually(Duration::from_secs(5), || {
        tap.subscriber_stats().messages_processed >= 4
    }));
    println!("subscriber replayed the graph: M1 → {{M2, M3}} → M4 ✓");
    eco.stop_all();
}
