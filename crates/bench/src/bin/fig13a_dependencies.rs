//! Fig. 13(a): publisher overhead vs. number of dependencies, per engine.
//!
//! For each vendor and each dependency count d, a controller reads d−1
//! objects (creating d−1 implicit read dependencies) and then performs one
//! update (whose own object is the write dependency). The overhead is the
//! publishing cost on top of the raw engine write — measured by running
//! the identical controller against the same vendor with publication
//! disabled.
//!
//! Run with: `cargo run --release -p synapse-bench --bin fig13a_dependencies`

use std::time::Duration;
use synapse_bench::render_table;
use synapse_core::{with_user_scope, DepName, Ecosystem, Publication, SynapseConfig};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema};
use synapse_orm::adapters;

const VENDORS: &[&str] = &[
    "mysql",
    "postgresql",
    "tokumx",
    "mongodb",
    "cassandra",
    "ephemeral",
];
const DEP_COUNTS: &[usize] = &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];
const ITERS: usize = 30;

fn schema_for(vendor: &str, model: &str) -> ModelSchema {
    if matches!(vendor, "postgresql" | "mysql" | "oracle") {
        ModelSchema::new(model).field("body").field("n")
    } else {
        ModelSchema::open(model)
    }
}

/// Mean Synapse publishing time inside the read-then-update controller at
/// `deps` dependencies (measured by the same scope instrumentation that
/// feeds Fig. 12, not by subtraction — the engines are so much faster than
/// the originals that subtraction would drown in noise).
fn measure(vendor: &str, deps: usize, publish: bool) -> Duration {
    let eco = Ecosystem::new();
    let node = eco.add_node(
        SynapseConfig::new(format!("m_{vendor}_{deps}_{publish}")),
        adapters::for_vendor(vendor, LatencyModel::off()),
    );
    node.orm().define_model(schema_for(vendor, "Post")).unwrap();
    if publish {
        node.publish(Publication::model("Post").fields(&["body", "n"]))
            .unwrap();
    }
    // Seed the objects the controller will read.
    for i in 0..deps.max(1) as u64 {
        node.orm()
            .create_with_id("Post", Id(i + 1), vmap! { "body" => "x", "n" => 0 })
            .unwrap();
    }
    let user = DepName::object(node.app(), "User", Id(1));
    // Warm up once, then measure.
    let mut total = Duration::ZERO;
    for iter in 0..=ITERS {
        let ((), stats) = with_user_scope(user.clone(), || {
            if vendor == "ephemeral" {
                // Ephemerals persist nothing, so the read dependencies are
                // explicit and the write is a fresh create each round.
                let names: Vec<String> = (0..deps.saturating_sub(1))
                    .map(|i| format!("dep/{i}"))
                    .collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                synapse_core::add_read_deps(&refs);
                node.orm()
                    .create_with_id(
                        "Post",
                        Id(10_000 + iter as u64),
                        vmap! { "body" => "x", "n" => iter as i64 },
                    )
                    .unwrap();
            } else {
                // d−1 read dependencies...
                for i in 0..deps.saturating_sub(1) as u64 {
                    node.orm().find("Post", Id(i + 1)).unwrap();
                }
                // ...and one write.
                node.orm()
                    .update("Post", Id(deps as u64), vmap! { "n" => iter as i64 })
                    .unwrap();
            }
        });
        if iter > 0 {
            total += Duration::from_nanos(stats.synapse_nanos);
        }
    }
    total / ITERS as u32
}

fn main() {
    println!("Fig. 13(a) — publisher overhead vs. number of dependencies\n");
    let mut rows = Vec::new();
    for deps in DEP_COUNTS {
        let mut row = vec![deps.to_string()];
        for vendor in VENDORS {
            let overhead = measure(vendor, *deps, true);
            row.push(format!("{:.3}", overhead.as_secs_f64() * 1e3));
        }
        rows.push(row);
    }
    let mut header = vec!["deps"];
    header.extend_from_slice(VENDORS);
    println!("{}", render_table(&header, &rows));
    println!("(cells are publisher overhead in ms — Synapse cost above the raw write)");
    println!("paper shape: ~5 ms at 1 dependency, <10 ms to ~20, rising steeply by 1000.");
}
