//! End-to-end broker fanout throughput: one publisher fanning out to
//! `QUEUES` bound queues, each drained by its own consumer thread that
//! acks every delivery. This is the pipeline shape of Fig. 12–13 reduced
//! to the broker hot path: publish → enqueue×N → pop → ack.
//!
//! Prints one `<scenario> <value> deliveries_per_sec` line per scenario,
//! consumed by `scripts/bench.sh` into `BENCH_publish_path.json`. The
//! message count is tunable via `FANOUT_MESSAGES` (the tier-1 smoke run
//! uses a small count; the recorded trajectory uses the default).

use std::time::{Duration, Instant};
use synapse_broker::{Broker, QueueConfig};

const QUEUES: usize = 8;

fn message_count() -> u64 {
    std::env::var("FANOUT_MESSAGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// A ~1 KiB JSON-ish payload, the size class of a marshalled write
/// message with a handful of published attributes.
fn payload() -> String {
    let mut body = String::with_capacity(1024);
    body.push_str("{\"op\":\"update\",\"types\":[\"Post\"],\"attrs\":\"");
    while body.len() < 1000 {
        body.push_str("loremipsumdolorsitamet");
    }
    body.push_str("\"}");
    body
}

fn fanout_broker() -> Broker {
    let broker = Broker::new();
    for q in 0..QUEUES {
        let name = format!("q{q}");
        broker.declare_queue(&name, QueueConfig::default());
        broker.bind("pub", &name);
    }
    broker
}

/// One delivery at a time: `pop` + `ack` per message per queue.
fn run_unbatched(messages: u64) -> f64 {
    let broker = fanout_broker();
    let handles: Vec<_> = (0..QUEUES)
        .map(|q| {
            let consumer = broker.consumer(&format!("q{q}")).unwrap();
            std::thread::spawn(move || {
                let mut acked = 0u64;
                while acked < messages {
                    if let Some(d) = consumer.pop(Duration::from_millis(100)) {
                        consumer.ack(d.tag);
                        acked += 1;
                    }
                }
            })
        })
        .collect();
    let body = payload();
    let start = Instant::now();
    for _ in 0..messages {
        broker.publish("pub", &body).unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }
    (messages * QUEUES as u64) as f64 / start.elapsed().as_secs_f64()
}

/// The batched hot path: `publish_batch` in chunks of `CHUNK`, consumers
/// draining with `pop_batch` + one `ack_batch` per wakeup. Same message
/// count, same payload, same fanout shape as the unbatched scenario.
fn run_batched(messages: u64) -> f64 {
    const CHUNK: u64 = 64;
    let broker = fanout_broker();
    let handles: Vec<_> = (0..QUEUES)
        .map(|q| {
            let consumer = broker.consumer(&format!("q{q}")).unwrap();
            std::thread::spawn(move || {
                let mut acked = 0u64;
                while acked < messages {
                    let batch = consumer.pop_batch(CHUNK as usize, Duration::from_millis(100));
                    if batch.is_empty() {
                        continue;
                    }
                    let tags: Vec<u64> = batch.iter().map(|d| d.tag).collect();
                    acked += consumer.ack_batch(&tags);
                }
            })
        })
        .collect();
    let body = payload();
    let chunk: Vec<&str> = (0..CHUNK).map(|_| body.as_str()).collect();
    let start = Instant::now();
    let mut sent = 0u64;
    while sent < messages {
        let n = CHUNK.min(messages - sent);
        broker
            .publish_batch("pub", chunk[..n as usize].iter().copied())
            .unwrap();
        sent += n;
    }
    for h in handles {
        h.join().unwrap();
    }
    (messages * QUEUES as u64) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let messages = message_count();
    println!(
        "fanout/unbatched_1pub_{QUEUES}q {:.0} deliveries_per_sec",
        run_unbatched(messages)
    );
    println!(
        "fanout/batched_1pub_{QUEUES}q {:.0} deliveries_per_sec",
        run_batched(messages)
    );
}
