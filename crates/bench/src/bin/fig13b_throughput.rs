//! Fig. 13(b): end-to-end throughput vs. number of workers for different
//! publisher→subscriber database combinations.
//!
//! The paper's pairs (slowest side starred): *Ephemeral→Observer,
//! Cassandra→Elasticsearch*, MongoDB→RethinkDB*, *PostgreSQL→TokuMX,
//! MySQL→Neo4j*. The §6.3 stress workload (25% posts / 75% comments) is
//! driven with N publisher threads against N subscriber workers; engines
//! run their calibrated latency models so the pairs saturate at the slower
//! database, as in the paper. Scaled from 400 AWS instances to threads on
//! one machine.
//!
//! Run with: `cargo run --release -p synapse-bench --bin fig13b_throughput [workers] [ms_per_step]`
//!
//! `workers` is either a maximum (sweeps powers of two up to it, the
//! figure's classic x-axis) or an explicit comma list such as `4,16,64`
//! to drive the same counts as the delivery-plane scaling sweep
//! (`scaling_sweep`) through the full ORM→broker→apply pipeline.

use std::time::Duration;
use synapse_apps::stress::{self, StressConfig};
use synapse_bench::render_table;
use synapse_core::{DeliveryMode, Ecosystem};
use synapse_db::{profiles, LatencyModel};

const PAIRS: &[(&str, &str)] = &[
    ("ephemeral", "ephemeral"),
    ("cassandra", "elasticsearch"),
    ("mongodb", "rethinkdb"),
    ("postgresql", "tokumx"),
    ("mysql", "neo4j"),
];

/// OS sleep granularity (~50-100 µs) would blur the differences between
/// calibrated per-op costs of 25-90 µs, so the bench scales all latencies
/// up by this factor; reported throughputs scale down accordingly while
/// the saturation *ordering* — the figure's claim — is preserved.
const LATENCY_SCALE: u32 = 4;

fn run_pair(pub_vendor: &str, sub_vendor: &str, workers: usize, step: Duration) -> f64 {
    let eco = Ecosystem::new();
    let latency = |v: &str| {
        if v == "ephemeral" {
            LatencyModel::off()
        } else {
            let base = profiles::calibrated_latency(v);
            LatencyModel::new(base.read * LATENCY_SCALE, base.write * LATENCY_SCALE)
        }
    };
    let pair = stress::build_pair_with_latencies(
        &eco,
        pub_vendor,
        sub_vendor,
        DeliveryMode::Causal,
        workers,
        latency(pub_vendor),
        latency(sub_vendor),
    );
    eco.connect();
    eco.start_all();
    let config = StressConfig {
        users: 50,
        post_percent: 25,
        publisher_threads: workers,
        duration: step,
    };
    let load = stress::run_load(&pair, &config);
    let throughput = stress::drain_and_throughput(&pair, &load, Duration::from_secs(30));
    eco.stop_all();
    throughput
}

/// Parses the workers argument: a comma list (`4,16,64`) is taken
/// verbatim; a single number is a maximum swept in powers of two.
fn parse_worker_counts(spec: Option<String>) -> Vec<usize> {
    match spec {
        Some(s) if s.contains(',') => s
            .split(',')
            .filter_map(|w| w.trim().parse().ok())
            .filter(|&w| w > 0)
            .collect(),
        other => {
            let max = other.and_then(|s| s.parse().ok()).unwrap_or(8);
            (0..).map(|i| 1 << i).take_while(|w| *w <= max).collect()
        }
    }
}

fn main() {
    let worker_counts = parse_worker_counts(std::env::args().nth(1));
    let step_ms: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let step = Duration::from_millis(step_ms);

    println!("Fig. 13(b) — throughput (msg/s) vs. workers, per DB combination");
    println!("(workload: 25% posts / 75% comments; engines run calibrated latency)\n");
    let mut rows = Vec::new();
    for (pub_vendor, sub_vendor) in PAIRS {
        let mut row = vec![format!("{pub_vendor} → {sub_vendor}")];
        for w in &worker_counts {
            let msg_s = run_pair(pub_vendor, sub_vendor, *w, step);
            row.push(format!("{:.0}", msg_s));
        }
        rows.push(row);
    }
    let header_cells: Vec<String> = std::iter::once("pair".to_string())
        .chain(worker_counts.iter().map(|w| format!("{w}w")))
        .collect();
    let header_refs: Vec<&str> = header_cells.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("expected shape: ephemeral→observer scales ~linearly and tops the chart;");
    println!("each DB pair saturates at its slower engine (paper: PostgreSQL ≈ 12k w/s,");
    println!("Elasticsearch ≈ 20k w/s — absolute numbers here are laptop-scaled).");
}
