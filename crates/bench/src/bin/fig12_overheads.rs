//! Fig. 12: publisher overheads in real applications.
//!
//! * `crowdtap` — replays a trace with the paper's controller mix over the
//!   five most-frequent Crowdtap controllers and prints the Fig. 12(a)
//!   table (call %, messages/call, deps/message, controller time, Synapse
//!   time, mean and 99th percentile).
//! * `apps` — Fig. 12(b): Synapse overhead for three controllers in each of
//!   Crowdtap, Diaspora, and Discourse.
//!
//! Run with: `cargo run --release -p synapse-bench --bin fig12_overheads -- crowdtap`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use synapse_bench::render_table;
use synapse_core::Ecosystem;
use synapse_db::LatencyModel;
use synapse_model::Id;
use synapse_mvc::{App, Request};

/// The Fig. 12(a) controller mix: (name, % of calls, app-work µs).
///
/// The third column is the paper's mean controller time scaled by 1/50 —
/// the business-logic cost of a Rails controller (rendering, GC, network)
/// that the in-process Rust stack otherwise wouldn't have. It makes the
/// overhead percentages comparable in *shape* to Fig. 12(a).
const MIX: &[(&str, u32, i64)] = &[
    ("awards/index", 170, 1130),
    ("brands/show", 160, 1950),
    ("actions/index", 150, 3630),
    ("me/show", 120, 290),
    ("actions/update", 115, 6120),
];

fn replay_crowdtap_trace(calls: usize) -> (std::sync::Arc<App>, Ecosystem) {
    let eco = Ecosystem::new();
    // Engines carry their calibrated latency so controller times are in
    // realistic proportion to Synapse's own cost.
    let apps = synapse_apps::crowdtap::build(&eco, LatencyModel::off());
    assert!(eco.connect().is_empty());
    eco.start_all();
    // 15 actions per user ≈ the paper's 17.8 deps/message on actions/index.
    let users = synapse_apps::crowdtap::seed(&apps.main, 40, 8);
    for _ in 0..14 {
        for (i, u) in users.iter().enumerate() {
            apps.main
                .orm()
                .create(
                    "Action",
                    synapse_model::vmap! {
                        "user_id" => u.raw(),
                        "brand_id" => ((i % 8) + 1) as u64,
                        "kind" => "poll",
                        "status" => "pending",
                    },
                )
                .unwrap();
        }
    }

    let total_weight: u32 = MIX.iter().map(|(_, w, _)| w).sum();
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..calls {
        let mut pick = rng.gen_range(0..total_weight);
        let (controller, _, app_work_us) = MIX
            .iter()
            .find(|(_, w, _)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .copied()
            .unwrap();
        let user = users[rng.gen_range(0..users.len())];
        let base = Request::as_user(user).param("app_work_us", app_work_us);
        let req = match controller {
            // ~3% of brand views bump the counter → 0.03 msgs/call.
            "brands/show" => base
                .param("brand_id", rng.gen_range(1..=8) as i64)
                .param("bump_views", rng.gen_range(0..100) < 3),
            // ~67% of action-index calls touch an action → 0.67 msgs/call.
            "actions/index" => base.param("touch", rng.gen_range(0..100) < 67),
            // 3 writes always, brand bump on ~46% → 3.46 msgs/call.
            "actions/update" => base
                .param("action_id", rng.gen_range(1..=40) as i64)
                .param("bump_brand", rng.gen_range(0..100) < 46),
            _ => base,
        };
        apps.main.dispatch(controller, &req).unwrap();
    }
    (apps.main, eco)
}

fn fig12a(calls: usize) {
    println!("Fig. 12(a) — Crowdtap publisher overheads ({calls}-call trace)\n");
    let (main, eco) = replay_crowdtap_trace(calls);
    let stats = main.stats();
    let total_calls = stats.total_calls();
    let mut rows = Vec::new();
    for (controller, _, _) in MIX {
        let row = stats.row(controller).expect("controller was exercised");
        rows.push(vec![
            controller.to_string(),
            format!("{:.1}%", 100.0 * row.calls as f64 / total_calls as f64),
            format!("{:.2}", row.mean_messages),
            format!("{}", row.p99_messages),
            format!("{:.1}", row.mean_deps_per_message),
            format!("{}", row.p99_deps),
            synapse_bench::ms(row.mean_total),
            synapse_bench::ms(row.p99_total),
            format!(
                "{} ({:.1}%)",
                synapse_bench::ms(row.mean_synapse),
                100.0 * row.overhead
            ),
            synapse_bench::ms(row.p99_synapse),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "controller",
                "%calls",
                "msg/call",
                "p99",
                "deps/msg",
                "p99",
                "ctrl ms",
                "p99",
                "synapse ms (%)",
                "p99",
            ],
            &rows
        )
    );
    println!(
        "overhead across all controllers: mean={:.1}%  (paper: mean=8%)",
        100.0 * stats.overall_overhead()
    );
    eco.stop_all();
}

fn fig12b(calls: usize) {
    println!("Fig. 12(b) — Synapse overhead across three applications\n");
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Crowdtap: three of its controllers.
    {
        let (main, eco) = replay_crowdtap_trace(calls);
        for c in ["awards/index", "brands/show", "actions/index"] {
            let row = main.stats().row(c).unwrap();
            rows.push(vec![
                "Crowdtap".into(),
                c.into(),
                synapse_bench::ms(row.mean_total),
                format!("{:.1}%", 100.0 * row.overhead),
            ]);
        }
        eco.stop_all();
    }

    // Diaspora + Discourse from the social ecosystem.
    {
        let eco = Ecosystem::new();
        let apps = synapse_apps::social::build(&eco, LatencyModel::off());
        assert!(eco.connect().is_empty());
        eco.start_all();
        let users = synapse_apps::social::seed_users(
            &apps.diaspora,
            &[("alice", "a@x.com"), ("bob", "b@x.com")],
        );
        let mut rng = SmallRng::seed_from_u64(7);
        // App-work values: the paper's Fig. 12(b) controller totals ÷ 50.
        for i in 0..calls {
            let user = users[i % users.len()];
            apps.diaspora
                .dispatch(
                    "stream/index",
                    &Request::as_user(user).param("app_work_us", 2122_i64),
                )
                .unwrap();
            apps.diaspora
                .dispatch(
                    "friends/create",
                    &Request::as_user(user)
                        .param("app_work_us", 1226_i64)
                        .param("user_id", users[(i + 1) % users.len()].raw()),
                )
                .unwrap();
            apps.diaspora
                .dispatch(
                    "posts/create",
                    &Request::as_user(user).param("app_work_us", 1796_i64).param(
                        "body",
                        format!("post {i} about topic-{}", rng.gen_range(0..5)),
                    ),
                )
                .unwrap();
            apps.discourse
                .dispatch(
                    "topics/index",
                    &Request::as_user(user).param("app_work_us", 940_i64),
                )
                .unwrap();
            apps.discourse
                .dispatch(
                    "topics/create",
                    &Request::as_user(user)
                        .param("app_work_us", 2380_i64)
                        .param("title", format!("topic {i}")),
                )
                .unwrap();
            apps.discourse
                .dispatch(
                    "posts/create",
                    &Request::as_user(user)
                        .param("app_work_us", 2060_i64)
                        .param("topic_id", 1_i64)
                        .param("body", "reply body"),
                )
                .unwrap();
        }
        for (app, name, controllers) in [
            (
                &apps.diaspora,
                "Diaspora",
                ["stream/index", "friends/create", "posts/create"],
            ),
            (
                &apps.discourse,
                "Discourse",
                ["topics/index", "topics/create", "posts/create"],
            ),
        ] {
            for c in controllers {
                let row = app.stats().row(c).unwrap();
                rows.push(vec![
                    name.into(),
                    c.into(),
                    synapse_bench::ms(row.mean_total),
                    format!("{:.1}%", 100.0 * row.overhead),
                ]);
            }
        }
        eco.stop_all();
    }

    println!(
        "{}",
        render_table(&["app", "controller", "ctrl ms", "synapse overhead"], &rows)
    );
    println!("read-only controllers show ≈0% overhead; write controllers stay modest,");
    println!("matching the paper's Fig. 12(b) shape.");
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let calls: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let _ = Duration::ZERO;
    let _ = Id(0);
    match mode.as_str() {
        "crowdtap" => fig12a(calls),
        "apps" => fig12b(calls.min(500)),
        _ => {
            fig12a(calls);
            println!();
            fig12b(calls.min(500));
        }
    }
}
