//! Table 3: effort to support each DB/ORM, measured — as the paper does —
//! in lines of code. Counts non-blank, non-comment lines of each adapter
//! module and of the shared default implementation they inherit.
//!
//! Run with: `cargo run -p synapse-bench --bin table3_loc`

use synapse_bench::render_table;

const ACTIVE_RECORD: &str = include_str!("../../../orm/src/adapters/active_record.rs");
const MONGOID: &str = include_str!("../../../orm/src/adapters/mongoid.rs");
const CEQUEL: &str = include_str!("../../../orm/src/adapters/cequel.rs");
const STRETCHER: &str = include_str!("../../../orm/src/adapters/stretcher.rs");
const NEO4J: &str = include_str!("../../../orm/src/adapters/neo4j.rs");
const NOBRAINER: &str = include_str!("../../../orm/src/adapters/nobrainer.rs");
const SHARED: &str = include_str!("../../../orm/src/adapter.rs");

/// Counts non-blank, non-comment source lines.
fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn main() {
    println!("Table 3 — per-DB support effort (lines of adapter code)\n");
    let rows = vec![
        ("PostgreSQL", "ActiveRecord", ACTIVE_RECORD, "Y", "Y"),
        ("MySQL", "ActiveRecord", "", "Y", "Y"),
        ("Oracle", "ActiveRecord", "", "Y", "Y"),
        ("MongoDB", "Mongoid", MONGOID, "Y", "Y"),
        ("TokuMX", "Mongoid", "", "Y", "Y"),
        ("Cassandra", "Cequel", CEQUEL, "Y", "Y"),
        ("Elasticsearch", "Stretcher", STRETCHER, "N/A", "Y"),
        ("Neo4j", "Neo4j", NEO4J, "N", "Y"),
        ("RethinkDB", "NoBrainer", NOBRAINER, "N", "Y"),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(db, orm, src, can_pub, can_sub)| {
            vec![
                (*db).to_string(),
                (*orm).to_string(),
                (*can_pub).to_string(),
                (*can_sub).to_string(),
                if src.is_empty() {
                    "\"".to_string() // same ORM as the row above, zero extra lines
                } else {
                    loc(src).to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["DB", "ORM", "Pub?", "Sub?", "ORM LoC"], &table)
    );
    println!(
        "shared adapter defaults (inherited by every ORM): {} LoC",
        loc(SHARED)
    );
    println!(
        "\nPaper's finding preserved: one vendor ≈ a few hundred lines; further\n\
         vendors on the same ORM are free (MySQL/Oracle/TokuMX rows)."
    );
}
