//! End-to-end publisher write-path throughput: intercepted ORM creates
//! inside a causal user scope carrying a configurable number of explicit
//! read dependencies — the publisher-side half of Fig. 13(a) (§6.2), where
//! the paper claims interception stays cheap up to 1,000 dependencies per
//! message. Each write runs the full pipeline: dependency computation and
//! dedup, lock acquisition, version-store bump, marshalling, wire encode,
//! journal, broker publish.
//!
//! Prints one `publisher/<scenario> <value> writes_per_sec` line per
//! scenario, consumed by `scripts/bench.sh` into
//! `BENCH_publisher_path.json`. The write count is tunable via
//! `PUBLISHER_MESSAGES` (the tier-1 smoke run uses a small count; the
//! recorded trajectory uses the defaults).

use std::sync::Arc;
use std::time::Instant;
use synapse_core::{
    add_read_deps, with_user_scope, DepName, Ecosystem, Publication, SynapseConfig,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;

/// `(deps_per_write, default_write_count)` per scenario. The 1000-dep
/// scenario is the acceptance number of the publisher trajectory.
const SCENARIOS: &[(usize, u64)] = &[(4, 20_000), (1000, 1_500)];

fn message_override() -> Option<u64> {
    std::env::var("PUBLISHER_MESSAGES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Runs `messages` published creates, each carrying `deps - 1` explicit
/// read dependencies plus its own object write dependency, and returns
/// writes per second. No queue is bound to the publisher: this measures
/// the publisher side alone, exactly the Fig. 13(a) overhead axis.
fn run(deps: usize, messages: u64) -> f64 {
    let eco = Ecosystem::new();
    let node = eco.add_node(
        SynapseConfig::new(format!("bench{deps}")),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node.publish(Publication::model("Post").fields(&["body", "n"]))
        .unwrap();

    let names: Vec<String> = (0..deps.saturating_sub(1))
        .map(|i| format!("{}/dep/{i}", node.app()))
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let user = DepName::object(node.app(), "User", Id(1));

    // Warm-up outside the timed window (first write populates caches).
    with_user_scope(user.clone(), || {
        add_read_deps(&refs);
        node.orm()
            .create("Post", vmap! { "body" => "warm", "n" => 0 })
            .unwrap();
    });

    let start = Instant::now();
    for m in 0..messages {
        with_user_scope(user.clone(), || {
            add_read_deps(&refs);
            node.orm()
                .create("Post", vmap! { "body" => "hello world", "n" => m })
                .unwrap();
        });
    }
    messages as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    for &(deps, default_messages) in SCENARIOS {
        let messages = message_override().unwrap_or(default_messages).max(1);
        println!(
            "publisher/write_{deps}deps {:.0} writes_per_sec",
            run(deps, messages)
        );
    }
}
