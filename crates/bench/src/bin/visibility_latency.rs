//! Fig. 10-style visibility latency: the time from the publisher's ORM
//! intercept to the moment the write is applied and visible on the
//! subscriber, broken down by pipeline stage, for each delivery mode.
//!
//! For every mode (weak, causal, global) the harness wires one publisher
//! and one subscriber at that mode, pushes a stream of creates through
//! the full pipeline, waits for the subscriber to report every message
//! visible, and then reads both nodes' telemetry snapshots: the
//! publisher's snapshot carries the intercept → dep-compute →
//! wire-encode → broker-enqueue stages, the subscriber's carries
//! queue-residency → pop/batch → dep-wait → apply plus the end-to-end
//! histogram the paper plots.
//!
//! Prints a single JSON object to stdout; `scripts/bench.sh` wraps it
//! with provenance metadata into `BENCH_visibility_latency.json`. The
//! message count is tunable via `VISIBILITY_MESSAGES` (the tier-1 smoke
//! run uses a small count).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_core::{
    DeliveryMode, Ecosystem, ModeSlice, Publication, Stage, Subscription, SynapseConfig,
    TelemetrySnapshot,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, ModelSchema};
use synapse_orm::adapters::{ActiveRecordAdapter, MongoidAdapter};

const DEFAULT_MESSAGES: u64 = 2_000;

fn message_override() -> Option<u64> {
    std::env::var("VISIBILITY_MESSAGES")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Runs `messages` creates through a publisher/subscriber pair pinned to
/// `mode` and returns both nodes' telemetry snapshots once every message
/// is visible on the subscriber.
fn run(mode: DeliveryMode, messages: u64) -> (TelemetrySnapshot, TelemetrySnapshot) {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub").mode(mode),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["body", "n"]))
        .unwrap();

    let subscriber = eco.add_node(
        SynapseConfig::new("sub").mode(mode),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::new("Post").field("body").field("n"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "n"]))
        .unwrap();

    assert!(eco.connect().is_empty(), "static pub/sub checks must pass");
    eco.start_all();

    for n in 0..messages {
        publisher
            .orm()
            .create("Post", vmap! { "body" => "visibility probe", "n" => n })
            .unwrap();
    }

    // Every message must become visible before the histograms are read.
    let slice = mode.slice();
    let deadline = Instant::now() + Duration::from_secs(60);
    while subscriber.telemetry().delivered(slice) < messages {
        assert!(
            Instant::now() < deadline,
            "{mode:?}: subscriber failed to drain ({}/{messages})",
            subscriber.telemetry().delivered(slice)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    eco.stop_all();

    (
        publisher.telemetry_snapshot(),
        subscriber.telemetry_snapshot(),
    )
}

/// `{"count":…,"sum_ns":…,"p50_ns":…,"p99_ns":…}` for one stage summary.
fn stage_json(snap: &TelemetrySnapshot, slice: ModeSlice, stage: Stage) -> String {
    let s = snap.stage(slice, stage);
    format!(
        "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
        s.count, s.sum_nanos, s.p50_nanos, s.p99_nanos
    )
}

fn main() {
    let messages = message_override().unwrap_or(DEFAULT_MESSAGES).max(1);
    let mut modes_json = String::new();
    let mut causal_sub_snapshot = None;

    for (i, mode) in [
        DeliveryMode::Weak,
        DeliveryMode::Causal,
        DeliveryMode::Global,
    ]
    .into_iter()
    .enumerate()
    {
        let (pub_snap, sub_snap) = run(mode, messages);
        let slice = mode.slice();
        if i > 0 {
            modes_json.push_str(",\n");
        }
        let _ = write!(
            modes_json,
            "    \"{}\": {{\n      \"delivered\": {},\n      \"stages\": {{\n",
            slice.name(),
            sub_snap.delivered[slice.index()]
        );
        for (j, stage) in Stage::all().into_iter().enumerate() {
            // Publisher-side stages come from the publishing node's
            // snapshot, subscriber-side stages (and end-to-end) from the
            // subscribing node's.
            let source = if stage.is_subscriber_stage() || stage == Stage::EndToEnd {
                &sub_snap
            } else {
                &pub_snap
            };
            let _ = writeln!(
                modes_json,
                "        \"{}\": {}{}",
                stage.name(),
                stage_json(source, slice, stage),
                if j + 1 < Stage::all().len() { "," } else { "" }
            );
        }
        modes_json.push_str("      }\n    }");
        if mode == DeliveryMode::Causal {
            causal_sub_snapshot = Some(sub_snap);
        }
    }

    let snapshot = causal_sub_snapshot.expect("causal mode ran");
    println!("{{");
    println!("  \"messages_per_mode\": {messages},");
    println!("  \"modes\": {{");
    println!("{modes_json}");
    println!("  }},");
    // The full subscriber telemetry snapshot of the causal run — the
    // paper's default posture — so the trajectory records counters and
    // event-ring totals alongside the distilled stage percentiles.
    println!("  \"causal_subscriber_snapshot\": {}", snapshot.to_json());
    println!("}}");
}
