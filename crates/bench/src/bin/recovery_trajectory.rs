//! Recovery-time trajectory for the durability plane: how long a durable
//! broker takes to come back as a function of the WAL tail it must replay,
//! and how checkpoint compaction bends that curve.
//!
//! Two sweeps, each over a fresh on-disk log:
//!
//! * **WAL-tail sweep** — publish N messages (acking a quarter, so replay
//!   also consumes ack records), drop the broker, and time
//!   `Broker::open_durable` cold. Recovery is replay-bound, so the
//!   trajectory should be near-linear in the tail length.
//! * **Checkpoint sweep** — a fixed write horizon with a checkpoint every
//!   K messages (K = 0 means never). Each checkpoint rewrites live state
//!   into a fresh segment and garbage-collects the history behind it, so
//!   recovery time should collapse toward the live backlog size as K
//!   shrinks.
//!
//! Prints a single JSON object to stdout; `scripts/bench.sh` wraps it with
//! provenance metadata into `BENCH_recovery.json`. Tunables for the smoke
//! run: `RECOVERY_TAILS` (comma-separated entry counts),
//! `RECOVERY_TOTAL` / `RECOVERY_INTERVALS` for the checkpoint sweep.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};
use synapse_broker::{Broker, FsyncPolicy, QueueConfig, WalConfig};

const DEFAULT_TAILS: &[u64] = &[256, 1024, 4096];
const DEFAULT_TOTAL: u64 = 4096;
const DEFAULT_INTERVALS: &[u64] = &[0, 512, 128];

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-recovery-trajectory-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

struct Sample {
    recovery_ns: u128,
    replayed_entries: u64,
    messages_recovered: u64,
    segments_scanned: u64,
}

/// Writes `entries` messages (acking every fourth) with a checkpoint every
/// `checkpoint_every` messages (0 = never), drops the broker, and times
/// the cold reopen.
fn run_one(entries: u64, checkpoint_every: u64, label: &str) -> Sample {
    let dir = temp_dir(label);
    // Interval fsync keeps the write phase fast while still producing a
    // fully-synced log to replay (the final sync happens on drop-free
    // append paths; recovery replays whatever frames are on disk).
    let cfg = || {
        WalConfig::new(&dir)
            .segment_max_bytes(256 * 1024)
            .fsync(FsyncPolicy::Interval(64))
    };
    {
        let (broker, _) = Broker::open_durable(cfg()).expect("fresh open");
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        let consumer = broker.consumer("q").expect("queue declared");
        for i in 0..entries {
            broker
                .publish("x", format!("recovery-payload-{i:08}").as_str())
                .expect("publish");
            if i % 4 == 3 {
                if let Some(d) = consumer.pop(Duration::ZERO) {
                    consumer.ack(d.tag);
                }
            }
            if checkpoint_every > 0 && i % checkpoint_every == checkpoint_every - 1 {
                broker.checkpoint().expect("checkpoint");
            }
        }
        broker.sync_wal().expect("final sync");
    }
    let start = Instant::now();
    let (broker, report) = Broker::open_durable(cfg()).expect("cold reopen");
    let recovery_ns = start.elapsed().as_nanos();
    drop(broker);
    let _ = std::fs::remove_dir_all(&dir);
    Sample {
        recovery_ns,
        replayed_entries: report.replayed_entries,
        messages_recovered: report.messages_recovered,
        segments_scanned: report.segments_scanned,
    }
}

fn sample_json(out: &mut String, sample: &Sample) {
    let _ = write!(
        out,
        "\"recovery_ns\": {}, \"recovery_ms\": {:.3}, \"replayed_entries\": {}, \
         \"messages_recovered\": {}, \"segments_scanned\": {}",
        sample.recovery_ns,
        sample.recovery_ns as f64 / 1e6,
        sample.replayed_entries,
        sample.messages_recovered,
        sample.segments_scanned
    );
}

fn main() {
    let tails = env_list("RECOVERY_TAILS", DEFAULT_TAILS);
    let total = env_u64("RECOVERY_TOTAL", DEFAULT_TOTAL);
    let intervals = env_list("RECOVERY_INTERVALS", DEFAULT_INTERVALS);

    let mut tail_json = String::new();
    for (i, &entries) in tails.iter().enumerate() {
        let sample = run_one(entries, 0, "tail");
        if i > 0 {
            tail_json.push_str(",\n");
        }
        let _ = write!(tail_json, "    {{\"entries\": {entries}, ");
        sample_json(&mut tail_json, &sample);
        tail_json.push('}');
    }

    let mut ckpt_json = String::new();
    for (i, &every) in intervals.iter().enumerate() {
        let sample = run_one(total, every, "ckpt");
        if i > 0 {
            ckpt_json.push_str(",\n");
        }
        let _ = write!(
            ckpt_json,
            "    {{\"total_entries\": {total}, \"checkpoint_every\": {every}, "
        );
        sample_json(&mut ckpt_json, &sample);
        ckpt_json.push('}');
    }

    println!("{{");
    println!("  \"fsync\": \"interval(64)\",");
    println!("  \"ack_ratio\": 0.25,");
    println!("  \"wal_tail_sweep\": [");
    println!("{tail_json}");
    println!("  ],");
    println!("  \"checkpoint_sweep\": [");
    println!("{ckpt_json}");
    println!("  ]");
    println!("}}");
}
