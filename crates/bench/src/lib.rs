//! Shared helpers for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md
//! for paper-vs-measured comparisons):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1_support_matrix` | Table 1 — DB types/vendors |
//! | `table3_loc` | Table 3 — per-DB support effort |
//! | `fig8_dependencies` | Fig. 8 — dependency & message generation |
//! | `fig9_timeline` | Fig. 9 — ecosystem execution timelines |
//! | `fig12_overheads` | Fig. 12 — publisher overheads in real apps |
//! | `fig13a_dependencies` | Fig. 13(a) — overhead vs. #dependencies |
//! | `fig13b_throughput` | Fig. 13(b) — throughput vs. workers, DB pairs |
//! | `fig13c_delivery_modes` | Fig. 13(c) — throughput vs. workers, modes |

use std::time::Duration;

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Renders an aligned text table: a header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Polls `cond` until it holds or `timeout` passes.
pub fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn ms_formats_two_decimals() {
        assert_eq!(ms(Duration::from_micros(1234)), "1.23");
    }
}
