//! Criterion micro-benchmarks for the wire format: marshalling write
//! messages to JSON and back (the per-message serialization cost every
//! publisher pays).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use synapse_core::{Operation, WriteMessage};
use synapse_model::{varray, vmap, wire, Id, Value};

fn sample_message(ops: usize, deps: usize) -> WriteMessage {
    let operations = (0..ops)
        .map(|i| Operation {
            operation: "update".into(),
            types: vec!["User".into()],
            id: Id(i as u64 + 1),
            attributes: match vmap! {
                "name" => "a reasonably long user name",
                "interests" => varray!["cats", "dogs", "hiking"],
                "points" => 12345,
            } {
                Value::Map(m) => m,
                _ => unreachable!(),
            },
        })
        .collect();
    let dependencies: BTreeMap<u64, u64> = (0..deps as u64).map(|k| (k * 97, k)).collect();
    WriteMessage {
        app: "bench".into(),
        operations,
        dependencies,
        published_at: 1_700_000_000_000_000,
        generation: 1,
        vectors: BTreeMap::new(),
    }
}

fn bench_encode(c: &mut Criterion) {
    let msg = sample_message(1, 4);
    c.bench_function("wire/encode_message_1op_4deps", |b| {
        b.iter(|| std::hint::black_box(&msg).encode())
    });
    let big = sample_message(10, 32);
    c.bench_function("wire/encode_message_10op_32deps", |b| {
        b.iter(|| std::hint::black_box(&big).encode())
    });
}

fn bench_decode(c: &mut Criterion) {
    let text = sample_message(1, 4).encode();
    c.bench_function("wire/decode_message_1op_4deps", |b| {
        b.iter(|| WriteMessage::decode(std::hint::black_box(&text)).unwrap())
    });
}

fn bench_value_roundtrip(c: &mut Criterion) {
    let v = vmap! {
        "nested" => vmap! { "a" => varray![1, 2, 3], "b" => "text" },
        "n" => 42,
        "f" => 1.5,
    };
    let text = wire::encode(&v);
    c.bench_function("wire/value_encode", |b| {
        b.iter(|| wire::encode(std::hint::black_box(&v)))
    });
    c.bench_function("wire/value_decode", |b| {
        b.iter(|| wire::decode(std::hint::black_box(&text)).unwrap())
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_value_roundtrip);
criterion_main!(benches);
