//! Criterion micro-benchmark of the full publish path: one ORM write
//! through interception, dependency bump, marshalling, and broker publish —
//! versus the same write unpublished. The difference is Synapse's
//! per-write cost (the y-intercept of Fig. 13(a)).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use synapse_core::{Ecosystem, Publication, SynapseConfig};
use synapse_db::LatencyModel;
use synapse_model::{vmap, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;

fn bench_create(c: &mut Criterion, name: &str, publish: bool) {
    let eco = Ecosystem::new();
    let node = eco.add_node(
        SynapseConfig::new(format!("bench_{publish}")),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    if publish {
        node.publish(Publication::model("Post").fields(&["body", "n"]))
            .unwrap();
    }
    let n = AtomicU64::new(0);
    c.bench_function(name, |b| {
        b.iter(|| {
            node.orm()
                .create(
                    "Post",
                    vmap! { "body" => "hello world", "n" => n.fetch_add(1, Ordering::Relaxed) },
                )
                .unwrap()
        })
    });
}

fn bench_publish_path(c: &mut Criterion) {
    bench_create(c, "publish_path/create_unpublished", false);
    bench_create(c, "publish_path/create_published", true);
}

fn bench_transaction_batching(c: &mut Criterion) {
    let eco = Ecosystem::new();
    let node = eco.add_node(
        SynapseConfig::new("bench_tx"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node.publish(Publication::model("Post").fields(&["n"]))
        .unwrap();
    let n = AtomicU64::new(0);
    c.bench_function("publish_path/txn_4_writes_1_message", |b| {
        b.iter(|| {
            node.transaction(|| {
                for _ in 0..4 {
                    node.orm()
                        .create("Post", vmap! { "n" => n.fetch_add(1, Ordering::Relaxed) })
                        .unwrap();
                }
            })
        })
    });
}

criterion_group!(benches, bench_publish_path, bench_transaction_batching);
criterion_main!(benches);
