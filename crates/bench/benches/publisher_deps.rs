//! Criterion sweep of the publisher dependency pipeline: one published
//! write inside a causal scope carrying 1 → 1000 dependencies — the
//! publisher-side shape of Fig. 13(a). Each iteration pays the whole
//! interception path: scope dependency recording, dedup/normalization,
//! dependency locking, the version-store bump script, marshalling, and
//! the wire encode of a message whose dependency map has N entries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use synapse_core::{
    add_read_deps, with_user_scope, DepName, Ecosystem, Publication, SynapseConfig,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema};
use synapse_orm::adapters::MongoidAdapter;

const DEP_COUNTS: &[usize] = &[1, 10, 100, 1000];

fn bench_publisher_deps(c: &mut Criterion) {
    for &deps in DEP_COUNTS {
        let eco = Ecosystem::new();
        let node = eco.add_node(
            SynapseConfig::new(format!("bench{deps}")),
            Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
        );
        node.orm().define_model(ModelSchema::open("Post")).unwrap();
        node.publish(Publication::model("Post").fields(&["body", "n"]))
            .unwrap();
        let names: Vec<String> = (0..deps.saturating_sub(1))
            .map(|i| format!("{}/dep/{i}", node.app()))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let user = DepName::object(node.app(), "User", Id(1));
        let n = AtomicU64::new(0);
        c.bench_function(format!("publisher_deps/{deps}"), |b| {
            b.iter(|| {
                with_user_scope(user.clone(), || {
                    add_read_deps(&refs);
                    node.orm()
                        .create(
                            "Post",
                            vmap! { "body" => "x", "n" => n.fetch_add(1, Ordering::Relaxed) },
                        )
                        .unwrap()
                })
            })
        });
    }
}

criterion_group!(benches, bench_publisher_deps);
criterion_main!(benches);
