//! Criterion micro-benchmarks for the raw engine write paths (latency
//! models off — this measures the engines' real in-process costs, which
//! sit underneath every Fig. 13 number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use synapse_db::{profiles, Filter, LatencyModel, Query, Row};
use synapse_model::{Id, Value};

fn insert_row(n: u64) -> Row {
    let mut row = Row::new();
    row.insert("name".into(), Value::from(format!("user-{n}")));
    row.insert("n".into(), Value::from(n));
    row
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines/insert");
    for vendor in [
        "postgresql",
        "mongodb",
        "cassandra",
        "elasticsearch",
        "neo4j",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(vendor), &vendor, |b, vendor| {
            let engine = profiles::by_name(vendor, LatencyModel::off());
            engine
                .execute(&Query::CreateTable { table: "t".into() })
                .unwrap();
            let next = AtomicU64::new(1);
            b.iter(|| {
                let id = next.fetch_add(1, Ordering::Relaxed);
                engine
                    .execute(&Query::Insert {
                        table: "t".into(),
                        id: Id(id),
                        row: insert_row(id),
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_point_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines/point_read");
    for vendor in ["postgresql", "mongodb", "cassandra"] {
        group.bench_with_input(BenchmarkId::from_parameter(vendor), &vendor, |b, vendor| {
            let engine = profiles::by_name(vendor, LatencyModel::off());
            engine
                .execute(&Query::CreateTable { table: "t".into() })
                .unwrap();
            for i in 1..=1000u64 {
                engine
                    .execute(&Query::Insert {
                        table: "t".into(),
                        id: Id(i),
                        row: insert_row(i),
                    })
                    .unwrap();
            }
            let next = AtomicU64::new(1);
            b.iter(|| {
                let id = next.fetch_add(1, Ordering::Relaxed) % 1000 + 1;
                engine
                    .execute(&Query::Select {
                        table: "t".into(),
                        filter: Filter::ById(Id(id)),
                        order: None,
                        limit: Some(1),
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines/update");
    for vendor in ["postgresql", "mysql", "cassandra"] {
        group.bench_with_input(BenchmarkId::from_parameter(vendor), &vendor, |b, vendor| {
            let engine = profiles::by_name(vendor, LatencyModel::off());
            engine
                .execute(&Query::CreateTable { table: "t".into() })
                .unwrap();
            engine
                .execute(&Query::Insert {
                    table: "t".into(),
                    id: Id(1),
                    row: insert_row(1),
                })
                .unwrap();
            let next = AtomicU64::new(0);
            b.iter(|| {
                let mut set = Row::new();
                set.insert(
                    "n".into(),
                    Value::from(next.fetch_add(1, Ordering::Relaxed)),
                );
                engine
                    .execute(&Query::Update {
                        table: "t".into(),
                        filter: Filter::ById(Id(1)),
                        set,
                        unset: vec![],
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_point_reads, bench_updates);
criterion_main!(benches);
