//! Criterion micro-benchmarks for the version store: the publisher bump
//! script and the subscriber wait/apply path, at varying dependency counts
//! and shard counts. These back the cost decomposition of Fig. 13(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use synapse_versionstore::VersionStore;

fn bench_publish_bump(c: &mut Criterion) {
    let mut group = c.benchmark_group("versionstore/publish_bump");
    for deps in [1usize, 4, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(deps), &deps, |b, &deps| {
            let store = VersionStore::new(4);
            let script: Vec<(u64, bool)> =
                (0..deps as u64).map(|k| (k, k.is_multiple_of(4))).collect();
            b.iter(|| store.publish_bump(std::hint::black_box(&script)).unwrap());
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("versionstore/apply");
    for deps in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(deps), &deps, |b, &deps| {
            let store = VersionStore::new(4);
            let keys: Vec<u64> = (0..deps as u64).collect();
            b.iter(|| store.apply(std::hint::black_box(&keys)).unwrap());
        });
    }
    group.finish();
}

fn bench_satisfied_check(c: &mut Criterion) {
    let store = VersionStore::new(8);
    let deps: Vec<(u64, u64)> = (0..16).map(|k| (k, 0)).collect();
    c.bench_function("versionstore/satisfied_16deps", |b| {
        b.iter(|| store.satisfied(std::hint::black_box(&deps)).unwrap())
    });
}

fn bench_shard_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("versionstore/shards");
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let store = VersionStore::new(shards);
                let script: Vec<(u64, bool)> = (0..32u64).map(|k| (k * 101, true)).collect();
                b.iter(|| store.publish_bump(std::hint::black_box(&script)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_publish_bump,
    bench_apply,
    bench_satisfied_check,
    bench_shard_counts
);
criterion_main!(benches);
