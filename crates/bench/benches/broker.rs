//! Criterion micro-benchmarks for the message broker: publish fanout and
//! the pop/ack consumer path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use synapse_broker::{Broker, QueueConfig};

fn bench_publish_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/publish_fanout");
    for queues in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(queues),
            &queues,
            |b, &queues| {
                let broker = Broker::new();
                for q in 0..queues {
                    let name = format!("q{q}");
                    broker.declare_queue(&name, QueueConfig::default());
                    broker.bind("pub", &name);
                }
                // Drain continuously so queues stay small.
                let consumers: Vec<_> = (0..queues)
                    .map(|q| broker.consumer(&format!("q{q}")).unwrap())
                    .collect();
                b.iter(|| {
                    broker.publish("pub", "{\"op\":\"bench\"}").unwrap();
                    for consumer in &consumers {
                        if let Some(d) = consumer.pop(Duration::from_millis(10)) {
                            consumer.ack(d.tag);
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_publish_fanout_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/publish_fanout_batched");
    const BATCH: usize = 32;
    for queues in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(queues),
            &queues,
            |b, &queues| {
                let broker = Broker::new();
                for q in 0..queues {
                    let name = format!("q{q}");
                    broker.declare_queue(&name, QueueConfig::default());
                    broker.bind("pub", &name);
                }
                let consumers: Vec<_> = (0..queues)
                    .map(|q| broker.consumer(&format!("q{q}")).unwrap())
                    .collect();
                let payloads = ["{\"op\":\"bench\"}"; BATCH];
                b.iter(|| {
                    broker
                        .publish_batch("pub", payloads.iter().copied())
                        .unwrap();
                    for consumer in &consumers {
                        let batch = consumer.pop_batch(BATCH, Duration::from_millis(10));
                        let tags: Vec<u64> = batch.iter().map(|d| d.tag).collect();
                        consumer.ack_batch(&tags);
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_pop_ack(c: &mut Criterion) {
    c.bench_function("broker/pop_ack", |b| {
        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("pub", "q");
        let consumer = broker.consumer("q").unwrap();
        b.iter(|| {
            broker.publish("pub", "payload").unwrap();
            let d = consumer.pop(Duration::from_millis(10)).unwrap();
            consumer.ack(d.tag);
        });
    });
}

criterion_group!(
    benches,
    bench_publish_fanout,
    bench_publish_fanout_batched,
    bench_pop_ack
);
criterion_main!(benches);
