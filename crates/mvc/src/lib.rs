//! Minimal MVC web framework substrate.
//!
//! Synapse piggybacks on the MVC pattern (§2): *controllers* are the units
//! of work inside which dependencies are tracked, controllers run within
//! *user sessions* (whose updates Synapse serializes per user), and
//! *background jobs* (Sidekiq-style) form their own causal scopes. This
//! crate provides exactly that slice of Rails:
//!
//! * [`App`] — a named application holding an ORM-backed Synapse node and a
//!   controller registry;
//! * [`Request`]/[`Response`] — dispatch context with params and the
//!   session's current user;
//! * controller dispatch that opens the right causal scope and records
//!   per-controller timing into [`ControllerStats`] (the Fig. 12
//!   instrumentation);
//! * [`JobQueue`] — background jobs executed by worker threads, each in its
//!   own scope.

pub mod app;
pub mod jobs;

pub use app::{App, Request, Response};
pub use jobs::JobQueue;
pub use synapse_core::ControllerStats;
