//! Background jobs (the paper's Sidekiq stand-in).
//!
//! §4.2: Synapse tracks dependencies "within the scope of individual
//! background jobs (e.g., with Sidekiq)". Each job enqueued here executes
//! on a worker thread inside its own causal scope.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A queued job body.
pub type Job = Box<dyn FnOnce() + Send>;

/// A fixed worker pool executing jobs, each in its own causal scope.
///
/// # Examples
///
/// ```
/// use synapse_mvc::JobQueue;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let queue = JobQueue::start(2);
/// let counter = Arc::new(AtomicU32::new(0));
/// for _ in 0..10 {
///     let counter = counter.clone();
///     queue.enqueue(move || {
///         counter.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// queue.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 10);
/// ```
pub struct JobQueue {
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    enqueued: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

impl JobQueue {
    /// Starts a pool with `workers` threads.
    pub fn start(workers: usize) -> Self {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let enqueued = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let completed = completed.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    // Each job runs in its own causal scope (§4.2).
                    let _ = synapse_core::with_scope(job);
                    completed.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        JobQueue {
            tx,
            workers: handles,
            enqueued,
            completed,
        }
    }

    /// Enqueues a job.
    pub fn enqueue(&self, job: impl FnOnce() + Send + 'static) {
        self.enqueued.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(Box::new(job));
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Waits until every enqueued job has completed (spin/sleep polling).
    pub fn join(&self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        while self.completed.load(Ordering::SeqCst) < self.enqueued.load(Ordering::SeqCst) {
            if Instant::now() > deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the pool after draining queued jobs.
    pub fn shutdown(self) {
        self.join();
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_inside_their_own_scope() {
        let queue = JobQueue::start(2);
        let (tx, rx) = unbounded();
        queue.enqueue(move || {
            let _ = tx.send(synapse_core::in_scope());
        });
        queue.join();
        assert!(rx.recv().unwrap(), "job body must be inside a scope");
        queue.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let queue = JobQueue::start(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            queue.enqueue(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        queue.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }
}
