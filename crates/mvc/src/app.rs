//! Applications, controllers, and request dispatch.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use synapse_core::{ControllerStats, DepName, SynapseNode};
use synapse_model::{Id, Value};
use synapse_orm::{Orm, OrmError};

/// An incoming request: the session's user and string params.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// The authenticated user's id, if any (binds the causal scope to the
    /// user session, §4.2).
    pub current_user: Option<Id>,
    /// Request parameters.
    pub params: BTreeMap<String, Value>,
}

impl Request {
    /// An anonymous request.
    pub fn anonymous() -> Self {
        Request::default()
    }

    /// A request authenticated as `user`.
    pub fn as_user(user: Id) -> Self {
        Request {
            current_user: Some(user),
            ..Request::default()
        }
    }

    /// Adds a parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Reads a parameter ([`Value::Null`] when absent).
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.params.get(key).unwrap_or(&NULL)
    }
}

/// A controller's response body.
pub type Response = Value;

/// A controller body: business logic acting on the models through the
/// app's ORM.
pub type Controller = Arc<dyn Fn(&App, &Request) -> Result<Response, OrmError> + Send + Sync>;

/// One MVC application: a Synapse node plus a controller registry.
pub struct App {
    node: Arc<SynapseNode>,
    controllers: RwLock<BTreeMap<String, Controller>>,
    stats: Arc<ControllerStats>,
}

impl App {
    /// Wraps a Synapse node as an MVC application.
    pub fn new(node: Arc<SynapseNode>) -> Arc<Self> {
        Arc::new(App {
            node,
            controllers: RwLock::new(BTreeMap::new()),
            stats: Arc::new(ControllerStats::new()),
        })
    }

    /// The application name.
    pub fn name(&self) -> &str {
        self.node.app()
    }

    /// The underlying Synapse node.
    pub fn node(&self) -> &Arc<SynapseNode> {
        &self.node
    }

    /// The app's ORM.
    pub fn orm(&self) -> &Arc<Orm> {
        self.node.orm()
    }

    /// The per-controller statistics collector (Fig. 12).
    pub fn stats(&self) -> &Arc<ControllerStats> {
        &self.stats
    }

    /// Registers a controller under `name` (e.g. `posts/create`).
    pub fn controller<F>(&self, name: &str, f: F)
    where
        F: Fn(&App, &Request) -> Result<Response, OrmError> + Send + Sync + 'static,
    {
        self.controllers
            .write()
            .insert(name.to_owned(), Arc::new(f));
    }

    /// Dispatches a request to a controller, inside a causal scope bound to
    /// the request's user session, recording Fig. 12 timing.
    pub fn dispatch(&self, controller: &str, request: &Request) -> Result<Response, OrmError> {
        let body = self
            .controllers
            .read()
            .get(controller)
            .cloned()
            .ok_or_else(|| OrmError::Restriction(format!("no controller {controller}")))?;
        let start = Instant::now();
        let (result, scope_stats) = match request.current_user {
            Some(user) => {
                let user_dep = DepName::object(self.name(), "User", user);
                synapse_core::with_user_scope(user_dep, || body(self, request))
            }
            None => synapse_core::with_scope(|| body(self, request)),
        };
        self.stats.record(controller, start.elapsed(), scope_stats);
        result
    }

    /// Controller names registered on this app.
    pub fn controller_names(&self) -> Vec<String> {
        self.controllers.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_broker::Broker;
    use synapse_core::{Publication, SynapseConfig};
    use synapse_db::LatencyModel;
    use synapse_model::{vmap, ModelSchema};
    use synapse_orm::adapters::MongoidAdapter;

    fn test_app() -> Arc<App> {
        let node = SynapseNode::new(
            SynapseConfig::new("blog"),
            Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
            Broker::new(),
        );
        node.orm().define_model(ModelSchema::open("Post")).unwrap();
        node.publish(Publication::model("Post").field("body"))
            .unwrap();
        App::new(node)
    }

    #[test]
    fn dispatch_runs_registered_controllers() {
        let app = test_app();
        app.controller("posts/create", |app, req| {
            let post = app
                .orm()
                .create("Post", vmap! { "body" => req.get("body").clone() })?;
            Ok(Value::from(post.id.raw()))
        });
        let res = app
            .dispatch(
                "posts/create",
                &Request::as_user(Id(1)).param("body", "hello"),
            )
            .unwrap();
        assert_eq!(res.as_int(), Some(1));
        assert_eq!(app.orm().count("Post").unwrap(), 1);
    }

    #[test]
    fn missing_controller_is_an_error() {
        let app = test_app();
        assert!(app.dispatch("nope", &Request::anonymous()).is_err());
    }

    #[test]
    fn dispatch_records_stats_per_controller() {
        let app = test_app();
        app.controller("posts/create", |app, _| {
            app.orm().create("Post", vmap! { "body" => "x" })?;
            Ok(Value::Null)
        });
        app.controller("posts/index", |app, _| {
            app.orm().all("Post")?;
            Ok(Value::Null)
        });
        for _ in 0..5 {
            app.dispatch("posts/create", &Request::as_user(Id(1)))
                .unwrap();
            app.dispatch("posts/index", &Request::anonymous()).unwrap();
        }
        let create = app.stats().row("posts/create").unwrap();
        assert_eq!(create.calls, 5);
        assert!(create.mean_messages >= 1.0, "writes publish messages");
        assert!(create.mean_synapse.as_nanos() > 0);
        let index = app.stats().row("posts/index").unwrap();
        assert_eq!(index.mean_messages, 0.0, "read-only controller");
        assert_eq!(app.stats().total_calls(), 10);
    }
}
