//! The open-source social product recommender (§5.2, Fig. 11).
//!
//! Five services, wired exactly as the paper's figure:
//!
//! * **Diaspora** (PostgreSQL) — the social network: users, posts,
//!   comments, friendships; publishes all of them.
//! * **Discourse** (PostgreSQL) — the discussion board: topics and replies;
//!   publishes them.
//! * **Mailer** (MongoDB) — observes Diaspora posts and notifies the
//!   author's friends; persists users/friendships, observes posts;
//!   suppresses emails during bootstrap (Fig. 2).
//! * **Semantic analyzer** (MySQL) — subscribes to posts and replies,
//!   extracts topics ([`crate::analyzer`]), decorates `User` with
//!   `interests`, and publishes the decoration.
//! * **Spree** (MySQL) — the e-commerce app: products; subscribes to users'
//!   names (from Diaspora) and interests (from the analyzer) and serves
//!   interest-matched product recommendations.

use crate::analyzer::{extract_topics, merge_interests};
use parking_lot::Mutex;
use std::sync::Arc;
use synapse_core::{Ecosystem, Publication, Subscription, SynapseConfig};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema, Value};
use synapse_mvc::{App, Request};
use synapse_orm::adapters::{ActiveRecordAdapter, MongoidAdapter};
use synapse_orm::CallbackPoint;

/// The wired five-service ecosystem.
pub struct SocialApps {
    /// Diaspora, the social network and owner of `User`.
    pub diaspora: Arc<App>,
    /// Discourse, the discussion board.
    pub discourse: Arc<App>,
    /// The mailer service.
    pub mailer: Arc<App>,
    /// Emails "sent" by the mailer (recipient descriptions).
    pub outbox: Arc<Mutex<Vec<String>>>,
    /// The semantic analyzer (decorator).
    pub analyzer: Arc<App>,
    /// Spree, the e-commerce app.
    pub spree: Arc<App>,
}

/// Builds and wires the ecosystem onto `eco` (call `eco.connect()` and
/// `eco.start_all()` afterwards). `latency` applies to every engine.
pub fn build(eco: &Ecosystem, latency: LatencyModel) -> SocialApps {
    let diaspora = build_diaspora(eco, latency);
    let discourse = build_discourse(eco, latency);
    let (mailer, outbox) = build_mailer(eco, latency);
    let analyzer = build_analyzer(eco, latency);
    let spree = build_spree(eco, latency);
    SocialApps {
        diaspora,
        discourse,
        mailer,
        outbox,
        analyzer,
        spree,
    }
}

/// Simulated business-logic time, driven by the Fig. 12 trace's
/// `app_work_us` parameter (see [`crate::crowdtap`] for rationale).
fn app_work(req: &Request) {
    if let Some(us) = req.get("app_work_us").as_int() {
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us as u64));
        }
    }
}

fn build_diaspora(eco: &Ecosystem, latency: LatencyModel) -> Arc<App> {
    let node = eco.add_node(
        SynapseConfig::new("diaspora"),
        Arc::new(ActiveRecordAdapter::new("postgresql", latency)),
    );
    let orm = node.orm();
    orm.define_model(
        ModelSchema::new("User")
            .field("name")
            .field("email")
            .has_many("posts", "Post"),
    )
    .unwrap();
    orm.define_model(
        ModelSchema::new("Post")
            .field("body")
            .field("public")
            .belongs_to("author", "User"),
    )
    .unwrap();
    orm.define_model(
        ModelSchema::new("Comment")
            .field("body")
            .belongs_to("post", "Post")
            .belongs_to("author", "User"),
    )
    .unwrap();
    orm.define_model(
        ModelSchema::new("Friendship")
            .belongs_to("user1", "User")
            .belongs_to("user2", "User"),
    )
    .unwrap();
    node.publish(Publication::model("User").fields(&["name", "email"]))
        .unwrap();
    node.publish(Publication::model("Post").fields(&["body", "public", "author_id"]))
        .unwrap();
    node.publish(Publication::model("Comment").fields(&["body", "post_id", "author_id"]))
        .unwrap();
    node.publish(Publication::model("Friendship").fields(&["user1_id", "user2_id"]))
        .unwrap();

    let app = App::new(node);
    app.controller("users/create", |app, req| {
        app_work(req);
        let u = app.orm().create(
            "User",
            vmap! { "name" => req.get("name").clone(), "email" => req.get("email").clone() },
        )?;
        Ok(Value::from(u.id.raw()))
    });
    app.controller("posts/create", |app, req| {
        app_work(req);
        let author = req.current_user.expect("posting requires a session");
        // Reading the author first is what creates the read dependency the
        // paper's Fig. 8 walk-through shows.
        let author_rec = app.orm().find("User", author)?.ok_or_else(|| {
            synapse_orm::OrmError::RecordNotFound {
                model: "User".into(),
                id: author.to_string(),
            }
        })?;
        let p = app.orm().create(
            "Post",
            vmap! {
                "body" => req.get("body").clone(),
                "public" => true,
                "author_id" => author_rec.id.raw(),
            },
        )?;
        Ok(Value::from(p.id.raw()))
    });
    app.controller("comments/create", |app, req| {
        app_work(req);
        let author = req.current_user.expect("commenting requires a session");
        let post_id = Id(req.get("post_id").as_int().unwrap_or(0) as u64);
        let post = app.orm().find("Post", post_id)?.ok_or_else(|| {
            synapse_orm::OrmError::RecordNotFound {
                model: "Post".into(),
                id: post_id.to_string(),
            }
        })?;
        let c = app.orm().create(
            "Comment",
            vmap! {
                "body" => req.get("body").clone(),
                "post_id" => post.id.raw(),
                "author_id" => author.raw(),
            },
        )?;
        Ok(Value::from(c.id.raw()))
    });
    app.controller("friends/create", |app, req| {
        app_work(req);
        let me = req.current_user.expect("befriending requires a session");
        let other = Id(req.get("user_id").as_int().unwrap_or(0) as u64);
        let f = app.orm().create(
            "Friendship",
            vmap! { "user1_id" => me.raw(), "user2_id" => other.raw() },
        )?;
        Ok(Value::from(f.id.raw()))
    });
    app.controller("stream/index", |app, req| {
        app_work(req);
        let posts = app.orm().all("Post")?;
        Ok(Value::from(posts.len()))
    });
    app
}

fn build_discourse(eco: &Ecosystem, latency: LatencyModel) -> Arc<App> {
    let node = eco.add_node(
        SynapseConfig::new("discourse"),
        Arc::new(ActiveRecordAdapter::new("postgresql", latency)),
    );
    let orm = node.orm();
    orm.define_model(ModelSchema::new("Topic").field("title").field("user_id"))
        .unwrap();
    orm.define_model(
        ModelSchema::new("Reply")
            .field("body")
            .field("user_id")
            .belongs_to("topic", "Topic"),
    )
    .unwrap();
    node.publish(Publication::model("Topic").fields(&["title", "user_id"]))
        .unwrap();
    node.publish(Publication::model("Reply").fields(&["body", "user_id", "topic_id"]))
        .unwrap();

    let app = App::new(node);
    app.controller("topics/create", |app, req| {
        app_work(req);
        let user = req.current_user.expect("topics require a session");
        let t = app.orm().create(
            "Topic",
            vmap! { "title" => req.get("title").clone(), "user_id" => user.raw() },
        )?;
        Ok(Value::from(t.id.raw()))
    });
    app.controller("topics/index", |app, req| {
        app_work(req);
        Ok(Value::from(app.orm().all("Topic")?.len()))
    });
    app.controller("posts/create", |app, req| {
        app_work(req);
        let user = req.current_user.expect("replies require a session");
        let topic_id = Id(req.get("topic_id").as_int().unwrap_or(0) as u64);
        let topic = app.orm().find("Topic", topic_id)?;
        let r = app.orm().create(
            "Reply",
            vmap! {
                "body" => req.get("body").clone(),
                "user_id" => user.raw(),
                "topic_id" => topic.map(|t| t.id.raw()).unwrap_or(0),
            },
        )?;
        Ok(Value::from(r.id.raw()))
    });
    app
}

fn build_mailer(eco: &Ecosystem, latency: LatencyModel) -> (Arc<App>, Arc<Mutex<Vec<String>>>) {
    let node = eco.add_node(
        SynapseConfig::new("mailer"),
        Arc::new(MongoidAdapter::new("mongodb", latency)),
    );
    let orm = node.orm();
    orm.define_model(ModelSchema::open("User")).unwrap();
    orm.define_model(ModelSchema::open("Friendship")).unwrap();
    node.subscribe(Subscription::model("User", "diaspora").fields(&["name", "email"]))
        .unwrap();
    node.subscribe(Subscription::model("Friendship", "diaspora").fields(&["user1_id", "user2_id"]))
        .unwrap();
    // Posts are observed, never stored.
    node.subscribe(
        Subscription::model("Post", "diaspora")
            .fields(&["body", "author_id"])
            .observer(),
    )
    .unwrap();

    let outbox: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sent = outbox.clone();
    orm.on("Post", CallbackPoint::AfterCreate, move |ctx, post| {
        // Fig. 2: no notifications while bootstrapping.
        if ctx.bootstrap {
            return Ok(());
        }
        let author = post.get("author_id").as_int().unwrap_or(0);
        // Notify every friend of the author whose email replicated here.
        let mut recipients = Vec::new();
        for f in ctx.orm.where_eq("Friendship", "user1_id", author)? {
            recipients.push(f.get("user2_id").as_int().unwrap_or(0));
        }
        for f in ctx.orm.where_eq("Friendship", "user2_id", author)? {
            recipients.push(f.get("user1_id").as_int().unwrap_or(0));
        }
        let mut sent = sent.lock();
        for r in recipients {
            if let Some(friend) = ctx.orm.find("User", Id(r as u64))? {
                sent.push(format!(
                    "to:{} subject:new post by user {}",
                    friend.get("email").as_str().unwrap_or("?"),
                    author
                ));
            }
        }
        Ok(())
    });
    (App::new(node), outbox)
}

fn build_analyzer(eco: &Ecosystem, latency: LatencyModel) -> Arc<App> {
    let node = eco.add_node(
        SynapseConfig::new("analyzer"),
        Arc::new(ActiveRecordAdapter::new("mysql", latency)),
    );
    let orm = node.orm();
    orm.define_model(ModelSchema::new("User").field("name").field("interests"))
        .unwrap();
    node.subscribe(Subscription::model("User", "diaspora").field("name"))
        .unwrap();
    node.subscribe(
        Subscription::model("Post", "diaspora")
            .fields(&["body", "author_id"])
            .observer(),
    )
    .unwrap();
    node.subscribe(
        Subscription::model("Reply", "discourse")
            .fields(&["body", "user_id"])
            .observer(),
    )
    .unwrap();
    // The decoration: analyzer publishes User.interests.
    node.publish(Publication::model("User").field("interests"))
        .unwrap();

    let analyze = move |ctx: &mut synapse_orm::CallbackCtx<'_>,
                        user_field: &str,
                        record: &synapse_model::Record|
          -> Result<(), synapse_orm::OrmError> {
        let author = record.get(user_field).as_int().unwrap_or(0);
        let body = record.get("body").as_str().unwrap_or("").to_owned();
        let topics = extract_topics(&body, 3);
        if topics.is_empty() {
            return Ok(());
        }
        if let Some(user) = ctx.orm.find("User", Id(author as u64))? {
            let existing: Vec<String> = user
                .get("interests")
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect()
                })
                .unwrap_or_default();
            let merged = merge_interests(&existing, &topics, 10);
            let interests = Value::Array(merged.into_iter().map(Value::from).collect());
            ctx.orm
                .update("User", user.id, vmap! { "interests" => interests })?;
        }
        Ok(())
    };
    orm.on("Post", CallbackPoint::AfterCreate, move |ctx, r| {
        analyze(ctx, "author_id", r)
    });
    orm.on("Reply", CallbackPoint::AfterCreate, move |ctx, r| {
        analyze(ctx, "user_id", r)
    });
    App::new(node)
}

fn build_spree(eco: &Ecosystem, latency: LatencyModel) -> Arc<App> {
    let adapter = Arc::new(ActiveRecordAdapter::new("mysql", latency));
    // Rails's `serialize :interests` — restore the structured array from
    // its flattened SQL text on read (Example 3).
    adapter.serialize_field("User", "interests");
    let node = eco.add_node(SynapseConfig::new("spree"), adapter);
    let orm = node.orm();
    orm.define_model(
        ModelSchema::new("Product")
            .field("name")
            .field("description")
            .field("price"),
    )
    .unwrap();
    orm.define_model(ModelSchema::new("User").field("name").field("interests"))
        .unwrap();
    node.subscribe(Subscription::model("User", "diaspora").field("name"))
        .unwrap();
    node.subscribe(Subscription::model("User", "analyzer").field("interests"))
        .unwrap();

    let app = App::new(node);
    app.controller("products/create", |app, req| {
        let p = app.orm().create(
            "Product",
            vmap! {
                "name" => req.get("name").clone(),
                "description" => req.get("description").clone(),
                "price" => req.get("price").clone(),
            },
        )?;
        Ok(Value::from(p.id.raw()))
    });
    // The generic targeted search of §5.2: keyword-match the user's
    // replicated interests against product descriptions.
    app.controller("products/recommended", |app, req| {
        let user_id = Id(req.get("user_id").as_int().unwrap_or(0) as u64);
        let interests: Vec<String> = app
            .orm()
            .find("User", user_id)?
            .map(|u| {
                u.get("interests")
                    .as_array()
                    .map(|a| {
                        a.iter()
                            .filter_map(|v| v.as_str().map(str::to_lowercase))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        let mut hits = Vec::new();
        for product in app.orm().all("Product")? {
            let description = product
                .get("description")
                .as_str()
                .unwrap_or("")
                .to_lowercase();
            if interests.iter().any(|i| description.contains(i)) {
                hits.push(Value::from(product.id.raw()));
            }
        }
        Ok(Value::Array(hits))
    });
    app
}

/// Convenience: seed users and friendships into Diaspora.
pub fn seed_users(diaspora: &App, names: &[(&str, &str)]) -> Vec<Id> {
    let mut ids = Vec::new();
    for (name, email) in names {
        let res = diaspora
            .dispatch(
                "users/create",
                &Request::anonymous()
                    .param("name", *name)
                    .param("email", *email),
            )
            .expect("seed user");
        ids.push(Id(res.as_int().unwrap() as u64));
    }
    ids
}
