//! Demo applications and workload generators for the Synapse reproduction.
//!
//! Two ecosystems from the paper are modelled end to end:
//!
//! * [`social`] — the open-source social product recommender of §5.2 /
//!   Fig. 11: Diaspora (PostgreSQL) and Discourse (PostgreSQL) publish
//!   posts; a mailer (MongoDB) observes them; a semantic analyzer (MySQL)
//!   decorates users with interests; Spree (MySQL) serves interest-targeted
//!   product recommendations.
//! * [`crowdtap`] — the production topology of §5.1 / Fig. 10: a main app
//!   (MongoDB) publishing to eight microservices over mixed causal/weak
//!   edges, with the five controllers of Fig. 12(a).
//!
//! Plus:
//!
//! * [`analyzer`] — the keyword extractor standing in for the Textalytics
//!   service (documented substitution in DESIGN.md);
//! * [`stress`] — the §6.3 social-network stress workload (25 % posts,
//!   75 % comments, cross-user dependencies) used by the Fig. 13 benches.

pub mod analyzer;
pub mod crowdtap;
pub mod social;
pub mod stress;
