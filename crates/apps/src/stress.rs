//! The §6.3 stress-test microbenchmark workload.
//!
//! "Users continuously create posts and comments, similar to the code on
//! Fig. 8. Comments are related to posts and create cross-user
//! dependencies. We issue traffic as fast as possible to saturate Synapse,
//! with a uniform distribution of 25% posts and 75% comments."
//!
//! [`build_pair`] wires a minimal publisher/subscriber pair over arbitrary
//! vendor engines; [`run_load`] hammers the publisher from many threads
//! with the post/comment mix inside per-user causal scopes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_core::{
    DeliveryMode, DepName, DepSpace, Ecosystem, Publication, Subscription, SynapseConfig,
    SynapseNode,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema, Value};
use synapse_orm::adapters;
use synapse_orm::CallbackPoint;

/// Parameters of a stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Simulated user population.
    pub users: u64,
    /// Percentage of operations that create posts (the paper uses 25).
    pub post_percent: u32,
    /// Publisher "application server" threads.
    pub publisher_threads: usize,
    /// Wall-clock duration of the load phase.
    pub duration: Duration,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            users: 100,
            post_percent: 25,
            publisher_threads: 2,
            duration: Duration::from_millis(500),
        }
    }
}

/// A wired publisher/subscriber pair for the stress workload.
pub struct StressPair {
    /// The publishing service.
    pub publisher: Arc<SynapseNode>,
    /// The subscribing service.
    pub subscriber: Arc<SynapseNode>,
}

/// Wires a stress pair onto `eco`: `pub_vendor` publishes `User`, `Post`,
/// and `Comment`; `sub_vendor` subscribes to all three. Both sides run in
/// `mode` with `workers` subscriber workers and the same latency model;
/// [`build_pair_with_latencies`] takes per-side models.
pub fn build_pair(
    eco: &Ecosystem,
    pub_vendor: &str,
    sub_vendor: &str,
    mode: DeliveryMode,
    workers: usize,
    latency: LatencyModel,
) -> StressPair {
    build_pair_with_latencies(eco, pub_vendor, sub_vendor, mode, workers, latency, latency)
}

/// [`build_pair`] with distinct publisher/subscriber latency models (the
/// Fig. 13(b) pairs saturate at the *slower* engine, so each side must run
/// its own calibration).
#[allow(clippy::too_many_arguments)]
pub fn build_pair_with_latencies(
    eco: &Ecosystem,
    pub_vendor: &str,
    sub_vendor: &str,
    mode: DeliveryMode,
    workers: usize,
    pub_latency: LatencyModel,
    sub_latency: LatencyModel,
) -> StressPair {
    let latency = pub_latency;
    let publisher = eco.add_node(
        SynapseConfig::new(format!("stress_pub_{pub_vendor}"))
            .mode(mode)
            .dep_space(DepSpace::new(1 << 20)),
        adapters::for_vendor(pub_vendor, latency),
    );
    for model in ["User", "Post", "Comment"] {
        publisher
            .orm()
            .define_model(stress_schema(model, pub_vendor))
            .unwrap();
    }
    publisher
        .publish(Publication::model("User").fields(&["name"]))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["author_id", "body"]))
        .unwrap();
    publisher
        .publish(Publication::model("Comment").fields(&["post_id", "author_id", "body"]))
        .unwrap();

    let subscriber = eco.add_node(
        SynapseConfig::new(format!("stress_sub_{sub_vendor}"))
            .mode(mode)
            .workers(workers)
            .dep_space(DepSpace::new(1 << 20)),
        adapters::for_vendor(sub_vendor, sub_latency),
    );
    let pub_app = publisher.app().to_owned();
    for model in ["User", "Post", "Comment"] {
        subscriber
            .orm()
            .define_model(stress_schema(model, sub_vendor))
            .unwrap();
    }
    subscriber
        .subscribe(Subscription::model("User", &pub_app).fields(&["name"]))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Post", &pub_app).fields(&["author_id", "body"]))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Comment", &pub_app).fields(&[
            "post_id",
            "author_id",
            "body",
        ]))
        .unwrap();

    StressPair {
        publisher,
        subscriber,
    }
}

fn stress_schema(model: &str, vendor: &str) -> ModelSchema {
    // SQL vendors need strict column lists; schemaless vendors don't care.
    let strict = matches!(vendor, "postgresql" | "mysql" | "oracle");
    if !strict {
        return ModelSchema::open(model);
    }
    match model {
        "User" => ModelSchema::new("User").field("name"),
        "Post" => ModelSchema::new("Post").field("author_id").field("body"),
        _ => ModelSchema::new("Comment")
            .field("post_id")
            .field("author_id")
            .field("body"),
    }
}

/// Installs a fixed processing delay on the subscriber's `Post` and
/// `Comment` creations — Fig. 13(c)'s "100-ms callback delay to simulate
/// heavy processing", scaled down for a single machine.
pub fn install_callback_delay(node: &SynapseNode, delay: Duration) {
    for model in ["Post", "Comment"] {
        node.orm()
            .on(model, CallbackPoint::AfterCreate, move |_, _| {
                std::thread::sleep(delay);
                Ok(())
            });
    }
}

/// Results of a load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Write operations issued at the publisher.
    pub operations: u64,
    /// Posts created.
    pub posts: u64,
    /// Comments created.
    pub comments: u64,
    /// Wall-clock duration of the load phase.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Publisher-side operation throughput.
    pub fn ops_per_sec(&self) -> f64 {
        self.operations as f64 / self.elapsed.as_secs_f64()
    }
}

/// Seeds the user population and drives the post/comment mix from
/// `config.publisher_threads` threads until `config.duration` elapses.
pub fn run_load(pair: &StressPair, config: &StressConfig) -> LoadReport {
    let publisher = &pair.publisher;
    for u in 0..config.users {
        // Idempotent seeding: repeated load phases reuse the population.
        let _ = publisher.orm().create_with_id(
            "User",
            Id(u + 1),
            vmap! { "name" => format!("user-{u}") },
        );
    }
    let posts_created = Arc::new(AtomicU64::new(0));
    let comments_created = Arc::new(AtomicU64::new(0));
    let latest_post = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..config.publisher_threads {
            let publisher = Arc::clone(publisher);
            let posts_created = posts_created.clone();
            let comments_created = comments_created.clone();
            let latest_post = latest_post.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5eed ^ t as u64);
                while start.elapsed() < config.duration {
                    let user = rng.gen_range(1..=config.users);
                    let user_dep = DepName::object(publisher.app(), "User", Id(user));
                    synapse_core::with_user_scope(user_dep, || {
                        let make_post = rng.gen_range(0u32..100) < config.post_percent
                            || latest_post.load(Ordering::Relaxed) == 0;
                        if make_post {
                            if let Ok(post) = publisher
                                .orm()
                                .create("Post", vmap! { "author_id" => user, "body" => "helo" })
                            {
                                latest_post.fetch_max(post.id.raw(), Ordering::Relaxed);
                                posts_created.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            // Comment on a random existing post: the
                            // cross-user dependency of §6.3.
                            let max = latest_post.load(Ordering::Relaxed).max(1);
                            let target = Id(rng.gen_range(1..=max));
                            if let Ok(Some(post)) = publisher.orm().find("Post", target) {
                                if publisher
                                    .orm()
                                    .create(
                                        "Comment",
                                        vmap! {
                                            "post_id" => post.id.raw(),
                                            "author_id" => user,
                                            "body" => "you have a typo",
                                        },
                                    )
                                    .is_ok()
                                {
                                    comments_created.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            });
        }
    });
    let posts = posts_created.load(Ordering::Relaxed);
    let comments = comments_created.load(Ordering::Relaxed);
    LoadReport {
        operations: posts + comments,
        posts,
        comments,
        elapsed: start.elapsed(),
    }
}

/// Waits until the subscriber has processed everything the publisher
/// published (or `timeout` passes); returns end-to-end message throughput
/// (messages/second including the drain).
pub fn drain_and_throughput(pair: &StressPair, load: &LoadReport, timeout: Duration) -> f64 {
    let start = Instant::now();
    let target = pair.publisher.publisher_stats().messages_published;
    while pair.subscriber.subscriber_stats().messages_processed < target {
        if start.elapsed() > timeout {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let processed = pair.subscriber.subscriber_stats().messages_processed;
    let total = load.elapsed + start.elapsed();
    processed as f64 / total.as_secs_f64()
}

/// A [`Value`] helper kept for bench ergonomics.
pub fn val(v: impl Into<Value>) -> Value {
    v.into()
}
