//! Keyword extraction — the Textalytics stand-in.
//!
//! The paper's semantic analyzer sends post bodies to Textalytics, an
//! external text-mining API, and decorates users with topics of interest.
//! The reproduction cannot call external services, so this module extracts
//! topics with a small tf-based keyword extractor. The substitution is
//! behaviour-preserving for the system claims: what matters is that a
//! *decorator* consumes replicated posts and publishes derived user
//! attributes, not the quality of the topics.

use std::collections::BTreeMap;

/// Words too common to be topics.
const STOP_WORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "an", "and", "any", "are", "as", "at", "be", "because",
    "been", "but", "by", "can", "come", "could", "day", "do", "even", "first", "for", "from",
    "get", "give", "go", "have", "he", "her", "here", "him", "his", "how", "i", "if", "in", "into",
    "is", "it", "its", "just", "know", "like", "look", "make", "man", "many", "me", "more", "my",
    "new", "no", "not", "now", "of", "on", "one", "only", "or", "other", "our", "out", "over",
    "people", "say", "see", "she", "so", "some", "take", "than", "that", "the", "their", "them",
    "then", "there", "these", "they", "things", "think", "this", "time", "to", "two", "up", "use",
    "very", "want", "was", "way", "we", "well", "what", "when", "which", "who", "will", "with",
    "would", "you", "your", "really", "love",
];

/// Extracts up to `limit` topics of interest from `text`, most frequent
/// first (ties broken alphabetically).
///
/// # Examples
///
/// ```
/// use synapse_apps::analyzer::extract_topics;
///
/// let topics = extract_topics("I love hiking. Hiking boots and hiking trails!", 3);
/// assert_eq!(topics[0], "hiking");
/// ```
pub fn extract_topics(text: &str, limit: usize) -> Vec<String> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        let word = raw.to_lowercase();
        if word.len() < 3 || STOP_WORDS.contains(&word.as_str()) {
            continue;
        }
        *counts.entry(word).or_default() += 1;
    }
    let mut ranked: Vec<(String, u32)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(limit);
    ranked.into_iter().map(|(w, _)| w).collect()
}

/// Merges newly extracted topics into an existing interest list, keeping
/// order of first appearance and capping the result.
pub fn merge_interests(existing: &[String], fresh: &[String], cap: usize) -> Vec<String> {
    let mut out: Vec<String> = existing.to_vec();
    for t in fresh {
        if !out.contains(t) {
            out.push(t.clone());
        }
    }
    if out.len() > cap {
        out.drain(0..out.len() - cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_ranks_topics() {
        let topics = extract_topics("cats cats cats dogs dogs fish", 2);
        assert_eq!(topics, vec!["cats", "dogs"]);
    }

    #[test]
    fn stop_words_and_short_words_are_dropped() {
        let topics = extract_topics("I really love my new hiking boots so much", 5);
        assert!(topics.contains(&"hiking".to_string()));
        assert!(!topics.contains(&"my".to_string()));
        assert!(!topics.contains(&"love".to_string()));
    }

    #[test]
    fn empty_text_yields_nothing() {
        assert!(extract_topics("", 5).is_empty());
        assert!(extract_topics("a an the", 5).is_empty());
    }

    #[test]
    fn merge_keeps_order_and_caps() {
        let merged = merge_interests(
            &["cats".into(), "dogs".into()],
            &["dogs".into(), "fish".into()],
            3,
        );
        assert_eq!(merged, vec!["cats", "dogs", "fish"]);
        let capped = merge_interests(&["a".into(), "b".into(), "c".into()], &["d".into()], 2);
        assert_eq!(capped, vec!["c", "d"], "oldest interests age out");
    }
}
