//! The Crowdtap production topology (§5.1, Fig. 10).
//!
//! The main app (MongoDB) publishes its core models to eight
//! microservices. Edge semantics follow the figure: most services run
//! causal; analytics, search, and reporting run weak. The five controllers
//! of Fig. 12(a) are registered on the main app; the benchmark trace driver
//! replays them with the paper's call mix.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use synapse_core::{
    DeliveryMode, Ecosystem, Publication, Subscription, SynapseConfig, SynapseNode,
};
use synapse_db::LatencyModel;
use synapse_model::{vmap, Id, ModelSchema, Value};
use synapse_mvc::App;
use synapse_orm::adapters::{ActiveRecordAdapter, MongoidAdapter, StretcherAdapter};
use synapse_orm::CallbackPoint;

/// The wired Crowdtap ecosystem.
pub struct CrowdtapApps {
    /// The main application (MongoDB) with the Fig. 12(a) controllers.
    pub main: Arc<App>,
    /// The eight microservices by name.
    pub services: BTreeMap<String, Arc<SynapseNode>>,
    /// Welcome emails sent by the mailer service (Fig. 2's callback).
    pub mailer_outbox: Arc<Mutex<Vec<String>>>,
}

/// Service names in Fig. 10, with their delivery modes.
pub const SERVICES: &[(&str, DeliveryMode)] = &[
    ("moderation", DeliveryMode::Causal),
    ("targeting", DeliveryMode::Causal),
    ("fb_crawler", DeliveryMode::Causal),
    ("mailer", DeliveryMode::Causal),
    ("spree", DeliveryMode::Causal),
    ("analytics", DeliveryMode::Weak),
    ("search_engine", DeliveryMode::Weak),
    ("reporting", DeliveryMode::Weak),
];

/// Builds and wires the ecosystem (call `eco.connect()` /
/// `eco.start_all()` afterwards).
pub fn build(eco: &Ecosystem, latency: LatencyModel) -> CrowdtapApps {
    let main = build_main(eco, latency);
    let mut services = BTreeMap::new();
    let mut mailer_outbox = Arc::new(Mutex::new(Vec::new()));

    for (name, mode) in SERVICES {
        let node = match *name {
            "analytics" | "search_engine" => eco.add_node(
                SynapseConfig::new(*name).subscriber_mode(*mode),
                Arc::new(StretcherAdapter::new(latency)),
            ),
            "spree" => eco.add_node(
                SynapseConfig::new(*name).subscriber_mode(*mode),
                Arc::new(ActiveRecordAdapter::new("postgresql", latency)),
            ),
            _ => eco.add_node(
                SynapseConfig::new(*name).subscriber_mode(*mode),
                Arc::new(MongoidAdapter::new("mongodb", latency)),
            ),
        };
        wire_service(&node, name, &mut mailer_outbox);
        services.insert((*name).to_owned(), node);
    }

    CrowdtapApps {
        main,
        services,
        mailer_outbox,
    }
}

/// Simulated business-logic time (template rendering, external calls, GC —
/// everything a Rails controller does besides queries). The Fig. 12 trace
/// driver passes a per-controller `app_work_us` scaled from the paper's
/// controller times; the value is also what makes overhead percentages
/// comparable, since this in-process stack has none of Rails's baseline
/// cost.
fn app_work(req: &synapse_mvc::Request) {
    if let Some(us) = req.get("app_work_us").as_int() {
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us as u64));
        }
    }
}

fn build_main(eco: &Ecosystem, latency: LatencyModel) -> Arc<App> {
    let node = eco.add_node(
        SynapseConfig::new("main_app"),
        Arc::new(MongoidAdapter::new("mongodb", latency)),
    );
    let orm = node.orm();
    for model in ["User", "Brand", "Award", "Action", "ActivityLog"] {
        orm.define_model(ModelSchema::open(model)).unwrap();
    }
    node.publish(Publication::model("User").fields(&["name", "email", "points"]))
        .unwrap();
    node.publish(Publication::model("Brand").fields(&["name", "views"]))
        .unwrap();
    node.publish(Publication::model("Award").fields(&["name", "brand_id"]))
        .unwrap();
    node.publish(Publication::model("Action").fields(&[
        "user_id",
        "brand_id",
        "kind",
        "status",
        "last_seen",
    ]))
    .unwrap();
    node.publish(Publication::model("ActivityLog").fields(&["user_id", "event"]))
        .unwrap();

    let app = App::new(node);

    // Fig. 12(a), row 1: awards/index — 17% of calls, read-only.
    app.controller("awards/index", |app, req| {
        app_work(req);
        Ok(Value::from(app.orm().all("Award")?.len()))
    });
    // Row 2: brands/show — 16% of calls, ~0.03 messages/call (the trace
    // driver sets `bump_views` on ~3% of calls).
    app.controller("brands/show", |app, req| {
        app_work(req);
        let brand_id = Id(req.get("brand_id").as_int().unwrap_or(1) as u64);
        let brand = app.orm().find("Brand", brand_id)?;
        if req.get("bump_views").as_bool() == Some(true) {
            if let Some(b) = &brand {
                let views = b.get("views").as_int().unwrap_or(0) + 1;
                app.orm()
                    .update("Brand", b.id, vmap! { "views" => views })?;
            }
        }
        Ok(brand.map(|b| b.to_value()).unwrap_or(Value::Null))
    });
    // Row 3: actions/index — 15% of calls, ~0.67 messages/call with many
    // read dependencies per message (the user's whole action list is read
    // before the touch).
    app.controller("actions/index", |app, req| {
        app_work(req);
        let user = req.current_user.expect("actions require a session");
        let actions = app.orm().where_eq("Action", "user_id", user.raw())?;
        if req.get("touch").as_bool() == Some(true) {
            if let Some(first) = actions.first() {
                app.orm()
                    .update("Action", first.id, vmap! { "last_seen" => "now" })?;
            }
        }
        Ok(Value::from(actions.len()))
    });
    // Row 4: me/show — 12% of calls, read-only.
    app.controller("me/show", |app, req| {
        app_work(req);
        let user = req.current_user.expect("me requires a session");
        Ok(app
            .orm()
            .find("User", user)?
            .map(|u| u.to_value())
            .unwrap_or(Value::Null))
    });
    // Row 5: actions/update — 11.5% of calls, ~3.46 messages/call: the
    // action changes state, the user earns points, an activity is logged,
    // and (on a fraction of calls) the brand counter moves too.
    app.controller("actions/update", |app, req| {
        app_work(req);
        let user_id = req.current_user.expect("update requires a session");
        let action_id = Id(req.get("action_id").as_int().unwrap_or(1) as u64);
        let user = app.orm().find("User", user_id)?.ok_or_else(|| {
            synapse_orm::OrmError::RecordNotFound {
                model: "User".into(),
                id: user_id.to_string(),
            }
        })?;
        let action = app.orm().find("Action", action_id)?;
        if let Some(action) = action {
            app.orm()
                .update("Action", action.id, vmap! { "status" => "completed" })?;
            let points = user.get("points").as_int().unwrap_or(0) + 10;
            app.orm()
                .update("User", user.id, vmap! { "points" => points })?;
            app.orm().create(
                "ActivityLog",
                vmap! { "user_id" => user.id.raw(), "event" => "action_completed" },
            )?;
            if req.get("bump_brand").as_bool() == Some(true) {
                let brand_id = Id(action.get("brand_id").as_int().unwrap_or(1) as u64);
                if let Some(brand) = app.orm().find("Brand", brand_id)? {
                    let views = brand.get("views").as_int().unwrap_or(0) + 1;
                    app.orm()
                        .update("Brand", brand.id, vmap! { "views" => views })?;
                }
            }
        }
        Ok(Value::Null)
    });

    app
}

fn wire_service(node: &Arc<SynapseNode>, name: &str, mailer_outbox: &mut Arc<Mutex<Vec<String>>>) {
    let orm = node.orm();
    match name {
        "moderation" => {
            orm.define_model(ModelSchema::open("Action")).unwrap();
            node.subscribe(
                Subscription::model("Action", "main_app").fields(&["user_id", "kind", "status"]),
            )
            .unwrap();
        }
        "targeting" => {
            orm.define_model(ModelSchema::open("User")).unwrap();
            orm.define_model(ModelSchema::open("Action")).unwrap();
            orm.define_model(ModelSchema::open("SocialProfile"))
                .unwrap();
            node.subscribe(Subscription::model("User", "main_app").fields(&["name", "points"]))
                .unwrap();
            node.subscribe(
                Subscription::model("Action", "main_app").fields(&["user_id", "brand_id", "kind"]),
            )
            .unwrap();
            node.subscribe(
                Subscription::model("SocialProfile", "fb_crawler").fields(&["user_id", "likes"]),
            )
            .unwrap();
        }
        "fb_crawler" => {
            orm.define_model(ModelSchema::open("User")).unwrap();
            orm.define_model(ModelSchema::open("SocialProfile"))
                .unwrap();
            node.subscribe(Subscription::model("User", "main_app").field("name"))
                .unwrap();
            node.publish(Publication::model("SocialProfile").fields(&["user_id", "likes"]))
                .unwrap();
        }
        "mailer" => {
            orm.define_model(ModelSchema::open("User")).unwrap();
            node.subscribe(Subscription::model("User", "main_app").fields(&["name", "email"]))
                .unwrap();
            let outbox = mailer_outbox.clone();
            // Fig. 2: welcome emails for new users, suppressed in bootstrap.
            orm.on("User", CallbackPoint::AfterCreate, move |ctx, user| {
                if !ctx.bootstrap {
                    outbox.lock().push(format!(
                        "welcome {}",
                        user.get("email").as_str().unwrap_or("?")
                    ));
                }
                Ok(())
            });
        }
        "spree" => {
            orm.define_model(ModelSchema::new("User").field("name").field("points"))
                .unwrap();
            node.subscribe(Subscription::model("User", "main_app").fields(&["name", "points"]))
                .unwrap();
        }
        "analytics" => {
            orm.define_model(ModelSchema::open("Action")).unwrap();
            orm.define_model(ModelSchema::open("User")).unwrap();
            node.subscribe(
                Subscription::model("Action", "main_app")
                    .fields(&["user_id", "brand_id", "kind", "status"]),
            )
            .unwrap();
            node.subscribe(Subscription::model("User", "main_app").field("points"))
                .unwrap();
        }
        "search_engine" => {
            orm.define_model(ModelSchema::open("Brand")).unwrap();
            orm.define_model(ModelSchema::open("Award")).unwrap();
            node.subscribe(Subscription::model("Brand", "main_app").field("name"))
                .unwrap();
            node.subscribe(Subscription::model("Award", "main_app").fields(&["name", "brand_id"]))
                .unwrap();
        }
        "reporting" => {
            orm.define_model(ModelSchema::open("Action")).unwrap();
            node.subscribe(
                Subscription::model("Action", "main_app").fields(&["user_id", "status"]),
            )
            .unwrap();
        }
        other => panic!("unknown Crowdtap service {other}"),
    }
}

/// Seeds the main app with `users` users, `brands` brands (one award
/// each), and one pending action per user. Returns the user ids.
pub fn seed(main: &App, users: usize, brands: usize) -> Vec<Id> {
    let orm = main.orm();
    let mut brand_ids = Vec::new();
    for b in 0..brands.max(1) {
        let brand = orm
            .create(
                "Brand",
                vmap! { "name" => format!("brand-{b}"), "views" => 0 },
            )
            .expect("seed brand");
        orm.create(
            "Award",
            vmap! { "name" => format!("award-{b}"), "brand_id" => brand.id.raw() },
        )
        .expect("seed award");
        brand_ids.push(brand.id);
    }
    let mut user_ids = Vec::new();
    for u in 0..users {
        let user = orm
            .create(
                "User",
                vmap! {
                    "name" => format!("user-{u}"),
                    "email" => format!("user-{u}@example.com"),
                    "points" => 0,
                },
            )
            .expect("seed user");
        let brand = brand_ids[u % brand_ids.len()];
        orm.create(
            "Action",
            vmap! {
                "user_id" => user.id.raw(),
                "brand_id" => brand.raw(),
                "kind" => "sampling",
                "status" => "pending",
            },
        )
        .expect("seed action");
        user_ids.push(user.id);
    }
    user_ids
}
