//! The query AST spoken by every engine.
//!
//! The original Synapse intercepts vendor wire protocols (SQL text, MongoDB
//! commands, CQL). The reproduction replaces all of those with one typed AST
//! so that the interception point — and the per-vendor differences around
//! `RETURNING *` — stay visible while parsing details stay out of the way.

use crate::error::DbError;
use std::collections::BTreeMap;
use synapse_model::{Id, Value};

/// A row/document payload: attribute values by name (the primary key is
/// carried separately).
pub type Row = BTreeMap<String, Value>;

/// Row-selection predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// Every row.
    All,
    /// The row with this primary key.
    ById(Id),
    /// Rows whose primary key is in the set.
    IdIn(Vec<Id>),
    /// Rows whose primary key is strictly greater than this one. Paired
    /// with an ascending-id order and a limit this pages a table in
    /// primary-key chunks (bootstrap's chunked object copy).
    IdAfter(Id),
    /// Rows where `field == value`.
    Eq(String, Value),
    /// Conjunction.
    And(Vec<Filter>),
}

impl Filter {
    /// Evaluates the filter against one row.
    pub fn matches(&self, id: Id, row: &Row) -> bool {
        match self {
            Filter::All => true,
            Filter::ById(want) => id == *want,
            Filter::IdIn(ids) => ids.contains(&id),
            Filter::IdAfter(after) => id > *after,
            Filter::Eq(field, want) => row.get(field).map(|v| v == want).unwrap_or(want.is_null()),
            Filter::And(fs) => fs.iter().all(|f| f.matches(id, row)),
        }
    }

    /// Returns the single primary key this filter pins down, if any.
    /// Synapse uses this to decide whether a write query is "well identified"
    /// (§4.2: non-transactional engines only accept single-object updates).
    pub fn exact_id(&self) -> Option<Id> {
        match self {
            Filter::ById(id) => Some(*id),
            Filter::IdIn(ids) if ids.len() == 1 => Some(ids[0]),
            Filter::And(fs) => fs.iter().find_map(Filter::exact_id),
            _ => None,
        }
    }
}

/// Sort order for `Select`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// Field to sort on (`"id"` sorts on the primary key).
    pub field: String,
    /// Sort direction.
    pub ascending: bool,
}

/// One database query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Creates a table/collection/label namespace.
    CreateTable {
        /// Table name.
        table: String,
    },
    /// Drops a table and all its contents.
    DropTable {
        /// Table name.
        table: String,
    },
    /// Inserts a new row with an explicit primary key.
    Insert {
        /// Table name.
        table: String,
        /// Primary key (allocated by the ORM layer).
        id: Id,
        /// Row payload.
        row: Row,
    },
    /// Updates all rows matched by `filter`.
    Update {
        /// Table name.
        table: String,
        /// Which rows to update.
        filter: Filter,
        /// Fields to set.
        set: Row,
        /// Fields to remove (document stores).
        unset: Vec<String>,
    },
    /// Deletes all rows matched by `filter`.
    Delete {
        /// Table name.
        table: String,
        /// Which rows to delete.
        filter: Filter,
    },
    /// Reads rows.
    Select {
        /// Table name.
        table: String,
        /// Which rows to read.
        filter: Filter,
        /// Optional ordering.
        order: Option<OrderBy>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// Counts rows (an aggregation — *not* a true dependency, §4.2).
    Count {
        /// Table name.
        table: String,
        /// Which rows to count.
        filter: Filter,
    },
    /// Full-text search over an analyzed field (search engines).
    Search {
        /// Table (index) name.
        table: String,
        /// Analyzed field to match against.
        field: String,
        /// Query text.
        text: String,
        /// Maximum hits.
        limit: usize,
    },
    /// Terms aggregation: bucket counts per distinct value (search engines).
    Aggregate {
        /// Table (index) name.
        table: String,
        /// Field to bucket on.
        field: String,
    },
    /// Adds an edge between two nodes (graph engines).
    AddEdge {
        /// Edge label, e.g. `friends`.
        label: String,
        /// Source node id (also the row table is implied by label config).
        from: Id,
        /// Target node id.
        to: Id,
    },
    /// Removes an edge (graph engines).
    RemoveEdge {
        /// Edge label.
        label: String,
        /// Source node id.
        from: Id,
        /// Target node id.
        to: Id,
    },
    /// Breadth-first traversal from a node (graph engines). Returns node ids
    /// reachable within `depth` hops, excluding the start node.
    Traverse {
        /// Edge label to follow.
        label: String,
        /// Start node id.
        from: Id,
        /// Maximum number of hops (≥ 1).
        depth: usize,
    },
    /// Atomic batch of write queries (columnar logged batches, §4.2).
    Batch(Vec<Query>),
}

impl Query {
    /// Returns the table this query touches, when it names one.
    pub fn table(&self) -> Option<&str> {
        match self {
            Query::CreateTable { table }
            | Query::DropTable { table }
            | Query::Insert { table, .. }
            | Query::Update { table, .. }
            | Query::Delete { table, .. }
            | Query::Select { table, .. }
            | Query::Count { table, .. }
            | Query::Search { table, .. }
            | Query::Aggregate { table, .. } => Some(table),
            _ => None,
        }
    }

    /// Returns `true` for queries that read data (DDL is neither a read
    /// nor a write for accounting purposes).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Query::Select { .. }
                | Query::Count { .. }
                | Query::Search { .. }
                | Query::Aggregate { .. }
                | Query::Traverse { .. }
        )
    }

    /// Returns `true` for queries that modify data.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Query::Insert { .. }
                | Query::Update { .. }
                | Query::Delete { .. }
                | Query::AddEdge { .. }
                | Query::RemoveEdge { .. }
                | Query::Batch(_)
        )
    }
}

/// Result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// No payload (DDL, graph edge ops).
    Unit,
    /// Rows read by a `Select`, or written rows echoed back by engines with
    /// the `RETURNING *` capability.
    Rows(Vec<(Id, Row)>),
    /// Primary keys affected by a write on engines *without* `RETURNING *`
    /// (MySQL, Cassandra) — the interceptor must read the rows back itself.
    AffectedIds(Vec<Id>),
    /// Scalar count.
    Count(u64),
    /// Scored search hits, best first.
    SearchHits(Vec<(Id, f64)>),
    /// Terms-aggregation buckets: `(value, doc_count)`, largest first.
    Buckets(Vec<(Value, u64)>),
    /// Node ids reached by a traversal, in breadth-first order.
    Ids(Vec<Id>),
    /// Per-query results of a batch.
    Batch(Vec<QueryResult>),
}

impl QueryResult {
    /// Extracts rows, failing if the result has a different shape.
    pub fn into_rows(self) -> Result<Vec<(Id, Row)>, DbError> {
        match self {
            QueryResult::Rows(rows) => Ok(rows),
            _ => Err(DbError::Unsupported("result is not rows")),
        }
    }

    /// Extracts the ids a write affected, regardless of `RETURNING` support.
    pub fn affected_ids(&self) -> Vec<Id> {
        match self {
            QueryResult::Rows(rows) => rows.iter().map(|(id, _)| *id).collect(),
            QueryResult::AffectedIds(ids) => ids.clone(),
            QueryResult::Batch(results) => results.iter().flat_map(|r| r.affected_ids()).collect(),
            _ => Vec::new(),
        }
    }

    /// Extracts a count, failing if the result has a different shape.
    pub fn into_count(self) -> Result<u64, DbError> {
        match self {
            QueryResult::Count(n) => Ok(n),
            _ => Err(DbError::Unsupported("result is not a count")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synapse_model::vmap;

    fn row(name: &str) -> Row {
        match vmap! { "name" => name } {
            Value::Map(m) => m,
            _ => unreachable!(),
        }
    }

    use synapse_model::Value;

    #[test]
    fn filter_by_id_and_eq() {
        let r = row("alice");
        assert!(Filter::All.matches(Id(1), &r));
        assert!(Filter::ById(Id(1)).matches(Id(1), &r));
        assert!(!Filter::ById(Id(2)).matches(Id(1), &r));
        assert!(Filter::Eq("name".into(), "alice".into()).matches(Id(1), &r));
        assert!(!Filter::Eq("name".into(), "bob".into()).matches(Id(1), &r));
    }

    #[test]
    fn eq_on_missing_field_matches_only_null() {
        let r = row("alice");
        assert!(Filter::Eq("ghost".into(), Value::Null).matches(Id(1), &r));
        assert!(!Filter::Eq("ghost".into(), "x".into()).matches(Id(1), &r));
    }

    #[test]
    fn id_after_is_a_strict_lower_bound_and_never_well_identified() {
        let r = row("alice");
        assert!(!Filter::IdAfter(Id(5)).matches(Id(4), &r));
        assert!(!Filter::IdAfter(Id(5)).matches(Id(5), &r), "strict bound");
        assert!(Filter::IdAfter(Id(5)).matches(Id(6), &r));
        assert_eq!(Filter::IdAfter(Id(5)).exact_id(), None);
    }

    #[test]
    fn and_filter_requires_all() {
        let r = row("alice");
        let f = Filter::And(vec![
            Filter::ById(Id(1)),
            Filter::Eq("name".into(), "alice".into()),
        ]);
        assert!(f.matches(Id(1), &r));
        assert!(!f.matches(Id(2), &r));
    }

    #[test]
    fn exact_id_extraction() {
        assert_eq!(Filter::ById(Id(3)).exact_id(), Some(Id(3)));
        assert_eq!(Filter::IdIn(vec![Id(3)]).exact_id(), Some(Id(3)));
        assert_eq!(Filter::IdIn(vec![Id(3), Id(4)]).exact_id(), None);
        assert_eq!(Filter::All.exact_id(), None);
        let f = Filter::And(vec![Filter::Eq("a".into(), 1.into()), Filter::ById(Id(9))]);
        assert_eq!(f.exact_id(), Some(Id(9)));
    }

    #[test]
    fn query_classification() {
        let q = Query::Insert {
            table: "users".into(),
            id: Id(1),
            row: row("x"),
        };
        assert!(q.is_write());
        assert_eq!(q.table(), Some("users"));
        let s = Query::Select {
            table: "users".into(),
            filter: Filter::All,
            order: None,
            limit: None,
        };
        assert!(!s.is_write());
    }

    #[test]
    fn affected_ids_from_both_result_shapes() {
        let rows = QueryResult::Rows(vec![(Id(1), row("a")), (Id(2), row("b"))]);
        assert_eq!(rows.affected_ids(), vec![Id(1), Id(2)]);
        let ids = QueryResult::AffectedIds(vec![Id(3)]);
        assert_eq!(ids.affected_ids(), vec![Id(3)]);
        let batch = QueryResult::Batch(vec![rows, ids]);
        assert_eq!(batch.affected_ids(), vec![Id(1), Id(2), Id(3)]);
    }
}
