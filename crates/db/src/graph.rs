//! Graph engine: labelled property nodes, adjacency lists, and traversals,
//! in the style of Neo4j.
//!
//! Nodes live in per-label tables and carry dynamic properties; edges are
//! held in adjacency lists per edge label. The paper's Example 2 (§3.3)
//! replicates a SQL `friendships` join table into Neo4j edges through an
//! observer; [`Query::Traverse`] then serves the recommendation engine's
//! "friends of friends" queries in breadth-first order.

use crate::engine::{Capabilities, Engine, EngineStats};
use crate::error::DbError;
use crate::faults::DbFaults;
use crate::latency::LatencyModel;
use crate::query::{Query, QueryResult, Row};
use crate::relational::sort_rows;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use synapse_model::Id;

#[derive(Debug, Default)]
struct GraphStore {
    /// Node properties by label: label → id → props.
    nodes: HashMap<String, HashMap<Id, Row>>,
    /// Undirected adjacency by edge label: label → node → neighbours.
    /// (Neo4j's `has_many :both` — friendship graphs are symmetric.)
    edges: HashMap<String, HashMap<Id, BTreeSet<Id>>>,
}

impl GraphStore {
    fn neighbors(&self, label: &str, from: Id) -> BTreeSet<Id> {
        self.edges
            .get(label)
            .and_then(|adj| adj.get(&from))
            .cloned()
            .unwrap_or_default()
    }

    /// Breadth-first traversal up to `depth` hops, start excluded.
    fn traverse(&self, label: &str, from: Id, depth: usize) -> Vec<Id> {
        let mut seen: BTreeSet<Id> = BTreeSet::new();
        let mut order: Vec<Id> = Vec::new();
        let mut queue: VecDeque<(Id, usize)> = VecDeque::new();
        seen.insert(from);
        queue.push_back((from, 0));
        while let Some((node, d)) = queue.pop_front() {
            if d == depth {
                continue;
            }
            for next in self.neighbors(label, node) {
                if seen.insert(next) {
                    order.push(next);
                    queue.push_back((next, d + 1));
                }
            }
        }
        order
    }
}

/// The graph engine. See the module docs.
pub struct GraphDb {
    caps: Capabilities,
    latency: LatencyModel,
    store: Mutex<GraphStore>,
    /// Fault panel: traversal timeouts fail [`Query::Traverse`] with a
    /// transient error (the graph failure class where a deep walk blows
    /// its time budget).
    faults: DbFaults,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl GraphDb {
    /// Creates an engine with the given vendor capabilities and latency.
    pub fn new(caps: Capabilities, latency: LatencyModel) -> Self {
        GraphDb {
            caps,
            latency,
            store: Mutex::new(GraphStore::default()),
            faults: DbFaults::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The engine's fault panel (shared state with every clone).
    pub fn faults(&self) -> DbFaults {
        self.faults.clone()
    }

    /// Total number of (undirected) edges, for tests and stats.
    pub fn edge_count(&self) -> u64 {
        let store = self.store.lock();
        let double: usize = store
            .edges
            .values()
            .flat_map(|adj| adj.values())
            .map(BTreeSet::len)
            .sum();
        (double / 2) as u64
    }
}

impl Engine for GraphDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        let mut store = self.store.lock();
        match q {
            Query::CreateTable { table } => {
                store.nodes.entry(table.clone()).or_default();
                Ok(QueryResult::Unit)
            }
            Query::DropTable { table } => {
                store.nodes.remove(table);
                Ok(QueryResult::Unit)
            }
            Query::Insert { table, id, row } => {
                let label = store.nodes.entry(table.clone()).or_default();
                if label.contains_key(id) {
                    return Err(DbError::DuplicateKey {
                        table: table.clone(),
                        key: id.to_string(),
                    });
                }
                label.insert(*id, row.clone());
                Ok(QueryResult::Rows(vec![(*id, row.clone())]))
            }
            Query::Update {
                table,
                filter,
                set,
                unset,
            } => {
                let label = store.nodes.entry(table.clone()).or_default();
                let ids: Vec<Id> = label
                    .iter()
                    .filter(|(id, props)| filter.matches(**id, props))
                    .map(|(id, _)| *id)
                    .collect();
                let mut written = Vec::new();
                for id in ids {
                    let props = label.get_mut(&id).expect("id just matched");
                    for (k, v) in set {
                        props.insert(k.clone(), v.clone());
                    }
                    for k in unset {
                        props.remove(k);
                    }
                    written.push((id, props.clone()));
                }
                written.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(written))
            }
            Query::Delete { table, filter } => {
                let ids: Vec<Id> = store
                    .nodes
                    .entry(table.clone())
                    .or_default()
                    .iter()
                    .filter(|(id, props)| filter.matches(**id, props))
                    .map(|(id, _)| *id)
                    .collect();
                let mut removed = Vec::new();
                for id in &ids {
                    if let Some(props) = store
                        .nodes
                        .get_mut(table)
                        .and_then(|label| label.remove(id))
                    {
                        removed.push((*id, props));
                    }
                    // Deleting a node detaches all its edges (Neo4j's
                    // DETACH DELETE).
                    for adj in store.edges.values_mut() {
                        if let Some(peers) = adj.remove(id) {
                            for peer in peers {
                                if let Some(back) = adj.get_mut(&peer) {
                                    back.remove(id);
                                }
                            }
                        }
                    }
                }
                removed.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(removed))
            }
            Query::Select {
                table,
                filter,
                order,
                limit,
            } => {
                let rows = match store.nodes.get(table) {
                    Some(label) => {
                        let mut rows: Vec<(Id, Row)> = label
                            .iter()
                            .filter(|(id, props)| filter.matches(**id, props))
                            .map(|(id, props)| (*id, props.clone()))
                            .collect();
                        sort_rows(&mut rows, order);
                        if let Some(n) = limit {
                            rows.truncate(*n);
                        }
                        rows
                    }
                    None => Vec::new(),
                };
                Ok(QueryResult::Rows(rows))
            }
            Query::Count { table, filter } => {
                let n = store
                    .nodes
                    .get(table)
                    .map(|label| {
                        label
                            .iter()
                            .filter(|(id, props)| filter.matches(**id, props))
                            .count()
                    })
                    .unwrap_or(0);
                Ok(QueryResult::Count(n as u64))
            }
            Query::AddEdge { label, from, to } => {
                let adj = store.edges.entry(label.clone()).or_default();
                adj.entry(*from).or_default().insert(*to);
                adj.entry(*to).or_default().insert(*from);
                Ok(QueryResult::Unit)
            }
            Query::RemoveEdge { label, from, to } => {
                if let Some(adj) = store.edges.get_mut(label) {
                    if let Some(peers) = adj.get_mut(from) {
                        peers.remove(to);
                    }
                    if let Some(peers) = adj.get_mut(to) {
                        peers.remove(from);
                    }
                }
                Ok(QueryResult::Unit)
            }
            Query::Traverse { label, from, depth } => {
                // Timeout fault: the walk blew its budget. Transient —
                // the engine recovers by itself, so callers retry.
                if self.faults.gate_traversal() {
                    return Err(DbError::Unavailable);
                }
                Ok(QueryResult::Ids(store.traverse(label, *from, *depth)))
            }
            Query::Batch(_) => Err(DbError::Unsupported("batches on graph engine")),
            Query::Search { .. } | Query::Aggregate { .. } => {
                Err(DbError::Unsupported("full-text search on graph engine"))
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let store = self.store.lock();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for label in store.nodes.values() {
            rows += label.len() as u64;
            for props in label.values() {
                bytes += props
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>() as u64;
            }
        }
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::query::Filter;
    use synapse_model::Value;

    fn db() -> GraphDb {
        profiles::neo4j(LatencyModel::off())
    }

    fn add_user(db: &GraphDb, id: u64, name: &str) {
        let mut row = Row::new();
        row.insert("name".to_owned(), Value::from(name));
        db.execute(&Query::Insert {
            table: "User".into(),
            id: Id(id),
            row,
        })
        .unwrap();
    }

    fn friend(db: &GraphDb, a: u64, b: u64) {
        db.execute(&Query::AddEdge {
            label: "friends".into(),
            from: Id(a),
            to: Id(b),
        })
        .unwrap();
    }

    fn traverse(db: &GraphDb, from: u64, depth: usize) -> Vec<Id> {
        match db
            .execute(&Query::Traverse {
                label: "friends".into(),
                from: Id(from),
                depth,
            })
            .unwrap()
        {
            QueryResult::Ids(ids) => ids,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traversal_timeouts_fail_transiently_then_recover() {
        let db = db();
        add_user(&db, 1, "a");
        add_user(&db, 2, "b");
        friend(&db, 1, 2);
        db.faults().inject_traversal_timeouts(2);
        for _ in 0..2 {
            let res = db.execute(&Query::Traverse {
                label: "friends".into(),
                from: Id(1),
                depth: 1,
            });
            assert_eq!(res, Err(DbError::Unavailable));
        }
        // The countdown expired: the same traversal now succeeds, and
        // graph state was never touched by the failures.
        assert_eq!(traverse(&db, 1, 1), vec![Id(2)]);
        assert_eq!(db.faults().stats().traversal_timeouts_injected, 2);
        assert!(!db.faults().is_armed());
    }

    #[test]
    fn traversal_timeout_schedule_is_deterministic() {
        // Same traversal schedule twice: identical error patterns.
        let observed: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let db = db();
                add_user(&db, 1, "a");
                add_user(&db, 2, "b");
                friend(&db, 1, 2);
                db.faults().inject_traversal_timeouts(2);
                (0..4)
                    .map(|_| {
                        db.execute(&Query::Traverse {
                            label: "friends".into(),
                            from: Id(1),
                            depth: 1,
                        })
                        .is_err()
                    })
                    .collect()
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert_eq!(observed[0], vec![true, true, false, false]);
    }

    #[test]
    fn edges_are_undirected() {
        let db = db();
        add_user(&db, 1, "a");
        add_user(&db, 2, "b");
        friend(&db, 1, 2);
        assert_eq!(traverse(&db, 1, 1), vec![Id(2)]);
        assert_eq!(traverse(&db, 2, 1), vec![Id(1)]);
        assert_eq!(db.edge_count(), 1);
    }

    #[test]
    fn traversal_respects_depth() {
        let db = db();
        for i in 1..=4 {
            add_user(&db, i, "u");
        }
        // Chain 1 - 2 - 3 - 4.
        friend(&db, 1, 2);
        friend(&db, 2, 3);
        friend(&db, 3, 4);
        assert_eq!(traverse(&db, 1, 1), vec![Id(2)]);
        assert_eq!(traverse(&db, 1, 2), vec![Id(2), Id(3)]);
        assert_eq!(traverse(&db, 1, 3), vec![Id(2), Id(3), Id(4)]);
    }

    #[test]
    fn traversal_handles_cycles() {
        let db = db();
        for i in 1..=3 {
            add_user(&db, i, "u");
        }
        friend(&db, 1, 2);
        friend(&db, 2, 3);
        friend(&db, 3, 1);
        assert_eq!(traverse(&db, 1, 10), vec![Id(2), Id(3)]);
    }

    #[test]
    fn remove_edge_breaks_traversal() {
        let db = db();
        add_user(&db, 1, "a");
        add_user(&db, 2, "b");
        friend(&db, 1, 2);
        db.execute(&Query::RemoveEdge {
            label: "friends".into(),
            from: Id(2),
            to: Id(1),
        })
        .unwrap();
        assert!(traverse(&db, 1, 3).is_empty());
        assert_eq!(db.edge_count(), 0);
    }

    #[test]
    fn deleting_node_detaches_edges() {
        let db = db();
        for i in 1..=3 {
            add_user(&db, i, "u");
        }
        friend(&db, 1, 2);
        friend(&db, 2, 3);
        db.execute(&Query::Delete {
            table: "User".into(),
            filter: Filter::ById(Id(2)),
        })
        .unwrap();
        assert!(traverse(&db, 1, 5).is_empty());
        assert_eq!(db.edge_count(), 0);
    }

    #[test]
    fn node_properties_update() {
        let db = db();
        add_user(&db, 1, "a");
        let mut set = Row::new();
        set.insert("likes".to_owned(), Value::Int(5));
        let res = db
            .execute(&Query::Update {
                table: "User".into(),
                filter: Filter::ById(Id(1)),
                set,
                unset: vec![],
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(res[0].1["likes"], Value::Int(5));
    }

    #[test]
    fn different_edge_labels_are_independent() {
        let db = db();
        add_user(&db, 1, "a");
        add_user(&db, 2, "b");
        friend(&db, 1, 2);
        db.execute(&Query::AddEdge {
            label: "blocked".into(),
            from: Id(1),
            to: Id(2),
        })
        .unwrap();
        db.execute(&Query::RemoveEdge {
            label: "blocked".into(),
            from: Id(1),
            to: Id(2),
        })
        .unwrap();
        assert_eq!(traverse(&db, 1, 1), vec![Id(2)], "friends edge survives");
    }
}
