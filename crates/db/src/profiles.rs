//! Vendor profiles: the nine databases of Table 3, each a configuration of
//! one of the five engine families.
//!
//! Each profile fixes the capability flags Synapse cares about (`RETURNING`,
//! transactions, batches, schemalessness) and a latency model calibrated to
//! the saturation throughputs the paper reports (§6.3: PostgreSQL ≈ 12 k
//! writes/s, Elasticsearch ≈ 20 k writes/s) and to the relative ordering
//! implied by Fig. 13(b)'s "slowest end" annotations (Elasticsearch slower
//! than Cassandra, RethinkDB slower than MongoDB, PostgreSQL slower than
//! TokuMX, Neo4j slower than MySQL). Latency is disabled in tests and
//! enabled by the benchmark harness.

use crate::columnar::ColumnarDb;
use crate::document::DocumentDb;
use crate::engine::{Capabilities, Engine, EngineKind};
use crate::ephemeral::EphemeralDb;
use crate::graph::GraphDb;
use crate::latency::LatencyModel;
use crate::relational::RelationalDb;
use crate::search::SearchDb;
use std::sync::Arc;
use std::time::Duration;

/// All vendor names accepted by [`by_name`], in Table 3 order.
pub const VENDORS: &[&str] = &[
    "postgresql",
    "mysql",
    "oracle",
    "mongodb",
    "tokumx",
    "cassandra",
    "elasticsearch",
    "neo4j",
    "rethinkdb",
    "ephemeral",
];

/// Returns the calibrated latency model for a vendor (see module docs).
///
/// # Panics
///
/// Panics on an unknown vendor name; use [`VENDORS`] to enumerate.
pub fn calibrated_latency(vendor: &str) -> LatencyModel {
    let (read_us, write_us) = match vendor {
        // 1 / 83 µs ≈ 12 k writes/s, the paper's PostgreSQL saturation.
        "postgresql" => (30, 83),
        "mysql" => (25, 70),
        "oracle" => (30, 75),
        "mongodb" => (15, 40),
        // TokuMX's fractal-tree indexes make it strictly faster on writes
        // than MongoDB — the reason Crowdtap migrated (§6.5).
        "tokumx" => (15, 30),
        "rethinkdb" => (20, 55),
        // Cassandra is write-optimized (Table 1: "write-intensive").
        "cassandra" => (20, 25),
        // 1 / 50 µs ≈ 20 k writes/s, the paper's Elasticsearch saturation.
        "elasticsearch" => (40, 50),
        "neo4j" => (25, 90),
        "ephemeral" => (0, 0),
        other => panic!("unknown vendor {other}"),
    };
    if write_us == 0 {
        LatencyModel::off()
    } else {
        LatencyModel::new(
            Duration::from_micros(read_us),
            Duration::from_micros(write_us),
        )
    }
}

/// PostgreSQL: relational, `RETURNING *`, transactions.
pub fn postgresql(latency: LatencyModel) -> RelationalDb {
    RelationalDb::new(
        Capabilities {
            kind: EngineKind::Relational,
            vendor: "postgresql",
            returning: true,
            transactions: true,
            atomic_batch: false,
            schemaless: false,
        },
        latency,
    )
}

/// MySQL: relational, **no** `RETURNING *` (the interceptor must read
/// written rows back, §4.1), transactions.
pub fn mysql(latency: LatencyModel) -> RelationalDb {
    RelationalDb::new(
        Capabilities {
            kind: EngineKind::Relational,
            vendor: "mysql",
            returning: false,
            transactions: true,
            atomic_batch: false,
            schemaless: false,
        },
        latency,
    )
}

/// Oracle: relational, `RETURNING *`, transactions.
pub fn oracle(latency: LatencyModel) -> RelationalDb {
    RelationalDb::new(
        Capabilities {
            kind: EngineKind::Relational,
            vendor: "oracle",
            returning: true,
            transactions: true,
            atomic_batch: false,
            schemaless: false,
        },
        latency,
    )
}

/// MongoDB: document, schemaless, single-document atomicity, written rows
/// echoed back (findAndModify-style).
pub fn mongodb(latency: LatencyModel) -> DocumentDb {
    DocumentDb::new(
        Capabilities {
            kind: EngineKind::Document,
            vendor: "mongodb",
            returning: true,
            transactions: false,
            atomic_batch: false,
            schemaless: true,
        },
        latency,
    )
}

/// TokuMX: MongoDB-compatible document store with write-optimized indexes.
pub fn tokumx(latency: LatencyModel) -> DocumentDb {
    DocumentDb::new(
        Capabilities {
            kind: EngineKind::Document,
            vendor: "tokumx",
            returning: true,
            transactions: false,
            atomic_batch: false,
            schemaless: true,
        },
        latency,
    )
}

/// RethinkDB: document store (subscriber-only in Table 3).
pub fn rethinkdb(latency: LatencyModel) -> DocumentDb {
    DocumentDb::new(
        Capabilities {
            kind: EngineKind::Document,
            vendor: "rethinkdb",
            returning: true,
            transactions: false,
            atomic_batch: false,
            schemaless: true,
        },
        latency,
    )
}

/// Cassandra: columnar/LSM, **no** `RETURNING`, logged atomic batches.
pub fn cassandra(latency: LatencyModel) -> ColumnarDb {
    ColumnarDb::new(
        Capabilities {
            kind: EngineKind::Columnar,
            vendor: "cassandra",
            returning: false,
            transactions: false,
            atomic_batch: true,
            schemaless: true,
        },
        latency,
    )
}

/// Elasticsearch: inverted-index search store (subscriber-only in Table 3).
pub fn elasticsearch(latency: LatencyModel) -> SearchDb {
    SearchDb::new(
        Capabilities {
            kind: EngineKind::Search,
            vendor: "elasticsearch",
            returning: true,
            transactions: false,
            atomic_batch: false,
            schemaless: true,
        },
        latency,
    )
}

/// Neo4j: property graph (subscriber-only in Table 3).
pub fn neo4j(latency: LatencyModel) -> GraphDb {
    GraphDb::new(
        Capabilities {
            kind: EngineKind::Graph,
            vendor: "neo4j",
            returning: true,
            transactions: false,
            atomic_batch: false,
            schemaless: true,
        },
        latency,
    )
}

/// The DB-less engine backing ephemerals and observers (§3.1).
pub fn ephemeral() -> EphemeralDb {
    EphemeralDb::new()
}

/// Constructs any vendor by name, boxed behind the [`Engine`] trait.
///
/// # Panics
///
/// Panics on an unknown vendor name; use [`VENDORS`] to enumerate.
pub fn by_name(vendor: &str, latency: LatencyModel) -> Arc<dyn Engine> {
    match vendor {
        "postgresql" => Arc::new(postgresql(latency)),
        "mysql" => Arc::new(mysql(latency)),
        "oracle" => Arc::new(oracle(latency)),
        "mongodb" => Arc::new(mongodb(latency)),
        "tokumx" => Arc::new(tokumx(latency)),
        "rethinkdb" => Arc::new(rethinkdb(latency)),
        "cassandra" => Arc::new(cassandra(latency)),
        "elasticsearch" => Arc::new(elasticsearch(latency)),
        "neo4j" => Arc::new(neo4j(latency)),
        "ephemeral" => Arc::new(ephemeral()),
        other => panic!("unknown vendor {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vendor_constructs() {
        for v in VENDORS {
            let engine = by_name(v, LatencyModel::off());
            assert_eq!(engine.capabilities().vendor, *v);
        }
    }

    #[test]
    fn returning_capability_matches_the_paper() {
        // §4.1 lists Oracle, PostgreSQL, MongoDB, TokuMX, RethinkDB as
        // supporting RETURNING-style writes, and MySQL/Cassandra as not.
        for (v, expect) in [
            ("postgresql", true),
            ("oracle", true),
            ("mongodb", true),
            ("tokumx", true),
            ("rethinkdb", true),
            ("mysql", false),
            ("cassandra", false),
        ] {
            assert_eq!(
                by_name(v, LatencyModel::off()).capabilities().returning,
                expect,
                "{v}"
            );
        }
    }

    #[test]
    fn calibration_orderings_match_fig13b() {
        let w = |v: &str| calibrated_latency(v).write;
        assert!(w("elasticsearch") > w("cassandra"));
        assert!(w("rethinkdb") > w("mongodb"));
        assert!(w("postgresql") > w("tokumx"));
        assert!(w("neo4j") > w("mysql"));
        assert!(!calibrated_latency("ephemeral").enabled);
    }

    #[test]
    #[should_panic(expected = "unknown vendor")]
    fn unknown_vendor_panics() {
        let _ = calibrated_latency("sqlite");
    }
}
