//! Heterogeneous in-process database engines for the Synapse reproduction.
//!
//! The paper evaluates Synapse across five *families* of database engines
//! (Table 1): relational, document, columnar, search, and graph. Since the
//! reproduction cannot run PostgreSQL, MongoDB, Cassandra, Elasticsearch, or
//! Neo4j, this crate implements each family from scratch with a genuinely
//! different storage layout:
//!
//! * [`relational`] — strict-schema tables, B-tree primary/secondary
//!   indexes, row locks, MVCC-lite transactions with two-phase commit,
//!   per-vendor `RETURNING *` capability (PostgreSQL/Oracle yes, MySQL no).
//! * [`document`] — schemaless collections of nested documents with array
//!   attributes (MongoDB/TokuMX/RethinkDB profiles).
//! * [`columnar`] — an LSM engine: memtable, SSTable flushes, compaction,
//!   cell timestamps, tombstones, logged batches (Cassandra profile).
//! * [`search`] — an inverted-index engine with pluggable analyzers and
//!   tf-idf scoring plus terms aggregations (Elasticsearch profile).
//! * [`graph`] — labelled property nodes with adjacency lists and
//!   breadth-first traversals (Neo4j profile).
//! * [`ephemeral`] — a no-op engine backing the paper's *ephemeral* and
//!   *observer* abstractions (DB-less models, §3.1).
//!
//! All engines speak one [`query::Query`] AST through the [`engine::Engine`]
//! trait — the "DB driver" layer at which Synapse's query interceptor sits
//! (Fig. 6(a)). Per-vendor differences that matter to Synapse (write
//! read-back vs. `RETURNING`, transactions, batches) are surfaced as
//! [`engine::Capabilities`].

pub mod columnar;
pub mod document;
pub mod engine;
pub mod ephemeral;
pub mod error;
pub mod faults;
pub mod graph;
pub mod latency;
pub mod profiles;
pub mod query;
pub mod relational;
pub mod search;

pub use engine::{Capabilities, Engine, EngineKind, EngineStats, TxnId};
pub use error::DbError;
pub use faults::{DbFaultStats, DbFaults};
pub use latency::{LatencyMode, LatencyModel};
pub use query::{Filter, Query, QueryResult, Row};
