//! The DB-less engine behind ephemerals and observers.
//!
//! The paper's *ephemeral* models are published but never persisted, and
//! *observer* models are subscribed but never persisted (§3.1) — e.g. a
//! front-end publishing raw click events straight to analytics subscribers,
//! or a mailer that only reacts to updates. This engine accepts every CRUD
//! query, stores nothing, and echoes written rows back so the publishing
//! pipeline sees the same shapes as with a real store.

use crate::engine::{Capabilities, Engine, EngineKind, EngineStats};
use crate::error::DbError;
use crate::latency::LatencyModel;
use crate::query::{Query, QueryResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// The no-op engine. See the module docs.
pub struct EphemeralDb {
    caps: Capabilities,
    latency: LatencyModel,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl EphemeralDb {
    /// Creates the engine (there is nothing to configure).
    pub fn new() -> Self {
        EphemeralDb {
            caps: Capabilities {
                kind: EngineKind::Ephemeral,
                vendor: "ephemeral",
                returning: true,
                transactions: false,
                atomic_batch: false,
                schemaless: true,
            },
            latency: LatencyModel::off(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }
}

impl Default for EphemeralDb {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine for EphemeralDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        match q {
            Query::Insert { id, row, .. } => Ok(QueryResult::Rows(vec![(*id, row.clone())])),
            // Nothing is stored, so updates/deletes affect nothing and all
            // reads are empty.
            Query::Update { .. } | Query::Delete { .. } => Ok(QueryResult::Rows(Vec::new())),
            Query::Select { .. } => Ok(QueryResult::Rows(Vec::new())),
            Query::Count { .. } => Ok(QueryResult::Count(0)),
            Query::CreateTable { .. } | Query::DropTable { .. } => Ok(QueryResult::Unit),
            _ => Err(DbError::Unsupported("query kind on ephemeral engine")),
        }
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows: 0,
            bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Filter, Row};
    use synapse_model::{Id, Value};

    #[test]
    fn inserts_echo_but_store_nothing() {
        let db = EphemeralDb::new();
        let mut row = Row::new();
        row.insert("event".to_owned(), Value::from("click"));
        let res = db
            .execute(&Query::Insert {
                table: "events".into(),
                id: Id(1),
                row: row.clone(),
            })
            .unwrap();
        assert_eq!(res, QueryResult::Rows(vec![(Id(1), row)]));
        let rows = db
            .execute(&Query::Select {
                table: "events".into(),
                filter: Filter::All,
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert!(rows.is_empty());
        assert_eq!(db.stats().rows, 0);
        assert_eq!(db.stats().writes, 1);
    }

    #[test]
    fn repeated_ids_never_conflict() {
        let db = EphemeralDb::new();
        for _ in 0..3 {
            db.execute(&Query::Insert {
                table: "events".into(),
                id: Id(1),
                row: Row::new(),
            })
            .unwrap();
        }
    }
}
