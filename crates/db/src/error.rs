//! Error type shared by all engines.

use std::fmt;

/// Errors returned by database engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The referenced table/collection/label does not exist.
    NoSuchTable(String),
    /// The referenced row/document/node does not exist.
    NotFound {
        /// Table name.
        table: String,
        /// Stringified key.
        key: String,
    },
    /// A row with the same primary key already exists.
    DuplicateKey {
        /// Table name.
        table: String,
        /// Stringified key.
        key: String,
    },
    /// The value violates the table schema.
    SchemaViolation(String),
    /// The engine does not support the requested operation.
    Unsupported(&'static str),
    /// The referenced transaction does not exist or is finished.
    NoSuchTxn(u64),
    /// The transaction is in the wrong state for the requested step.
    BadTxnState {
        /// Transaction id.
        txn: u64,
        /// Expected state description.
        expected: &'static str,
        /// Actual state description.
        actual: &'static str,
    },
    /// A row lock could not be acquired within the deadline.
    LockTimeout {
        /// Table name.
        table: String,
        /// Stringified key.
        key: String,
    },
    /// The engine was killed by failure injection.
    Unavailable,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::NotFound { table, key } => write!(f, "not found: {table}[{key}]"),
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate key: {table}[{key}]")
            }
            DbError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            DbError::NoSuchTxn(t) => write!(f, "no such transaction {t}"),
            DbError::BadTxnState {
                txn,
                expected,
                actual,
            } => write!(f, "txn {txn} in state {actual}, expected {expected}"),
            DbError::LockTimeout { table, key } => {
                write!(f, "lock timeout on {table}[{key}]")
            }
            DbError::Unavailable => write!(f, "engine unavailable"),
        }
    }
}

impl std::error::Error for DbError {}
