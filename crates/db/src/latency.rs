//! Synthetic per-operation latency model.
//!
//! The paper's Fig. 13(b) shows each publisher/subscriber pair saturating at
//! the throughput of its *slower* database (PostgreSQL ≈ 12 k writes/s,
//! Elasticsearch ≈ 20 k writes/s, …). In-process engines would all be far
//! faster than the real systems and — worse — in the *wrong order*, so each
//! vendor profile carries a latency model calibrated to the paper's
//! saturation points. The model busy-spins rather than sleeps: OS sleep
//! granularity (~50 µs minimum, often 1 ms) would flatten every curve,
//! whereas spinning burns CPU exactly like a real engine doing real work.
//!
//! Unit tests construct engines with the model disabled ([`LatencyModel::off`])
//! so the suite stays fast; the benchmark harness enables it.
//!
//! Charging can either *sleep* (default — the thread yields, modelling a
//! client waiting on a network-attached database; scaling benches need
//! this so worker counts matter even on few cores) or *spin* (burning CPU
//! like an embedded engine doing real work).

use std::time::{Duration, Instant};

/// How a latency charge occupies the thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Block the thread without consuming CPU (network-attached DB).
    #[default]
    Sleep,
    /// Busy-wait, consuming CPU (in-process engine work).
    Spin,
}

/// Per-operation synthetic costs for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost charged to each read query.
    pub read: Duration,
    /// Cost charged to each write query.
    pub write: Duration,
    /// Master switch; `false` makes both charges free.
    pub enabled: bool,
    /// Sleep or spin while charging.
    pub mode: LatencyMode,
}

impl LatencyModel {
    /// A disabled model (no artificial cost).
    pub fn off() -> Self {
        LatencyModel {
            read: Duration::ZERO,
            write: Duration::ZERO,
            enabled: false,
            mode: LatencyMode::Sleep,
        }
    }

    /// A model with the given per-operation costs, enabled, sleeping.
    pub fn new(read: Duration, write: Duration) -> Self {
        LatencyModel {
            read,
            write,
            enabled: true,
            mode: LatencyMode::Sleep,
        }
    }

    /// A busy-waiting variant of [`LatencyModel::new`].
    pub fn spinning(read: Duration, write: Duration) -> Self {
        LatencyModel {
            mode: LatencyMode::Spin,
            ..Self::new(read, write)
        }
    }

    fn charge(&self, d: Duration) {
        if !self.enabled || d.is_zero() {
            return;
        }
        match self.mode {
            LatencyMode::Sleep => std::thread::sleep(d),
            LatencyMode::Spin => spin_for(d),
        }
    }

    /// Charges one read.
    pub fn charge_read(&self) {
        self.charge(self.read);
    }

    /// Charges one write.
    pub fn charge_write(&self) {
        self.charge(self.write);
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::off()
    }
}

/// Busy-waits for `d` with microsecond fidelity.
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = LatencyModel::off();
        let t = Instant::now();
        for _ in 0..10_000 {
            m.charge_write();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn enabled_model_charges_at_least_the_cost() {
        let m = LatencyModel::new(Duration::ZERO, Duration::from_micros(200));
        let t = Instant::now();
        for _ in 0..20 {
            m.charge_write();
        }
        assert!(t.elapsed() >= Duration::from_micros(20 * 200));
    }
}
