//! Relational engine: strict schemas, B-tree indexes, row locks, and
//! two-phase-commit transactions.
//!
//! This engine stands in for PostgreSQL, MySQL, and Oracle. The three
//! vendor profiles (see [`crate::profiles`]) differ where the paper says
//! they differ:
//!
//! * PostgreSQL and Oracle support `RETURNING *`, so write queries echo the
//!   written rows back ([`QueryResult::Rows`]);
//! * MySQL does not, so writes return only [`QueryResult::AffectedIds`] and
//!   Synapse's interceptor issues an additional read (§4.1: "for DBs without
//!   this feature we develop a protocol that involves performing an
//!   additional query").
//!
//! Transactions buffer writes in a private overlay, take per-row write
//! locks, and expose `prepare`/`commit` so Synapse can run its 2PC across
//! the database, the version store, and the message broker (§4.2).

use crate::engine::{Capabilities, Engine, EngineStats, TxnId, TxnIdGen};
use crate::error::DbError;
use crate::latency::LatencyModel;
use crate::query::{Filter, OrderBy, Query, QueryResult, Row};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use synapse_model::{Id, Value};

/// Default time a writer waits for a row lock before erroring.
const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug, Default)]
struct Table {
    /// Primary B-tree: id → row.
    rows: BTreeMap<Id, Row>,
    /// Declared columns; `None` until a schema is installed, in which case
    /// anything goes (tests and schemaless callers).
    columns: Option<BTreeSet<String>>,
    /// Secondary indexes: field → value → ids.
    indexes: HashMap<String, BTreeMap<Value, BTreeSet<Id>>>,
    /// Row write locks: id → owning transaction.
    locks: HashMap<Id, TxnId>,
}

impl Table {
    fn check_row(&self, table: &str, row: &Row) -> Result<(), DbError> {
        if let Some(cols) = &self.columns {
            for field in row.keys() {
                if !cols.contains(field) {
                    return Err(DbError::SchemaViolation(format!(
                        "column {table}.{field} does not exist"
                    )));
                }
            }
        }
        Ok(())
    }

    fn index_insert(&mut self, id: Id, row: &Row) {
        for (field, index) in &mut self.indexes {
            let v = row.get(field).cloned().unwrap_or(Value::Null);
            index.entry(v).or_default().insert(id);
        }
    }

    fn index_remove(&mut self, id: Id, row: &Row) {
        for (field, index) in &mut self.indexes {
            let v = row.get(field).cloned().unwrap_or(Value::Null);
            if let Some(ids) = index.get_mut(&v) {
                ids.remove(&id);
                if ids.is_empty() {
                    index.remove(&v);
                }
            }
        }
    }

    /// Candidate ids for a filter, using a secondary index when one covers
    /// the predicate, otherwise the full key range.
    fn candidates(&self, filter: &Filter) -> Vec<Id> {
        match filter {
            Filter::ById(id) => vec![*id],
            Filter::IdIn(ids) => ids.clone(),
            Filter::IdAfter(after) => self
                .rows
                .range((
                    std::ops::Bound::Excluded(*after),
                    std::ops::Bound::Unbounded,
                ))
                .map(|(id, _)| *id)
                .collect(),
            Filter::Eq(field, value) => {
                if let Some(index) = self.indexes.get(field) {
                    return index
                        .get(value)
                        .map(|ids| ids.iter().copied().collect())
                        .unwrap_or_default();
                }
                self.rows.keys().copied().collect()
            }
            Filter::And(fs) => {
                for f in fs {
                    if let Filter::ById(_) | Filter::IdIn(_) = f {
                        return self.candidates(f);
                    }
                }
                for f in fs {
                    if let Filter::Eq(field, _) = f {
                        if self.indexes.contains_key(field) {
                            return self.candidates(f);
                        }
                    }
                }
                self.rows.keys().copied().collect()
            }
            Filter::All => self.rows.keys().copied().collect(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    Active,
    Prepared,
}

impl TxnState {
    fn name(self) -> &'static str {
        match self {
            TxnState::Active => "active",
            TxnState::Prepared => "prepared",
        }
    }
}

#[derive(Debug)]
struct Txn {
    state: TxnState,
    /// Staged row images: `(table, id)` → `Some(row)` (upsert) or `None`
    /// (delete).
    overlay: HashMap<(String, Id), Option<Row>>,
    /// Locks held, for release on finish.
    locked: Vec<(String, Id)>,
}

#[derive(Default)]
struct Inner {
    tables: HashMap<String, Table>,
    txns: HashMap<TxnId, Txn>,
}

/// The relational engine. See the module docs.
pub struct RelationalDb {
    caps: Capabilities,
    latency: LatencyModel,
    inner: Mutex<Inner>,
    lock_released: Condvar,
    txn_gen: TxnIdGen,
    lock_timeout: Duration,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl RelationalDb {
    /// Creates an engine with the given vendor capabilities and latency.
    pub fn new(caps: Capabilities, latency: LatencyModel) -> Self {
        RelationalDb {
            caps,
            latency,
            inner: Mutex::new(Inner::default()),
            lock_released: Condvar::new(),
            txn_gen: TxnIdGen::default(),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Overrides the row-lock wait deadline (tests use short values).
    pub fn set_lock_timeout(&mut self, timeout: Duration) {
        self.lock_timeout = timeout;
    }

    /// Installs a strict column list for `table`, creating it if needed.
    /// Inserts/updates naming other columns then fail, as in real SQL.
    pub fn define_columns(&self, table: &str, columns: &[&str]) {
        let mut inner = self.inner.lock();
        let t = inner.tables.entry(table.to_owned()).or_default();
        t.columns = Some(columns.iter().map(|c| (*c).to_owned()).collect());
    }

    /// Creates a secondary index on `table.field`, backfilling existing rows.
    pub fn create_index(&self, table: &str, field: &str) {
        let mut inner = self.inner.lock();
        let t = inner.tables.entry(table.to_owned()).or_default();
        let mut index: BTreeMap<Value, BTreeSet<Id>> = BTreeMap::new();
        for (id, row) in &t.rows {
            let v = row.get(field).cloned().unwrap_or(Value::Null);
            index.entry(v).or_default().insert(*id);
        }
        t.indexes.insert(field.to_owned(), index);
    }

    /// Runs a closure with the table, or fails with [`DbError::NoSuchTable`].
    fn with_table<R>(
        inner: &mut Inner,
        table: &str,
        f: impl FnOnce(&mut Table) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        match inner.tables.get_mut(table) {
            Some(t) => f(t),
            None => Err(DbError::NoSuchTable(table.to_owned())),
        }
    }

    /// Acquires row locks for `txn`, blocking until free or timing out.
    fn lock_rows(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, Inner>,
        txn: TxnId,
        table: &str,
        ids: &[Id],
    ) -> Result<(), DbError> {
        let deadline = Instant::now() + self.lock_timeout;
        for id in ids {
            loop {
                let inner = &mut **guard;
                let t = inner
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.to_owned()))?;
                match t.locks.get(id) {
                    None => {
                        t.locks.insert(*id, txn);
                        if let Some(tx) = inner.txns.get_mut(&txn) {
                            tx.locked.push((table.to_owned(), *id));
                        }
                        break;
                    }
                    Some(owner) if *owner == txn => break,
                    Some(_) => {
                        let waited = self.lock_released.wait_until(guard, deadline);
                        if waited.timed_out() {
                            return Err(DbError::LockTimeout {
                                table: table.to_owned(),
                                key: id.to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Merged view of a row: transaction overlay over committed state.
    fn visible_row(inner: &Inner, txn: Option<TxnId>, table: &str, id: Id) -> Option<Row> {
        if let Some(txn) = txn {
            if let Some(tx) = inner.txns.get(&txn) {
                if let Some(staged) = tx.overlay.get(&(table.to_owned(), id)) {
                    return staged.clone();
                }
            }
        }
        inner.tables.get(table)?.rows.get(&id).cloned()
    }

    fn visible_ids(inner: &Inner, txn: Option<TxnId>, table: &str, filter: &Filter) -> Vec<Id> {
        let mut ids: BTreeSet<Id> = match inner.tables.get(table) {
            Some(t) => t.candidates(filter).into_iter().collect(),
            None => BTreeSet::new(),
        };
        // Rows created (or deleted) inside the transaction override the
        // committed candidates.
        if let Some(txn) = txn {
            if let Some(tx) = inner.txns.get(&txn) {
                for ((t, id), staged) in &tx.overlay {
                    if t == table {
                        match staged {
                            Some(_) => {
                                ids.insert(*id);
                            }
                            None => {
                                ids.remove(id);
                            }
                        }
                    }
                }
            }
        }
        ids.into_iter()
            .filter(|id| {
                Self::visible_row(inner, txn, table, *id)
                    .map(|row| filter.matches(*id, &row))
                    .unwrap_or(false)
            })
            .collect()
    }

    fn run(&self, txn: Option<TxnId>, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        let mut inner = self.inner.lock();
        if let Some(t) = txn {
            let tx = inner.txns.get(&t).ok_or(DbError::NoSuchTxn(t.0))?;
            if tx.state != TxnState::Active {
                return Err(DbError::BadTxnState {
                    txn: t.0,
                    expected: "active",
                    actual: tx.state.name(),
                });
            }
        }
        match q {
            Query::CreateTable { table } => {
                inner.tables.entry(table.clone()).or_default();
                Ok(QueryResult::Unit)
            }
            Query::DropTable { table } => {
                inner.tables.remove(table);
                Ok(QueryResult::Unit)
            }
            Query::Insert { table, id, row } => {
                if !inner.tables.contains_key(table) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                inner.tables[table].check_row(table, row)?;
                if Self::visible_row(&inner, txn, table, *id).is_some() {
                    return Err(DbError::DuplicateKey {
                        table: table.clone(),
                        key: id.to_string(),
                    });
                }
                match txn {
                    Some(t) => {
                        self.lock_rows(&mut inner, t, table, &[*id])?;
                        let tx = inner.txns.get_mut(&t).expect("txn checked above");
                        tx.overlay.insert((table.clone(), *id), Some(row.clone()));
                    }
                    None => {
                        self.wait_unlocked(&mut inner, table, &[*id])?;
                        Self::with_table(&mut inner, table, |t| {
                            t.rows.insert(*id, row.clone());
                            t.index_insert(*id, row);
                            Ok(())
                        })?;
                    }
                }
                self.returning_or_ids(vec![(*id, row.clone())])
            }
            Query::Update {
                table,
                filter,
                set,
                unset,
            } => {
                if !inner.tables.contains_key(table) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                inner.tables[table].check_row(table, set)?;
                let ids = Self::visible_ids(&inner, txn, table, filter);
                let mut written = Vec::with_capacity(ids.len());
                match txn {
                    Some(t) => {
                        self.lock_rows(&mut inner, t, table, &ids)?;
                        for id in ids {
                            let mut row = Self::visible_row(&inner, txn, table, id)
                                .expect("visible id has a row");
                            apply_changes(&mut row, set, unset);
                            written.push((id, row.clone()));
                            let tx = inner.txns.get_mut(&t).expect("txn checked above");
                            tx.overlay.insert((table.clone(), id), Some(row));
                        }
                    }
                    None => {
                        self.wait_unlocked(&mut inner, table, &ids)?;
                        for id in ids {
                            Self::with_table(&mut inner, table, |t| {
                                let old = t.rows.get(&id).cloned().expect("candidate exists");
                                t.index_remove(id, &old);
                                let mut row = old;
                                apply_changes(&mut row, set, unset);
                                t.rows.insert(id, row.clone());
                                t.index_insert(id, &row);
                                written.push((id, row));
                                Ok(())
                            })?;
                        }
                    }
                }
                self.returning_or_ids(written)
            }
            Query::Delete { table, filter } => {
                if !inner.tables.contains_key(table) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                let ids = Self::visible_ids(&inner, txn, table, filter);
                let mut removed = Vec::with_capacity(ids.len());
                match txn {
                    Some(t) => {
                        self.lock_rows(&mut inner, t, table, &ids)?;
                        for id in ids {
                            let row = Self::visible_row(&inner, txn, table, id)
                                .expect("visible id has a row");
                            removed.push((id, row));
                            let tx = inner.txns.get_mut(&t).expect("txn checked above");
                            tx.overlay.insert((table.clone(), id), None);
                        }
                    }
                    None => {
                        self.wait_unlocked(&mut inner, table, &ids)?;
                        for id in ids {
                            Self::with_table(&mut inner, table, |t| {
                                if let Some(row) = t.rows.remove(&id) {
                                    t.index_remove(id, &row);
                                    removed.push((id, row));
                                }
                                Ok(())
                            })?;
                        }
                    }
                }
                self.returning_or_ids(removed)
            }
            Query::Select {
                table,
                filter,
                order,
                limit,
            } => {
                if !inner.tables.contains_key(table) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                let ids = Self::visible_ids(&inner, txn, table, filter);
                let mut rows: Vec<(Id, Row)> = ids
                    .into_iter()
                    .map(|id| {
                        let row = Self::visible_row(&inner, txn, table, id).expect("visible row");
                        (id, row)
                    })
                    .collect();
                sort_rows(&mut rows, order);
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                Ok(QueryResult::Rows(rows))
            }
            Query::Count { table, filter } => {
                if !inner.tables.contains_key(table) {
                    return Err(DbError::NoSuchTable(table.clone()));
                }
                let n = Self::visible_ids(&inner, txn, table, filter).len();
                Ok(QueryResult::Count(n as u64))
            }
            Query::Batch(_) => Err(DbError::Unsupported("batches (use a transaction)")),
            Query::Search { .. } | Query::Aggregate { .. } => Err(DbError::Unsupported(
                "full-text search on relational engine",
            )),
            Query::AddEdge { .. } | Query::RemoveEdge { .. } | Query::Traverse { .. } => {
                Err(DbError::Unsupported("graph queries on relational engine"))
            }
        }
    }

    /// In auto-commit mode, waits for any transaction locks on `ids`.
    fn wait_unlocked(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, Inner>,
        table: &str,
        ids: &[Id],
    ) -> Result<(), DbError> {
        let deadline = Instant::now() + self.lock_timeout;
        for id in ids {
            loop {
                let locked = guard
                    .tables
                    .get(table)
                    .map(|t| t.locks.contains_key(id))
                    .unwrap_or(false);
                if !locked {
                    break;
                }
                let waited = self.lock_released.wait_until(guard, deadline);
                if waited.timed_out() {
                    return Err(DbError::LockTimeout {
                        table: table.to_owned(),
                        key: id.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    fn returning_or_ids(&self, rows: Vec<(Id, Row)>) -> Result<QueryResult, DbError> {
        if self.caps.returning {
            Ok(QueryResult::Rows(rows))
        } else {
            Ok(QueryResult::AffectedIds(
                rows.into_iter().map(|(id, _)| id).collect(),
            ))
        }
    }

    fn finish_txn(&self, txn: TxnId, apply: bool) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        let tx = inner.txns.remove(&txn).ok_or(DbError::NoSuchTxn(txn.0))?;
        if apply {
            for ((table, id), staged) in tx.overlay {
                if let Some(t) = inner.tables.get_mut(&table) {
                    if let Some(old) = t.rows.remove(&id) {
                        t.index_remove(id, &old);
                    }
                    if let Some(row) = staged {
                        t.index_insert(id, &row);
                        t.rows.insert(id, row);
                    }
                }
            }
        }
        for (table, id) in tx.locked {
            if let Some(t) = inner.tables.get_mut(&table) {
                t.locks.remove(&id);
            }
        }
        drop(inner);
        self.lock_released.notify_all();
        Ok(())
    }
}

/// Applies an update's `set`/`unset` to a row image.
fn apply_changes(row: &mut Row, set: &Row, unset: &[String]) {
    for (k, v) in set {
        row.insert(k.clone(), v.clone());
    }
    for k in unset {
        row.remove(k);
    }
}

/// Sorts rows per `order` (default: primary-key order).
pub(crate) fn sort_rows(rows: &mut [(Id, Row)], order: &Option<OrderBy>) {
    if let Some(o) = order {
        if o.field == "id" {
            rows.sort_by_key(|(id, _)| *id);
        } else {
            rows.sort_by(|(_, a), (_, b)| {
                let av = a.get(&o.field).cloned().unwrap_or(Value::Null);
                let bv = b.get(&o.field).cloned().unwrap_or(Value::Null);
                av.cmp(&bv)
            });
        }
        if !o.ascending {
            rows.reverse();
        }
    } else {
        rows.sort_by_key(|(id, _)| *id);
    }
}

impl Engine for RelationalDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        self.run(None, q)
    }

    fn begin(&self) -> Result<TxnId, DbError> {
        let txn = self.txn_gen.next();
        self.inner.lock().txns.insert(
            txn,
            Txn {
                state: TxnState::Active,
                overlay: HashMap::new(),
                locked: Vec::new(),
            },
        );
        Ok(txn)
    }

    fn execute_in(&self, txn: TxnId, q: &Query) -> Result<QueryResult, DbError> {
        self.run(Some(txn), q)
    }

    fn prepare(&self, txn: TxnId) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        let tx = inner.txns.get_mut(&txn).ok_or(DbError::NoSuchTxn(txn.0))?;
        match tx.state {
            TxnState::Active => {
                tx.state = TxnState::Prepared;
                Ok(())
            }
            other => Err(DbError::BadTxnState {
                txn: txn.0,
                expected: "active",
                actual: other.name(),
            }),
        }
    }

    fn commit(&self, txn: TxnId) -> Result<(), DbError> {
        self.finish_txn(txn, true)
    }

    fn rollback(&self, txn: TxnId) -> Result<(), DbError> {
        self.finish_txn(txn, false)
    }

    fn stats(&self) -> EngineStats {
        let inner = self.inner.lock();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for t in inner.tables.values() {
            rows += t.rows.len() as u64;
            for r in t.rows.values() {
                bytes += r
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>() as u64;
            }
        }
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::sync::Arc;

    fn db() -> RelationalDb {
        profiles::postgresql(LatencyModel::off())
    }

    fn row(pairs: &[(&str, Value)]) -> Row {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    fn insert(db: &RelationalDb, table: &str, id: u64, r: Row) -> QueryResult {
        db.execute(&Query::Insert {
            table: table.into(),
            id: Id(id),
            row: r,
        })
        .unwrap()
    }

    #[test]
    fn insert_select_roundtrip() {
        let db = db();
        db.execute(&Query::CreateTable {
            table: "users".into(),
        })
        .unwrap();
        insert(&db, "users", 1, row(&[("name", "alice".into())]));
        let rows = db
            .execute(&Query::Select {
                table: "users".into(),
                filter: Filter::ById(Id(1)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.get("name"), Some(&Value::from("alice")));
    }

    #[test]
    fn id_after_with_limit_pages_the_table_in_order() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        for id in 1..=7 {
            insert(&db, "t", id, row(&[("n", (id as i64).into())]));
        }
        let page = |after: u64, limit: usize| -> Vec<Id> {
            db.execute(&Query::Select {
                table: "t".into(),
                filter: Filter::IdAfter(Id(after)),
                order: Some(OrderBy {
                    field: "id".into(),
                    ascending: true,
                }),
                limit: Some(limit),
            })
            .unwrap()
            .into_rows()
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
        };
        assert_eq!(page(0, 3), vec![Id(1), Id(2), Id(3)]);
        assert_eq!(page(3, 3), vec![Id(4), Id(5), Id(6)]);
        assert_eq!(page(6, 3), vec![Id(7)], "short final page");
        assert_eq!(page(7, 3), Vec::<Id>::new(), "exhausted");
    }

    #[test]
    fn returning_echoes_written_rows_on_postgres() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        let res = insert(&db, "t", 1, row(&[("a", 1.into())]));
        assert!(matches!(res, QueryResult::Rows(_)));
    }

    #[test]
    fn mysql_returns_only_affected_ids() {
        let db = profiles::mysql(LatencyModel::off());
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        let res = insert(&db, "t", 1, row(&[("a", 1.into())]));
        assert_eq!(res, QueryResult::AffectedIds(vec![Id(1)]));
        let res = db
            .execute(&Query::Update {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                set: row(&[("a", 2.into())]),
                unset: vec![],
            })
            .unwrap();
        assert_eq!(res, QueryResult::AffectedIds(vec![Id(1)]));
    }

    #[test]
    fn duplicate_key_rejected() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, Row::new());
        let err = db
            .execute(&Query::Insert {
                table: "t".into(),
                id: Id(1),
                row: Row::new(),
            })
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
    }

    #[test]
    fn missing_table_is_an_error() {
        let db = db();
        let err = db
            .execute(&Query::Select {
                table: "ghost".into(),
                filter: Filter::All,
                order: None,
                limit: None,
            })
            .unwrap_err();
        assert_eq!(err, DbError::NoSuchTable("ghost".into()));
    }

    #[test]
    fn strict_columns_reject_unknown_fields() {
        let db = db();
        db.define_columns("users", &["name", "email"]);
        insert(&db, "users", 1, row(&[("name", "a".into())]));
        let err = db
            .execute(&Query::Insert {
                table: "users".into(),
                id: Id(2),
                row: row(&[("interests", "x".into())]),
            })
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaViolation(_)));
    }

    #[test]
    fn update_with_filter_changes_all_matches() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        for i in 1..=3 {
            insert(&db, "t", i, row(&[("group", "a".into())]));
        }
        insert(&db, "t", 4, row(&[("group", "b".into())]));
        let res = db
            .execute(&Query::Update {
                table: "t".into(),
                filter: Filter::Eq("group".into(), "a".into()),
                set: row(&[("flag", true.into())]),
                unset: vec![],
            })
            .unwrap();
        assert_eq!(res.affected_ids().len(), 3);
    }

    #[test]
    fn delete_removes_rows_and_returns_them() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, row(&[("a", 1.into())]));
        let res = db
            .execute(&Query::Delete {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
            })
            .unwrap();
        assert_eq!(res.affected_ids(), vec![Id(1)]);
        let count = db
            .execute(&Query::Count {
                table: "t".into(),
                filter: Filter::All,
            })
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn secondary_index_serves_eq_filters() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        for i in 1..=100 {
            insert(&db, "t", i, row(&[("bucket", Value::Int((i % 10) as i64))]));
        }
        db.create_index("t", "bucket");
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::Eq("bucket".into(), Value::Int(3)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 10);
        // Updates must keep the index consistent.
        db.execute(&Query::Update {
            table: "t".into(),
            filter: Filter::ById(Id(3)),
            set: row(&[("bucket", Value::Int(7))]),
            unset: vec![],
        })
        .unwrap();
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::Eq("bucket".into(), Value::Int(3)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn select_order_and_limit() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        for (i, n) in [(1u64, 30i64), (2, 10), (3, 20)] {
            insert(&db, "t", i, row(&[("n", n.into())]));
        }
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::All,
                order: Some(OrderBy {
                    field: "n".into(),
                    ascending: false,
                }),
                limit: Some(2),
            })
            .unwrap()
            .into_rows()
            .unwrap();
        let ns: Vec<i64> = rows.iter().map(|(_, r)| r["n"].as_int().unwrap()).collect();
        assert_eq!(ns, vec![30, 20]);
    }

    #[test]
    fn txn_isolation_until_commit() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        let txn = db.begin().unwrap();
        db.execute_in(
            txn,
            &Query::Insert {
                table: "t".into(),
                id: Id(1),
                row: row(&[("a", 1.into())]),
            },
        )
        .unwrap();
        // Not visible outside the transaction yet.
        let count = db
            .execute(&Query::Count {
                table: "t".into(),
                filter: Filter::All,
            })
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(count, 0);
        // Visible inside.
        let count_in = db
            .execute_in(
                txn,
                &Query::Count {
                    table: "t".into(),
                    filter: Filter::All,
                },
            )
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(count_in, 1);
        db.prepare(txn).unwrap();
        db.commit(txn).unwrap();
        let count = db
            .execute(&Query::Count {
                table: "t".into(),
                filter: Filter::All,
            })
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn rollback_discards_staged_writes_and_releases_locks() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, row(&[("a", 1.into())]));
        let txn = db.begin().unwrap();
        db.execute_in(
            txn,
            &Query::Update {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                set: row(&[("a", 2.into())]),
                unset: vec![],
            },
        )
        .unwrap();
        db.rollback(txn).unwrap();
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0].1["a"], Value::Int(1));
        // Lock must be released: an auto-commit write succeeds immediately.
        db.execute(&Query::Update {
            table: "t".into(),
            filter: Filter::ById(Id(1)),
            set: row(&[("a", 3.into())]),
            unset: vec![],
        })
        .unwrap();
    }

    #[test]
    fn prepared_txn_rejects_further_queries() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        let txn = db.begin().unwrap();
        db.prepare(txn).unwrap();
        let err = db
            .execute_in(
                txn,
                &Query::Insert {
                    table: "t".into(),
                    id: Id(1),
                    row: Row::new(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, DbError::BadTxnState { .. }));
        assert!(db.prepare(txn).is_err(), "double prepare must fail");
        db.commit(txn).unwrap();
        assert!(matches!(db.commit(txn), Err(DbError::NoSuchTxn(_))));
    }

    #[test]
    fn conflicting_txn_write_times_out() {
        let mut raw = db();
        raw.set_lock_timeout(Duration::from_millis(50));
        let db = Arc::new(raw);
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, row(&[("a", 1.into())]));
        let t1 = db.begin().unwrap();
        db.execute_in(
            t1,
            &Query::Update {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                set: row(&[("a", 2.into())]),
                unset: vec![],
            },
        )
        .unwrap();
        let t2 = db.begin().unwrap();
        let err = db
            .execute_in(
                t2,
                &Query::Update {
                    table: "t".into(),
                    filter: Filter::ById(Id(1)),
                    set: row(&[("a", 3.into())]),
                    unset: vec![],
                },
            )
            .unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
    }

    #[test]
    fn waiting_writer_proceeds_after_commit() {
        let db = Arc::new(db());
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, row(&[("a", 1.into())]));
        let t1 = db.begin().unwrap();
        db.execute_in(
            t1,
            &Query::Update {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                set: row(&[("a", 2.into())]),
                unset: vec![],
            },
        )
        .unwrap();
        let db2 = db.clone();
        let h = std::thread::spawn(move || {
            db2.execute(&Query::Update {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                set: row(&[("a", 3.into())]),
                unset: vec![],
            })
        });
        std::thread::sleep(Duration::from_millis(30));
        db.prepare(t1).unwrap();
        db.commit(t1).unwrap();
        h.join().unwrap().unwrap();
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0].1["a"], Value::Int(3));
    }

    #[test]
    fn stats_track_rows_and_ops() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        insert(&db, "t", 1, row(&[("a", 1.into())]));
        let _ = db.execute(&Query::Select {
            table: "t".into(),
            filter: Filter::All,
            order: None,
            limit: None,
        });
        let s = db.stats();
        assert_eq!(s.rows, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn filter_matching_on_array_values() {
        let db = db();
        db.execute(&Query::CreateTable { table: "t".into() })
            .unwrap();
        let tags = synapse_model::varray!["cats", "dogs"];
        insert(&db, "t", 1, row(&[("tags", tags.clone())]));
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::Eq("tags".into(), tags),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
}
