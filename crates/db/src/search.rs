//! Search engine: inverted indexes, analyzers, tf-idf scoring, and terms
//! aggregations, in the style of Elasticsearch.
//!
//! Documents are stored alongside per-field inverted indexes. String fields
//! are tokenized by a configurable [`Analyzer`] (the paper's Sub1b declares
//! `property :name, analyzer: :simple`); [`Query::Search`] scores matching
//! documents with tf-idf and [`Query::Aggregate`] buckets documents by a
//! field's value (Table 1: "aggregations and analytics").

use crate::engine::{Capabilities, Engine, EngineStats};
use crate::error::DbError;
use crate::faults::DbFaults;
use crate::latency::LatencyModel;
use crate::query::{Query, QueryResult, Row};
use crate::relational::sort_rows;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use synapse_model::{Id, Value};

/// Tokenization strategy for an analyzed field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Analyzer {
    /// Lowercase and split on non-alphanumeric characters.
    #[default]
    Simple,
    /// Like [`Analyzer::Simple`], plus English stop-word removal.
    Standard,
    /// The whole value as a single lowercase token.
    Keyword,
}

const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

impl Analyzer {
    /// Tokenizes `text` according to the strategy.
    pub fn tokenize(self, text: &str) -> Vec<String> {
        match self {
            Analyzer::Keyword => vec![text.to_lowercase()],
            Analyzer::Simple => split_alnum(text),
            Analyzer::Standard => split_alnum(text)
                .into_iter()
                .filter(|t| !STOP_WORDS.contains(&t.as_str()))
                .collect(),
        }
    }
}

fn split_alnum(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

#[derive(Debug, Default, Clone)]
struct SearchIndex {
    docs: HashMap<Id, Row>,
    /// Per-field inverted index: field → term → (doc id → term frequency).
    inverted: HashMap<String, HashMap<String, HashMap<Id, u32>>>,
    /// Analyzer overrides by field (default: [`Analyzer::Simple`]).
    analyzers: HashMap<String, Analyzer>,
}

impl SearchIndex {
    fn analyzer_for(&self, field: &str) -> Analyzer {
        self.analyzers.get(field).copied().unwrap_or_default()
    }

    fn index_doc(&mut self, id: Id, doc: &Row) {
        for (field, value) in doc {
            let texts: Vec<&str> = match value {
                Value::Str(s) => vec![s.as_str()],
                Value::Array(items) => items.iter().filter_map(Value::as_str).collect(),
                _ => continue,
            };
            let analyzer = self.analyzer_for(field);
            let per_field = self.inverted.entry(field.clone()).or_default();
            for text in texts {
                for term in analyzer.tokenize(text) {
                    *per_field.entry(term).or_default().entry(id).or_insert(0) += 1;
                }
            }
        }
    }

    fn unindex_doc(&mut self, id: Id) {
        for per_field in self.inverted.values_mut() {
            per_field.retain(|_, postings| {
                postings.remove(&id);
                !postings.is_empty()
            });
        }
    }

    /// Scores docs for `text` on `field` with tf-idf.
    fn search(&self, field: &str, text: &str, limit: usize) -> Vec<(Id, f64)> {
        let analyzer = self.analyzer_for(field);
        let terms = analyzer.tokenize(text);
        let n_docs = self.docs.len().max(1) as f64;
        let mut scores: HashMap<Id, f64> = HashMap::new();
        if let Some(per_field) = self.inverted.get(field) {
            for term in &terms {
                if let Some(postings) = per_field.get(term) {
                    let idf = (n_docs / postings.len() as f64).ln() + 1.0;
                    for (id, tf) in postings {
                        *scores.entry(*id).or_default() += (*tf as f64).sqrt() * idf;
                    }
                }
            }
        }
        let mut hits: Vec<(Id, f64)> = scores.into_iter().collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(limit);
        hits
    }

    /// Terms aggregation over a stored field.
    fn aggregate(&self, field: &str) -> Vec<(Value, u64)> {
        let mut buckets: BTreeMap<Value, u64> = BTreeMap::new();
        for doc in self.docs.values() {
            match doc.get(field) {
                Some(Value::Array(items)) => {
                    for item in items {
                        *buckets.entry(item.clone()).or_default() += 1;
                    }
                }
                Some(v) if !v.is_null() => {
                    *buckets.entry(v.clone()).or_default() += 1;
                }
                _ => {}
            }
        }
        let mut out: Vec<(Value, u64)> = buckets.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// The search engine. See the module docs.
pub struct SearchDb {
    caps: Capabilities,
    latency: LatencyModel,
    indices: Mutex<HashMap<String, SearchIndex>>,
    /// Snapshot captured by [`SearchDb::inject_refresh_lag`]; reads are
    /// answered from it while the fault panel's refresh-lag window is
    /// open, modelling the search-engine refresh interval — documents
    /// land in the live index but stay invisible to queries until the
    /// next refresh.
    stale: Mutex<Option<HashMap<String, SearchIndex>>>,
    faults: DbFaults,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl SearchDb {
    /// Creates an engine with the given vendor capabilities and latency.
    pub fn new(caps: Capabilities, latency: LatencyModel) -> Self {
        SearchDb {
            caps,
            latency,
            indices: Mutex::new(HashMap::new()),
            stale: Mutex::new(None),
            faults: DbFaults::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The engine's fault panel (shared state with every clone).
    pub fn faults(&self) -> DbFaults {
        self.faults.clone()
    }

    /// Arms refresh lag: captures the current indices as the visible
    /// snapshot, then answers the next `reads` read queries from it while
    /// writes keep landing in the live index. When the countdown expires
    /// the engine "refreshes" — the snapshot is dropped and reads see the
    /// live index again. Countdown-based like the rest of the fault
    /// plane, so a seeded schedule yields identical staleness every run.
    pub fn inject_refresh_lag(&self, reads: u64) {
        let snapshot = self.indices.lock().clone();
        *self.stale.lock() = Some(snapshot);
        self.faults.inject_refresh_lag(reads);
    }

    /// Answers a read query against `indices` — either the live map or
    /// the refresh-lag snapshot.
    fn read_query(
        indices: &HashMap<String, SearchIndex>,
        q: &Query,
    ) -> Result<QueryResult, DbError> {
        match q {
            Query::Select {
                table,
                filter,
                order,
                limit,
            } => {
                let index = match indices.get(table) {
                    Some(i) => i,
                    None => return Ok(QueryResult::Rows(Vec::new())),
                };
                let mut rows: Vec<(Id, Row)> = index
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, doc)| (*id, doc.clone()))
                    .collect();
                sort_rows(&mut rows, order);
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                Ok(QueryResult::Rows(rows))
            }
            Query::Count { table, filter } => {
                let n = indices
                    .get(table)
                    .map(|i| {
                        i.docs
                            .iter()
                            .filter(|(id, doc)| filter.matches(**id, doc))
                            .count()
                    })
                    .unwrap_or(0);
                Ok(QueryResult::Count(n as u64))
            }
            Query::Search {
                table,
                field,
                text,
                limit,
            } => {
                let hits = indices
                    .get(table)
                    .map(|i| i.search(field, text, *limit))
                    .unwrap_or_default();
                Ok(QueryResult::SearchHits(hits))
            }
            Query::Aggregate { table, field } => {
                let buckets = indices
                    .get(table)
                    .map(|i| i.aggregate(field))
                    .unwrap_or_default();
                Ok(QueryResult::Buckets(buckets))
            }
            other => unreachable!("read_query only handles reads, got {other:?}"),
        }
    }

    /// Declares the analyzer for `table.field` (Sub1b's
    /// `property :name, analyzer: :simple`).
    pub fn set_analyzer(&self, table: &str, field: &str, analyzer: Analyzer) {
        let mut indices = self.indices.lock();
        indices
            .entry(table.to_owned())
            .or_default()
            .analyzers
            .insert(field.to_owned(), analyzer);
    }
}

impl Engine for SearchDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        if matches!(
            q,
            Query::Select { .. }
                | Query::Count { .. }
                | Query::Search { .. }
                | Query::Aggregate { .. }
        ) {
            if self.faults.gate_read() {
                if let Some(snapshot) = self.stale.lock().as_ref() {
                    return Self::read_query(snapshot, q);
                }
            } else {
                // Refresh-lag window closed: the engine has "refreshed",
                // so drop the snapshot and serve the live index.
                self.stale.lock().take();
            }
            return Self::read_query(&self.indices.lock(), q);
        }
        let mut indices = self.indices.lock();
        match q {
            Query::CreateTable { table } => {
                indices.entry(table.clone()).or_default();
                Ok(QueryResult::Unit)
            }
            Query::DropTable { table } => {
                indices.remove(table);
                Ok(QueryResult::Unit)
            }
            Query::Insert { table, id, row } => {
                let index = indices.entry(table.clone()).or_default();
                if index.docs.contains_key(id) {
                    return Err(DbError::DuplicateKey {
                        table: table.clone(),
                        key: id.to_string(),
                    });
                }
                index.docs.insert(*id, row.clone());
                index.index_doc(*id, row);
                Ok(QueryResult::Rows(vec![(*id, row.clone())]))
            }
            Query::Update {
                table,
                filter,
                set,
                unset,
            } => {
                let index = indices.entry(table.clone()).or_default();
                let ids: Vec<Id> = index
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, _)| *id)
                    .collect();
                let mut written = Vec::new();
                for id in ids {
                    index.unindex_doc(id);
                    let doc = index.docs.get_mut(&id).expect("id just matched");
                    for (k, v) in set {
                        doc.insert(k.clone(), v.clone());
                    }
                    for k in unset {
                        doc.remove(k);
                    }
                    let doc = doc.clone();
                    index.index_doc(id, &doc);
                    written.push((id, doc));
                }
                written.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(written))
            }
            Query::Delete { table, filter } => {
                let index = indices.entry(table.clone()).or_default();
                let ids: Vec<Id> = index
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, _)| *id)
                    .collect();
                let mut removed = Vec::new();
                for id in ids {
                    index.unindex_doc(id);
                    if let Some(doc) = index.docs.remove(&id) {
                        removed.push((id, doc));
                    }
                }
                removed.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(removed))
            }
            Query::Select { .. }
            | Query::Count { .. }
            | Query::Search { .. }
            | Query::Aggregate { .. } => {
                unreachable!("read queries are dispatched through read_query above")
            }
            Query::Batch(_) => Err(DbError::Unsupported("batches on search engine")),
            Query::AddEdge { .. } | Query::RemoveEdge { .. } | Query::Traverse { .. } => {
                Err(DbError::Unsupported("graph queries on search engine"))
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let indices = self.indices.lock();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for i in indices.values() {
            rows += i.docs.len() as u64;
            for d in i.docs.values() {
                bytes += d
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>() as u64;
            }
        }
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::query::Filter;
    use synapse_model::varray;

    fn db() -> SearchDb {
        profiles::elasticsearch(LatencyModel::off())
    }

    fn put(db: &SearchDb, id: u64, field: &str, text: &str) {
        let mut row = Row::new();
        row.insert(field.to_owned(), Value::from(text));
        db.execute(&Query::Insert {
            table: "posts".into(),
            id: Id(id),
            row,
        })
        .unwrap();
    }

    fn search(db: &SearchDb, text: &str) -> Vec<Id> {
        match db
            .execute(&Query::Search {
                table: "posts".into(),
                field: "body".into(),
                text: text.into(),
                limit: 10,
            })
            .unwrap()
        {
            QueryResult::SearchHits(hits) => hits.into_iter().map(|(id, _)| id).collect(),
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn analyzers_tokenize_differently() {
        assert_eq!(
            Analyzer::Simple.tokenize("The Quick, brown FOX!"),
            vec!["the", "quick", "brown", "fox"]
        );
        assert_eq!(
            Analyzer::Standard.tokenize("The Quick, brown FOX!"),
            vec!["quick", "brown", "fox"]
        );
        assert_eq!(Analyzer::Keyword.tokenize("The Quick"), vec!["the quick"]);
    }

    #[test]
    fn search_finds_and_ranks_matches() {
        let db = db();
        put(&db, 1, "body", "cats are great, I love cats");
        put(&db, 2, "body", "dogs are fine");
        put(&db, 3, "body", "one cats mention");
        let hits = search(&db, "cats");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], Id(1), "higher tf ranks first");
    }

    #[test]
    fn updates_reindex_documents() {
        let db = db();
        put(&db, 1, "body", "cats");
        let mut set = Row::new();
        set.insert("body".to_owned(), Value::from("dogs"));
        db.execute(&Query::Update {
            table: "posts".into(),
            filter: Filter::ById(Id(1)),
            set,
            unset: vec![],
        })
        .unwrap();
        assert!(search(&db, "cats").is_empty());
        assert_eq!(search(&db, "dogs"), vec![Id(1)]);
    }

    #[test]
    fn deletes_remove_postings() {
        let db = db();
        put(&db, 1, "body", "cats");
        db.execute(&Query::Delete {
            table: "posts".into(),
            filter: Filter::ById(Id(1)),
        })
        .unwrap();
        assert!(search(&db, "cats").is_empty());
        assert_eq!(db.stats().rows, 0);
    }

    #[test]
    fn array_fields_index_every_element() {
        let db = db();
        let mut row = Row::new();
        row.insert("body".to_owned(), varray!["cats rule", "dogs drool"]);
        db.execute(&Query::Insert {
            table: "posts".into(),
            id: Id(1),
            row,
        })
        .unwrap();
        assert_eq!(search(&db, "cats"), vec![Id(1)]);
        assert_eq!(search(&db, "dogs"), vec![Id(1)]);
    }

    #[test]
    fn keyword_analyzer_matches_whole_value_only() {
        let db = db();
        db.set_analyzer("posts", "body", Analyzer::Keyword);
        put(&db, 1, "body", "New York");
        assert!(search(&db, "new").is_empty());
        assert_eq!(search(&db, "New York"), vec![Id(1)]);
    }

    #[test]
    fn terms_aggregation_counts_buckets() {
        let db = db();
        for (id, interests) in [
            (1u64, varray!["cats", "dogs"]),
            (2, varray!["cats"]),
            (3, varray!["fish"]),
        ] {
            let mut row = Row::new();
            row.insert("interests".to_owned(), interests);
            db.execute(&Query::Insert {
                table: "posts".into(),
                id: Id(id),
                row,
            })
            .unwrap();
        }
        match db
            .execute(&Query::Aggregate {
                table: "posts".into(),
                field: "interests".into(),
            })
            .unwrap()
        {
            QueryResult::Buckets(b) => {
                assert_eq!(b[0], (Value::from("cats"), 2));
                assert_eq!(b.len(), 3);
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn search_on_missing_index_is_empty() {
        let db = db();
        assert!(search(&db, "anything").is_empty());
    }

    #[test]
    fn refresh_lag_serves_stale_reads_then_refreshes() {
        let db = db();
        put(&db, 1, "body", "cats");
        // Freeze visibility, then keep writing into the live index.
        db.inject_refresh_lag(3);
        put(&db, 2, "body", "cats and more cats");
        // Three reads land inside the lag window: the new document is
        // already written but invisible, exactly the search-engine
        // refresh-interval failure mode.
        for _ in 0..3 {
            assert_eq!(search(&db, "cats"), vec![Id(1)]);
        }
        // The window expired — the engine "refreshed" and both docs show.
        assert_eq!(search(&db, "cats").len(), 2);
        assert_eq!(db.faults().stats().stale_reads_served, 3);
        assert!(!db.faults().is_armed());
    }

    #[test]
    fn refresh_lag_schedule_is_deterministic() {
        // Same write/read schedule twice: identical staleness both runs.
        let observed: Vec<Vec<usize>> = (0..2)
            .map(|_| {
                let db = db();
                put(&db, 1, "body", "fish");
                db.inject_refresh_lag(2);
                put(&db, 2, "body", "fish too");
                (0..4).map(|_| search(&db, "fish").len()).collect()
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert_eq!(observed[0], vec![1, 1, 2, 2]);
    }

    #[test]
    fn stale_snapshot_serves_counts_and_aggregates_too() {
        let db = db();
        put(&db, 1, "interests", "cats");
        db.inject_refresh_lag(1);
        put(&db, 2, "interests", "cats");
        match db
            .execute(&Query::Count {
                table: "posts".into(),
                filter: Filter::All,
            })
            .unwrap()
        {
            QueryResult::Count(n) => assert_eq!(n, 1, "count sees the snapshot"),
            other => panic!("unexpected result {other:?}"),
        }
        match db
            .execute(&Query::Count {
                table: "posts".into(),
                filter: Filter::All,
            })
            .unwrap()
        {
            QueryResult::Count(n) => assert_eq!(n, 2, "window closed after one read"),
            other => panic!("unexpected result {other:?}"),
        }
    }
}
