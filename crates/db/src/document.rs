//! Document engine: schemaless collections of nested documents.
//!
//! Stands in for MongoDB, TokuMX, and RethinkDB. Unlike the relational
//! engine it accepts any attribute on any document (including arrays and
//! embedded maps — the MongoDB features Example 3 of the paper leans on),
//! offers only single-document atomicity, and echoes written documents back
//! (the findAndModify-style behaviour §4.1 relies upon).

use crate::engine::{Capabilities, Engine, EngineStats};
use crate::error::DbError;
use crate::faults::DbFaults;
use crate::latency::LatencyModel;
use crate::query::{Query, QueryResult, Row};
use crate::relational::sort_rows;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use synapse_model::Id;

#[derive(Debug, Default)]
struct Collection {
    docs: HashMap<Id, Row>,
}

/// The document engine. See the module docs.
pub struct DocumentDb {
    caps: Capabilities,
    latency: LatencyModel,
    collections: Mutex<HashMap<String, Collection>>,
    /// Fault panel: a write-concern downgrade acks inserts/updates
    /// without applying them (the MongoDB w=0 fire-and-forget posture,
    /// where a success reply only means "the server took the message").
    faults: DbFaults,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl DocumentDb {
    /// Creates an engine with the given vendor capabilities and latency.
    pub fn new(caps: Capabilities, latency: LatencyModel) -> Self {
        DocumentDb {
            caps,
            latency,
            collections: Mutex::new(HashMap::new()),
            faults: DbFaults::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The engine's fault panel (shared state with every clone).
    pub fn faults(&self) -> DbFaults {
        self.faults.clone()
    }
}

impl Engine for DocumentDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        let mut colls = self.collections.lock();
        match q {
            Query::CreateTable { table } => {
                colls.entry(table.clone()).or_default();
                Ok(QueryResult::Unit)
            }
            Query::DropTable { table } => {
                colls.remove(table);
                Ok(QueryResult::Unit)
            }
            Query::Insert { table, id, row } => {
                // Write-concern downgrade: ack the insert without
                // applying it — with w=0 the reply carries no duplicate
                // check either, the client just hears "ok".
                if self.faults.gate_write_concern() {
                    return Ok(QueryResult::Rows(vec![(*id, row.clone())]));
                }
                // Document stores auto-create collections on first write.
                let coll = colls.entry(table.clone()).or_default();
                if coll.docs.contains_key(id) {
                    return Err(DbError::DuplicateKey {
                        table: table.clone(),
                        key: id.to_string(),
                    });
                }
                coll.docs.insert(*id, row.clone());
                Ok(QueryResult::Rows(vec![(*id, row.clone())]))
            }
            Query::Update {
                table,
                filter,
                set,
                unset,
            } => {
                let coll = colls.entry(table.clone()).or_default();
                // Write-concern downgrade: echo what the update *would*
                // have written without persisting any of it.
                let downgraded = self.faults.gate_write_concern();
                let mut written = Vec::new();
                let ids: Vec<Id> = coll
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, _)| *id)
                    .collect();
                for id in ids {
                    let doc = coll.docs.get_mut(&id).expect("id just matched");
                    let mut image = doc.clone();
                    for (k, v) in set {
                        image.insert(k.clone(), v.clone());
                    }
                    for k in unset {
                        image.remove(k);
                    }
                    if !downgraded {
                        *doc = image.clone();
                    }
                    written.push((id, image));
                }
                written.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(written))
            }
            Query::Delete { table, filter } => {
                let coll = colls.entry(table.clone()).or_default();
                let ids: Vec<Id> = coll
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, _)| *id)
                    .collect();
                let mut removed = Vec::new();
                for id in ids {
                    if let Some(doc) = coll.docs.remove(&id) {
                        removed.push((id, doc));
                    }
                }
                removed.sort_by_key(|(id, _)| *id);
                Ok(QueryResult::Rows(removed))
            }
            Query::Select {
                table,
                filter,
                order,
                limit,
            } => {
                let coll = match colls.get(table) {
                    Some(c) => c,
                    // Reading a collection that never existed returns empty,
                    // as MongoDB does.
                    None => return Ok(QueryResult::Rows(Vec::new())),
                };
                let mut rows: Vec<(Id, Row)> = coll
                    .docs
                    .iter()
                    .filter(|(id, doc)| filter.matches(**id, doc))
                    .map(|(id, doc)| (*id, doc.clone()))
                    .collect();
                sort_rows(&mut rows, order);
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                Ok(QueryResult::Rows(rows))
            }
            Query::Count { table, filter } => {
                let n = colls
                    .get(table)
                    .map(|c| {
                        c.docs
                            .iter()
                            .filter(|(id, doc)| filter.matches(**id, doc))
                            .count()
                    })
                    .unwrap_or(0);
                Ok(QueryResult::Count(n as u64))
            }
            Query::Batch(_) => Err(DbError::Unsupported("batches on document engine")),
            Query::Search { .. } | Query::Aggregate { .. } => {
                Err(DbError::Unsupported("full-text search on document engine"))
            }
            Query::AddEdge { .. } | Query::RemoveEdge { .. } | Query::Traverse { .. } => {
                Err(DbError::Unsupported("graph queries on document engine"))
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let colls = self.collections.lock();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for c in colls.values() {
            rows += c.docs.len() as u64;
            for d in c.docs.values() {
                bytes += d
                    .iter()
                    .map(|(k, v)| k.len() + v.approx_size())
                    .sum::<usize>() as u64;
            }
        }
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::query::Filter;
    use synapse_model::{varray, Value};

    fn db() -> DocumentDb {
        profiles::mongodb(LatencyModel::off())
    }

    fn doc(pairs: &[(&str, Value)]) -> Row {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn write_concern_downgrade_acks_without_applying() {
        let db = db();
        db.execute(&Query::Insert {
            table: "u".into(),
            id: Id(1),
            row: doc(&[("a", 1.into())]),
        })
        .unwrap();
        db.faults().inject_write_concern_downgrade(2);
        // Downgraded insert: success reply, nothing stored.
        let res = db
            .execute(&Query::Insert {
                table: "u".into(),
                id: Id(2),
                row: doc(&[("a", 2.into())]),
            })
            .unwrap();
        assert!(matches!(res, QueryResult::Rows(ref rows) if rows.len() == 1));
        // Downgraded update: echoes the would-be image, persists nothing.
        let res = db
            .execute(&Query::Update {
                table: "u".into(),
                filter: Filter::ById(Id(1)),
                set: doc(&[("a", 99.into())]),
                unset: vec![],
            })
            .unwrap();
        match res {
            QueryResult::Rows(rows) => assert_eq!(rows[0].1["a"], Value::Int(99)),
            other => panic!("unexpected {other:?}"),
        }
        // The window expired: reads see only the pre-downgrade state.
        let n = db
            .execute(&Query::Count {
                table: "u".into(),
                filter: Filter::All,
            })
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(n, 1, "downgraded insert was never applied");
        let rows = db
            .execute(&Query::Select {
                table: "u".into(),
                filter: Filter::ById(Id(1)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0].1["a"], Value::Int(1), "downgraded update was lost");
        assert_eq!(db.faults().stats().writes_ack_downgraded, 2);
        assert!(!db.faults().is_armed());
    }

    #[test]
    fn write_concern_downgrade_schedule_is_deterministic() {
        // Same write schedule twice: identical surviving documents.
        let observed: Vec<u64> = (0..2)
            .map(|_| {
                let db = db();
                db.faults().inject_write_concern_downgrade(2);
                for i in 0..5u64 {
                    db.execute(&Query::Insert {
                        table: "u".into(),
                        id: Id(i + 1),
                        row: doc(&[("v", Value::Int(i as i64))]),
                    })
                    .unwrap();
                }
                db.execute(&Query::Count {
                    table: "u".into(),
                    filter: Filter::All,
                })
                .unwrap()
                .into_count()
                .unwrap()
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert_eq!(observed[0], 3, "exactly the first two inserts were dropped");
    }

    #[test]
    fn collections_auto_create_on_insert() {
        let db = db();
        let res = db
            .execute(&Query::Insert {
                table: "users".into(),
                id: Id(1),
                row: doc(&[("name", "alice".into())]),
            })
            .unwrap();
        assert!(matches!(res, QueryResult::Rows(_)));
    }

    #[test]
    fn schemaless_documents_accept_heterogeneous_shapes() {
        let db = db();
        db.execute(&Query::Insert {
            table: "u".into(),
            id: Id(1),
            row: doc(&[("interests", varray!["cats", "dogs"])]),
        })
        .unwrap();
        db.execute(&Query::Insert {
            table: "u".into(),
            id: Id(2),
            row: doc(&[("totally_different", 1.into())]),
        })
        .unwrap();
        let n = db
            .execute(&Query::Count {
                table: "u".into(),
                filter: Filter::All,
            })
            .unwrap()
            .into_count()
            .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn update_sets_and_unsets_fields() {
        let db = db();
        db.execute(&Query::Insert {
            table: "u".into(),
            id: Id(1),
            row: doc(&[("a", 1.into()), ("b", 2.into())]),
        })
        .unwrap();
        let res = db
            .execute(&Query::Update {
                table: "u".into(),
                filter: Filter::ById(Id(1)),
                set: doc(&[("a", 10.into())]),
                unset: vec!["b".into()],
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(res[0].1.get("a"), Some(&Value::Int(10)));
        assert!(!res[0].1.contains_key("b"));
    }

    #[test]
    fn select_on_unknown_collection_is_empty() {
        let db = db();
        let rows = db
            .execute(&Query::Select {
                table: "nope".into(),
                filter: Filter::All,
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn delete_returns_removed_documents() {
        let db = db();
        for i in 1..=3u64 {
            db.execute(&Query::Insert {
                table: "u".into(),
                id: Id(i),
                row: doc(&[("g", Value::Int((i % 2) as i64))]),
            })
            .unwrap();
        }
        let removed = db
            .execute(&Query::Delete {
                table: "u".into(),
                filter: Filter::Eq("g".into(), Value::Int(1)),
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(db.stats().rows, 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let db = db();
        db.execute(&Query::Insert {
            table: "u".into(),
            id: Id(1),
            row: Row::new(),
        })
        .unwrap();
        assert!(matches!(
            db.execute(&Query::Insert {
                table: "u".into(),
                id: Id(1),
                row: Row::new(),
            }),
            Err(DbError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn transactions_are_unsupported() {
        let db = db();
        assert!(matches!(db.begin(), Err(DbError::Unsupported(_))));
    }
}
