//! Fault switch for database engines: transient write errors and latency
//! spikes.
//!
//! A [`DbFaults`] handle is a cloneable arming panel. The write path calls
//! [`DbFaults::gate_write`] before touching the engine; while faults are
//! armed the gate either fails the write with [`DbError::Unavailable`] (a
//! *transient* error — the engine recovers by itself, unlike a kill) or
//! charges an extra latency spike the same way the calibrated
//! [`LatencyModel`](crate::LatencyModel) charges its per-operation cost.
//!
//! Arming is explicit and countdown-based (the next `n` writes), never
//! probabilistic, so a fault schedule driven by a seeded plan yields
//! identical injection counts on every run.

use crate::error::DbError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters of faults actually injected through one [`DbFaults`] handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbFaultStats {
    /// Writes failed with [`DbError::Unavailable`].
    pub write_errors_injected: u64,
    /// Writes delayed by an injected latency spike.
    pub latency_spikes_charged: u64,
    /// Reads answered from a stale snapshot (refresh lag).
    pub stale_reads_served: u64,
    /// Writes stalled behind an injected compaction (columnar engines).
    pub compaction_stalls_charged: u64,
    /// Traversals failed with an injected timeout (graph engines).
    pub traversal_timeouts_injected: u64,
    /// Writes acked without being applied — the write-concern downgrade
    /// failure class of document stores (w=0 fire-and-forget).
    pub writes_ack_downgraded: u64,
}

#[derive(Default)]
struct FaultsInner {
    /// Fail the next `n` writes with a transient error.
    write_fail_next: AtomicU64,
    /// Delay the next `n` writes by `spike_micros` each.
    spike_next: AtomicU64,
    spike_micros: AtomicU64,
    /// Serve the next `n` reads from a stale snapshot (refresh lag): the
    /// search-engine failure class where documents are written to the
    /// index but invisible to queries until the next refresh cycle.
    refresh_lag_next: AtomicU64,
    /// Stall the next `n` writes behind a simulated compaction, each for
    /// `compaction_stall_micros` (the columnar-engine failure class where
    /// a background compaction saturates the disk and foreground writes
    /// queue behind it).
    compaction_stall_next: AtomicU64,
    compaction_stall_micros: AtomicU64,
    /// Fail the next `n` traversals with a timeout (the graph-engine
    /// failure class where a deep walk blows its time budget).
    traversal_fail_next: AtomicU64,
    /// Downgrade the write concern on the next `n` writes: ack without
    /// applying (the document-store w=0 failure class).
    write_concern_next: AtomicU64,
    write_errors_injected: AtomicU64,
    latency_spikes_charged: AtomicU64,
    stale_reads_served: AtomicU64,
    compaction_stalls_charged: AtomicU64,
    traversal_timeouts_injected: AtomicU64,
    writes_ack_downgraded: AtomicU64,
}

/// Cloneable handle arming deterministic db-level faults; clones share
/// state.
#[derive(Clone, Default)]
pub struct DbFaults {
    inner: Arc<FaultsInner>,
}

impl DbFaults {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms transient failures for the next `n` writes.
    pub fn inject_write_errors(&self, n: u64) {
        self.inner.write_fail_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms latency spikes: the next `ops` writes each take an extra
    /// `each`. Re-arming replaces the spike duration.
    pub fn inject_latency_spikes(&self, ops: u64, each: Duration) {
        self.inner
            .spike_micros
            .store(each.as_micros() as u64, Ordering::SeqCst);
        self.inner.spike_next.fetch_add(ops, Ordering::SeqCst);
    }

    /// Arms refresh lag: the next `reads` read queries are answered from
    /// whatever stale snapshot the engine captured at arming time (an
    /// engine that never captured one treats the gate as a no-op). Like
    /// every other fault here the window is countdown-based — measured in
    /// reads, not wall time — so seeded runs see identical staleness.
    pub fn inject_refresh_lag(&self, reads: u64) {
        self.inner
            .refresh_lag_next
            .fetch_add(reads, Ordering::SeqCst);
    }

    /// Whether the refresh-lag window is still open.
    pub fn is_refresh_lagging(&self) -> bool {
        self.inner.refresh_lag_next.load(Ordering::SeqCst) > 0
    }

    /// Arms compaction stalls: the next `writes` writes each queue behind
    /// a simulated compaction for `each`. Re-arming replaces the stall
    /// duration.
    pub fn inject_compaction_stalls(&self, writes: u64, each: Duration) {
        self.inner
            .compaction_stall_micros
            .store(each.as_micros() as u64, Ordering::SeqCst);
        self.inner
            .compaction_stall_next
            .fetch_add(writes, Ordering::SeqCst);
    }

    /// Arms traversal timeouts for the next `n` traversals.
    pub fn inject_traversal_timeouts(&self, n: u64) {
        self.inner
            .traversal_fail_next
            .fetch_add(n, Ordering::SeqCst);
    }

    /// Arms a write-concern downgrade: the next `n` writes are acked
    /// without being applied.
    pub fn inject_write_concern_downgrade(&self, n: u64) {
        self.inner.write_concern_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Disarms all pending faults (armed-but-unfired countdowns are
    /// cleared; injection counters are kept).
    pub fn disarm(&self) {
        self.inner.write_fail_next.store(0, Ordering::SeqCst);
        self.inner.spike_next.store(0, Ordering::SeqCst);
        self.inner.refresh_lag_next.store(0, Ordering::SeqCst);
        self.inner.compaction_stall_next.store(0, Ordering::SeqCst);
        self.inner.traversal_fail_next.store(0, Ordering::SeqCst);
        self.inner.write_concern_next.store(0, Ordering::SeqCst);
    }

    /// Whether any fault countdown is still armed.
    pub fn is_armed(&self) -> bool {
        self.inner.write_fail_next.load(Ordering::SeqCst) > 0
            || self.inner.spike_next.load(Ordering::SeqCst) > 0
            || self.inner.refresh_lag_next.load(Ordering::SeqCst) > 0
            || self.inner.compaction_stall_next.load(Ordering::SeqCst) > 0
            || self.inner.traversal_fail_next.load(Ordering::SeqCst) > 0
            || self.inner.write_concern_next.load(Ordering::SeqCst) > 0
    }

    /// Consumes one armed fault, if any: returns the transient error or
    /// charges the latency spike. Called by the ORM write path before the
    /// engine executes.
    pub fn gate_write(&self) -> Result<(), DbError> {
        if consume_one(&self.inner.write_fail_next) {
            self.inner
                .write_errors_injected
                .fetch_add(1, Ordering::SeqCst);
            return Err(DbError::Unavailable);
        }
        if consume_one(&self.inner.spike_next) {
            self.inner
                .latency_spikes_charged
                .fetch_add(1, Ordering::SeqCst);
            let micros = self.inner.spike_micros.load(Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(micros));
        }
        Ok(())
    }

    /// Consumes one armed refresh-lag read, if any: returns whether the
    /// engine should answer this read from its stale snapshot. Called by
    /// snapshot-capable engines on their read path.
    pub fn gate_read(&self) -> bool {
        if consume_one(&self.inner.refresh_lag_next) {
            self.inner.stale_reads_served.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Consumes one armed compaction stall, if any: sleeps for the stall
    /// duration. Called by columnar engines on their write path.
    pub fn gate_compaction(&self) {
        if consume_one(&self.inner.compaction_stall_next) {
            self.inner
                .compaction_stalls_charged
                .fetch_add(1, Ordering::SeqCst);
            let micros = self.inner.compaction_stall_micros.load(Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(micros));
        }
    }

    /// Consumes one armed traversal timeout, if any: returns whether the
    /// traversal should fail. Called by graph engines before walking.
    pub fn gate_traversal(&self) -> bool {
        if consume_one(&self.inner.traversal_fail_next) {
            self.inner
                .traversal_timeouts_injected
                .fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Consumes one armed write-concern downgrade, if any: returns whether
    /// the engine should ack this write without applying it. Called by
    /// document engines on their write path.
    pub fn gate_write_concern(&self) -> bool {
        if consume_one(&self.inner.write_concern_next) {
            self.inner
                .writes_ack_downgraded
                .fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> DbFaultStats {
        DbFaultStats {
            write_errors_injected: self.inner.write_errors_injected.load(Ordering::SeqCst),
            latency_spikes_charged: self.inner.latency_spikes_charged.load(Ordering::SeqCst),
            stale_reads_served: self.inner.stale_reads_served.load(Ordering::SeqCst),
            compaction_stalls_charged: self.inner.compaction_stalls_charged.load(Ordering::SeqCst),
            traversal_timeouts_injected: self
                .inner
                .traversal_timeouts_injected
                .load(Ordering::SeqCst),
            writes_ack_downgraded: self.inner.writes_ack_downgraded.load(Ordering::SeqCst),
        }
    }
}

impl std::fmt::Debug for DbFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbFaults")
            .field("write_fail_next", &self.inner.write_fail_next)
            .field("spike_next", &self.inner.spike_next)
            .finish()
    }
}

/// Atomically decrements `counter` if non-zero; returns whether it did.
fn consume_one(counter: &AtomicU64) -> bool {
    let mut current = counter.load(Ordering::SeqCst);
    while current > 0 {
        match counter.compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn write_errors_count_down_exactly() {
        let faults = DbFaults::new();
        faults.inject_write_errors(2);
        assert_eq!(faults.gate_write(), Err(DbError::Unavailable));
        assert_eq!(faults.gate_write(), Err(DbError::Unavailable));
        assert_eq!(faults.gate_write(), Ok(()));
        assert_eq!(faults.stats().write_errors_injected, 2);
    }

    #[test]
    fn latency_spikes_charge_and_expire() {
        let faults = DbFaults::new();
        faults.inject_latency_spikes(3, Duration::from_micros(500));
        let start = Instant::now();
        for _ in 0..5 {
            faults.gate_write().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_micros(1_500));
        assert_eq!(faults.stats().latency_spikes_charged, 3);
        assert!(!faults.is_armed());
    }

    #[test]
    fn clones_share_arming_state() {
        let faults = DbFaults::new();
        let clone = faults.clone();
        faults.inject_write_errors(1);
        assert!(clone.gate_write().is_err());
        assert!(faults.gate_write().is_ok());
    }

    #[test]
    fn disarm_clears_pending_faults() {
        let faults = DbFaults::new();
        faults.inject_write_errors(10);
        faults.inject_latency_spikes(10, Duration::from_millis(1));
        faults.inject_refresh_lag(10);
        faults.inject_compaction_stalls(10, Duration::from_millis(1));
        faults.inject_traversal_timeouts(10);
        faults.inject_write_concern_downgrade(10);
        faults.disarm();
        assert!(!faults.is_armed());
        assert_eq!(faults.gate_write(), Ok(()));
        assert!(!faults.gate_read());
        assert!(!faults.gate_traversal());
        assert!(!faults.gate_write_concern());
    }

    #[test]
    fn engine_profile_gates_count_down_exactly() {
        let faults = DbFaults::new();
        faults.inject_compaction_stalls(2, Duration::from_micros(300));
        let start = Instant::now();
        for _ in 0..4 {
            faults.gate_compaction();
        }
        assert!(start.elapsed() >= Duration::from_micros(600));
        faults.inject_traversal_timeouts(1);
        assert!(faults.gate_traversal());
        assert!(!faults.gate_traversal());
        faults.inject_write_concern_downgrade(2);
        assert!(faults.gate_write_concern());
        assert!(faults.gate_write_concern());
        assert!(!faults.gate_write_concern());
        let stats = faults.stats();
        assert_eq!(stats.compaction_stalls_charged, 2);
        assert_eq!(stats.traversal_timeouts_injected, 1);
        assert_eq!(stats.writes_ack_downgraded, 2);
        assert!(!faults.is_armed());
    }

    #[test]
    fn refresh_lag_counts_down_exactly() {
        let faults = DbFaults::new();
        faults.inject_refresh_lag(2);
        assert!(faults.is_refresh_lagging());
        assert!(faults.gate_read());
        assert!(faults.gate_read());
        assert!(!faults.gate_read(), "window is measured in reads");
        assert!(!faults.is_refresh_lagging());
        assert_eq!(faults.stats().stale_reads_served, 2);
    }
}
