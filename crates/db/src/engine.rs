//! The engine (driver) trait and its capability descriptors.

use crate::error::DbError;
use crate::query::{Query, QueryResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Family of a database engine (Table 1 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// SQL-style relational store.
    Relational,
    /// Schemaless document store.
    Document,
    /// Write-optimized wide-column / LSM store.
    Columnar,
    /// Inverted-index search store.
    Search,
    /// Property-graph store.
    Graph,
    /// No storage at all (ephemerals/observers).
    Ephemeral,
}

impl EngineKind {
    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Relational => "relational",
            EngineKind::Document => "document",
            EngineKind::Columnar => "columnar",
            EngineKind::Search => "search",
            EngineKind::Graph => "graph",
            EngineKind::Ephemeral => "ephemeral",
        }
    }
}

/// Vendor-level capabilities that Synapse's interceptor must know about
/// (§4.1–4.2 of the paper).
#[derive(Debug, Clone)]
pub struct Capabilities {
    /// Engine family.
    pub kind: EngineKind,
    /// Vendor name, e.g. `postgresql`.
    pub vendor: &'static str,
    /// Whether write queries can return the written rows (`RETURNING *`).
    /// When `false` (MySQL, Cassandra) the interceptor performs an
    /// additional read query to identify written data.
    pub returning: bool,
    /// Whether multi-statement ACID transactions (and two-phase commit
    /// hooks) are available.
    pub transactions: bool,
    /// Whether atomic logged batches are available (Cassandra).
    pub atomic_batch: bool,
    /// Whether collections are schemaless.
    pub schemaless: bool,
}

/// Handle to an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId(pub u64);

/// Cheap monotonically increasing transaction id allocator shared by the
/// transactional engines.
#[derive(Debug, Default)]
pub(crate) struct TxnIdGen(AtomicU64);

impl TxnIdGen {
    pub(crate) fn next(&self) -> TxnId {
        TxnId(self.0.fetch_add(1, Ordering::Relaxed) + 1)
    }
}

/// Operation counters exposed by every engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Read queries executed.
    pub reads: u64,
    /// Write queries executed.
    pub writes: u64,
    /// Rows currently stored.
    pub rows: u64,
    /// Approximate bytes currently stored.
    pub bytes: u64,
}

/// A database engine at the driver level — the layer Synapse's query
/// interceptor wraps (Fig. 6(a)).
///
/// Engines are internally synchronized; all methods take `&self` and may be
/// called from many application-server threads concurrently.
pub trait Engine: Send + Sync {
    /// Static description of what this engine/vendor can do.
    fn capabilities(&self) -> &Capabilities;

    /// Executes a query in auto-commit mode.
    fn execute(&self, q: &Query) -> Result<QueryResult, DbError>;

    /// Opens a transaction. Default: unsupported.
    fn begin(&self) -> Result<TxnId, DbError> {
        Err(DbError::Unsupported("transactions"))
    }

    /// Executes a query inside an open transaction. Default: unsupported.
    fn execute_in(&self, _txn: TxnId, _q: &Query) -> Result<QueryResult, DbError> {
        Err(DbError::Unsupported("transactions"))
    }

    /// Two-phase commit, phase one: make the transaction durable and keep
    /// its locks; after `prepare` returns, `commit` cannot fail. Default:
    /// unsupported.
    fn prepare(&self, _txn: TxnId) -> Result<(), DbError> {
        Err(DbError::Unsupported("transactions"))
    }

    /// Two-phase commit, phase two. Default: unsupported.
    fn commit(&self, _txn: TxnId) -> Result<(), DbError> {
        Err(DbError::Unsupported("transactions"))
    }

    /// Aborts a transaction, releasing its locks. Default: unsupported.
    fn rollback(&self, _txn: TxnId) -> Result<(), DbError> {
        Err(DbError::Unsupported("transactions"))
    }

    /// Current operation counters.
    fn stats(&self) -> EngineStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_generator_is_monotonic() {
        let g = TxnIdGen::default();
        assert_eq!(g.next(), TxnId(1));
        assert_eq!(g.next(), TxnId(2));
    }

    #[test]
    fn engine_kind_names() {
        assert_eq!(EngineKind::Relational.name(), "relational");
        assert_eq!(EngineKind::Ephemeral.name(), "ephemeral");
    }
}
