//! Columnar engine: a write-optimized LSM store in the style of Cassandra.
//!
//! Storage layout is genuinely log-structured: writes land in a memtable of
//! timestamped cells; when the memtable exceeds a threshold it is flushed to
//! an immutable SSTable run; reads merge the memtable and all runs taking
//! the newest timestamp per cell; deletes write tombstones; compaction
//! folds runs together when they accumulate. This gives the engine the two
//! properties the paper uses Cassandra for: cheap writes (Table 1:
//! "write-intensive workloads") and *logged batches* — the atomic
//! multi-write primitive Synapse maps transactions onto for subscribers
//! (§4.2: "logged batched updates with Cassandra").
//!
//! There is no `RETURNING` support: writes report affected ids only, forcing
//! Synapse's interceptor down its read-back path, exactly as with the real
//! Cassandra.

use crate::engine::{Capabilities, Engine, EngineStats};
use crate::error::DbError;
use crate::faults::DbFaults;
use crate::latency::LatencyModel;
use crate::query::{Filter as Query_Filter, Query, QueryResult, Row};
use crate::relational::sort_rows;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use synapse_model::{Id, Value};

/// Memtable cell count that triggers a flush to an SSTable run.
const MEMTABLE_FLUSH_CELLS: usize = 4096;
/// Number of SSTable runs that triggers a compaction.
const COMPACTION_FANIN: usize = 4;

/// One cell: a column value (or tombstone) with its write timestamp.
#[derive(Debug, Clone)]
struct Cell {
    ts: u64,
    /// `None` is a tombstone (deleted cell).
    value: Option<Value>,
}

/// A sorted immutable run, or the mutable memtable: partition id → column →
/// cell.
type Run = BTreeMap<Id, BTreeMap<String, Cell>>;

/// A whole-row tombstone marker column. Row deletes write this with the
/// deletion timestamp; reads drop any cell older than it.
const ROW_TOMBSTONE: &str = "\u{0}row_tombstone";

/// A row-liveness marker written by every insert (as CQL INSERTs do), so a
/// row with no regular columns is still visible until deleted.
const ROW_MARKER: &str = "\u{1}row_marker";

#[derive(Debug, Default)]
struct ColumnFamily {
    memtable: Run,
    memtable_cells: usize,
    sstables: Vec<Run>,
    flushes: u64,
    compactions: u64,
}

impl ColumnFamily {
    fn write_cells(
        &mut self,
        id: Id,
        ts: u64,
        cells: impl IntoIterator<Item = (String, Option<Value>)>,
    ) {
        let row = self.memtable.entry(id).or_default();
        for (col, value) in cells {
            row.insert(col, Cell { ts, value });
            self.memtable_cells += 1;
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable_cells >= MEMTABLE_FLUSH_CELLS {
            let run = std::mem::take(&mut self.memtable);
            self.memtable_cells = 0;
            self.sstables.push(run);
            self.flushes += 1;
            if self.sstables.len() >= COMPACTION_FANIN {
                self.compact();
            }
        }
    }

    /// Merges all runs into one, newest timestamp winning per cell, and
    /// drops data shadowed by row tombstones.
    fn compact(&mut self) {
        let mut merged: Run = BTreeMap::new();
        for run in self.sstables.drain(..) {
            for (id, cols) in run {
                let target = merged.entry(id).or_default();
                for (col, cell) in cols {
                    match target.get(&col) {
                        Some(existing) if existing.ts >= cell.ts => {}
                        _ => {
                            target.insert(col, cell);
                        }
                    }
                }
            }
        }
        // Garbage-collect cells older than their row tombstone.
        for cols in merged.values_mut() {
            if let Some(tomb) = cols.get(ROW_TOMBSTONE).map(|c| c.ts) {
                cols.retain(|name, cell| name == ROW_TOMBSTONE || cell.ts > tomb);
            }
        }
        self.sstables.push(merged);
        self.compactions += 1;
    }

    /// Reconstructs the live row image for `id` across memtable + runs.
    fn read_row(&self, id: Id) -> Option<Row> {
        let mut cells: BTreeMap<String, Cell> = BTreeMap::new();
        for run in self.sstables.iter().chain(std::iter::once(&self.memtable)) {
            if let Some(cols) = run.get(&id) {
                for (col, cell) in cols {
                    match cells.get(col) {
                        Some(existing) if existing.ts >= cell.ts => {}
                        _ => {
                            cells.insert(col.clone(), cell.clone());
                        }
                    }
                }
            }
        }
        if cells.is_empty() {
            return None;
        }
        let tombstone_ts = cells.get(ROW_TOMBSTONE).map(|c| c.ts);
        let mut row = Row::new();
        let mut live = false;
        for (col, cell) in cells {
            if col == ROW_TOMBSTONE {
                continue;
            }
            if let Some(tomb) = tombstone_ts {
                if cell.ts <= tomb {
                    continue;
                }
            }
            live = true;
            if col == ROW_MARKER {
                continue;
            }
            if let Some(v) = cell.value {
                row.insert(col, v);
            }
        }
        if live {
            Some(row)
        } else {
            None
        }
    }

    fn live_ids(&self) -> Vec<Id> {
        let mut ids: std::collections::BTreeSet<Id> = std::collections::BTreeSet::new();
        for run in self.sstables.iter().chain(std::iter::once(&self.memtable)) {
            ids.extend(run.keys().copied());
        }
        ids.into_iter()
            .filter(|id| self.read_row(*id).is_some())
            .collect()
    }
}

/// The columnar/LSM engine. See the module docs.
pub struct ColumnarDb {
    caps: Capabilities,
    latency: LatencyModel,
    families: Mutex<HashMap<String, ColumnFamily>>,
    clock: AtomicU64,
    /// Fault panel: compaction stalls queue the write path behind a
    /// simulated background compaction (the LSM failure class where
    /// compaction saturates the disk and foreground writes back up).
    faults: DbFaults,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl ColumnarDb {
    /// Creates an engine with the given vendor capabilities and latency.
    pub fn new(caps: Capabilities, latency: LatencyModel) -> Self {
        ColumnarDb {
            caps,
            latency,
            families: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(1),
            faults: DbFaults::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The engine's fault panel (shared state with every clone).
    pub fn faults(&self) -> DbFaults {
        self.faults.clone()
    }

    /// Number of flushes and compactions performed so far (for tests and
    /// the LSM ablation bench).
    pub fn lsm_counters(&self) -> (u64, u64) {
        let fams = self.families.lock();
        let mut flushes = 0;
        let mut compactions = 0;
        for f in fams.values() {
            flushes += f.flushes;
            compactions += f.compactions;
        }
        (flushes, compactions)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Ids that can possibly match `filter`: point lookups avoid the
    /// full-partition scan (CQL requires the partition key on writes, so
    /// this is also what the real engine would do).
    fn candidates(fam: &ColumnFamily, filter: &Query_Filter) -> Vec<Id> {
        match filter {
            Query_Filter::ById(id) => vec![*id],
            Query_Filter::IdIn(ids) => ids.clone(),
            Query_Filter::And(fs) => fs
                .iter()
                .find_map(|f| match f {
                    Query_Filter::ById(id) => Some(vec![*id]),
                    Query_Filter::IdIn(ids) => Some(ids.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| fam.live_ids()),
            _ => fam.live_ids(),
        }
    }

    fn run_locked(
        &self,
        fams: &mut HashMap<String, ColumnFamily>,
        q: &Query,
    ) -> Result<QueryResult, DbError> {
        match q {
            Query::CreateTable { table } => {
                fams.entry(table.clone()).or_default();
                Ok(QueryResult::Unit)
            }
            Query::DropTable { table } => {
                fams.remove(table);
                Ok(QueryResult::Unit)
            }
            Query::Insert { table, id, row } => {
                let fam = fams.entry(table.clone()).or_default();
                if fam.read_row(*id).is_some() {
                    return Err(DbError::DuplicateKey {
                        table: table.clone(),
                        key: id.to_string(),
                    });
                }
                let ts = self.tick();
                fam.write_cells(
                    *id,
                    ts,
                    row.iter()
                        .map(|(k, v)| (k.clone(), Some(v.clone())))
                        .chain([(ROW_MARKER.to_owned(), None)]),
                );
                fam.maybe_flush();
                Ok(QueryResult::AffectedIds(vec![*id]))
            }
            Query::Update {
                table,
                filter,
                set,
                unset,
            } => {
                let fam = fams.entry(table.clone()).or_default();
                let ids: Vec<Id> = Self::candidates(fam, filter)
                    .into_iter()
                    .filter(|id| {
                        fam.read_row(*id)
                            .map(|row| filter.matches(*id, &row))
                            .unwrap_or(false)
                    })
                    .collect();
                let ts = self.tick();
                for id in &ids {
                    fam.write_cells(
                        *id,
                        ts,
                        set.iter()
                            .map(|(k, v)| (k.clone(), Some(v.clone())))
                            .chain(unset.iter().map(|k| (k.clone(), None))),
                    );
                }
                fam.maybe_flush();
                Ok(QueryResult::AffectedIds(ids))
            }
            Query::Delete { table, filter } => {
                let fam = fams.entry(table.clone()).or_default();
                let ids: Vec<Id> = Self::candidates(fam, filter)
                    .into_iter()
                    .filter(|id| {
                        fam.read_row(*id)
                            .map(|row| filter.matches(*id, &row))
                            .unwrap_or(false)
                    })
                    .collect();
                let ts = self.tick();
                for id in &ids {
                    fam.write_cells(*id, ts, [(ROW_TOMBSTONE.to_owned(), None)]);
                }
                fam.maybe_flush();
                Ok(QueryResult::AffectedIds(ids))
            }
            Query::Select {
                table,
                filter,
                order,
                limit,
            } => {
                let fam = match fams.get(table) {
                    Some(f) => f,
                    None => return Ok(QueryResult::Rows(Vec::new())),
                };
                let mut rows: Vec<(Id, Row)> = Self::candidates(fam, filter)
                    .into_iter()
                    .filter_map(|id| fam.read_row(id).map(|row| (id, row)))
                    .filter(|(id, row)| filter.matches(*id, row))
                    .collect();
                sort_rows(&mut rows, order);
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                Ok(QueryResult::Rows(rows))
            }
            Query::Count { table, filter } => {
                let n = match fams.get(table) {
                    Some(fam) => Self::candidates(fam, filter)
                        .into_iter()
                        .filter_map(|id| fam.read_row(id).map(|row| (id, row)))
                        .filter(|(id, row)| filter.matches(*id, row))
                        .count(),
                    None => 0,
                };
                Ok(QueryResult::Count(n as u64))
            }
            Query::Batch(queries) => {
                // Logged batch: applied atomically under the engine lock;
                // nested batches are rejected as in CQL.
                let mut results = Vec::with_capacity(queries.len());
                for sub in queries {
                    if matches!(sub, Query::Batch(_)) {
                        return Err(DbError::Unsupported("nested batches"));
                    }
                    if !sub.is_write() {
                        return Err(DbError::Unsupported("reads inside a logged batch"));
                    }
                    results.push(self.run_locked(fams, sub)?);
                }
                Ok(QueryResult::Batch(results))
            }
            Query::Search { .. } | Query::Aggregate { .. } => {
                Err(DbError::Unsupported("full-text search on columnar engine"))
            }
            Query::AddEdge { .. } | Query::RemoveEdge { .. } | Query::Traverse { .. } => {
                Err(DbError::Unsupported("graph queries on columnar engine"))
            }
        }
    }
}

impl Engine for ColumnarDb {
    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn execute(&self, q: &Query) -> Result<QueryResult, DbError> {
        if q.is_write() {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_write();
            // Stall behind the simulated compaction *before* taking the
            // engine lock, as a real write queues behind compaction I/O,
            // not behind other clients.
            self.faults.gate_compaction();
        } else if q.is_read() {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.latency.charge_read();
        }
        let mut fams = self.families.lock();
        self.run_locked(&mut fams, q)
    }

    fn stats(&self) -> EngineStats {
        let fams = self.families.lock();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for fam in fams.values() {
            let ids = fam.live_ids();
            rows += ids.len() as u64;
            for id in ids {
                if let Some(r) = fam.read_row(id) {
                    bytes += r
                        .iter()
                        .map(|(k, v)| k.len() + v.approx_size())
                        .sum::<usize>() as u64;
                }
            }
        }
        EngineStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::query::Filter;

    fn db() -> ColumnarDb {
        profiles::cassandra(LatencyModel::off())
    }

    fn row(pairs: &[(&str, Value)]) -> Row {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    fn select_all(db: &ColumnarDb, table: &str) -> Vec<(Id, Row)> {
        db.execute(&Query::Select {
            table: table.into(),
            filter: Filter::All,
            order: None,
            limit: None,
        })
        .unwrap()
        .into_rows()
        .unwrap()
    }

    #[test]
    fn writes_report_ids_only_no_returning() {
        let db = db();
        let res = db
            .execute(&Query::Insert {
                table: "t".into(),
                id: Id(1),
                row: row(&[("a", 1.into())]),
            })
            .unwrap();
        assert_eq!(res, QueryResult::AffectedIds(vec![Id(1)]));
    }

    #[test]
    fn newest_timestamp_wins_per_cell() {
        let db = db();
        db.execute(&Query::Insert {
            table: "t".into(),
            id: Id(1),
            row: row(&[("a", 1.into()), ("b", 1.into())]),
        })
        .unwrap();
        db.execute(&Query::Update {
            table: "t".into(),
            filter: Filter::ById(Id(1)),
            set: row(&[("a", 2.into())]),
            unset: vec![],
        })
        .unwrap();
        let rows = select_all(&db, "t");
        assert_eq!(rows[0].1["a"], Value::Int(2));
        assert_eq!(rows[0].1["b"], Value::Int(1), "untouched column survives");
    }

    #[test]
    fn row_tombstones_hide_older_cells() {
        let db = db();
        db.execute(&Query::Insert {
            table: "t".into(),
            id: Id(1),
            row: row(&[("a", 1.into())]),
        })
        .unwrap();
        db.execute(&Query::Delete {
            table: "t".into(),
            filter: Filter::ById(Id(1)),
        })
        .unwrap();
        assert!(select_all(&db, "t").is_empty());
        // Re-insert after deletion resurrects the row with only new cells.
        db.execute(&Query::Insert {
            table: "t".into(),
            id: Id(1),
            row: row(&[("b", 2.into())]),
        })
        .unwrap();
        let rows = select_all(&db, "t");
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].1.contains_key("a"), "old cell stays dead");
        assert_eq!(rows[0].1["b"], Value::Int(2));
    }

    #[test]
    fn flush_and_compaction_preserve_reads() {
        let db = db();
        // Enough cells to force several flushes and at least one compaction.
        let n = (MEMTABLE_FLUSH_CELLS * COMPACTION_FANIN + 10) as u64;
        for i in 0..n {
            db.execute(&Query::Insert {
                table: "t".into(),
                id: Id(i + 1),
                row: row(&[("v", Value::Int(i as i64))]),
            })
            .unwrap();
        }
        let (flushes, compactions) = db.lsm_counters();
        assert!(flushes >= COMPACTION_FANIN as u64, "flushes: {flushes}");
        assert!(compactions >= 1, "compactions: {compactions}");
        assert_eq!(db.stats().rows, n);
        // Spot-check values across runs.
        let rows = db
            .execute(&Query::Select {
                table: "t".into(),
                filter: Filter::ById(Id(1)),
                order: None,
                limit: None,
            })
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0].1["v"], Value::Int(0));
    }

    #[test]
    fn compaction_gc_drops_tombstoned_cells() {
        let db = db();
        db.execute(&Query::Insert {
            table: "t".into(),
            id: Id(1),
            row: row(&[("a", 1.into())]),
        })
        .unwrap();
        db.execute(&Query::Delete {
            table: "t".into(),
            filter: Filter::ById(Id(1)),
        })
        .unwrap();
        {
            let mut fams = db.families.lock();
            let fam = fams.get_mut("t").unwrap();
            // Force flush + compaction regardless of thresholds.
            let run = std::mem::take(&mut fam.memtable);
            fam.sstables.push(run);
            fam.compact();
            let compacted = fam.sstables.last().unwrap();
            let cols = compacted.get(&Id(1)).unwrap();
            assert!(cols.contains_key(ROW_TOMBSTONE));
            assert!(!cols.contains_key("a"), "shadowed cell must be GC'd");
        }
        assert!(select_all(&db, "t").is_empty());
    }

    #[test]
    fn logged_batch_is_atomic_and_returns_per_query_results() {
        let db = db();
        let res = db
            .execute(&Query::Batch(vec![
                Query::Insert {
                    table: "t".into(),
                    id: Id(1),
                    row: row(&[("a", 1.into())]),
                },
                Query::Insert {
                    table: "t".into(),
                    id: Id(2),
                    row: row(&[("a", 2.into())]),
                },
            ]))
            .unwrap();
        assert_eq!(res.affected_ids(), vec![Id(1), Id(2)]);
        assert_eq!(db.stats().rows, 2);
    }

    #[test]
    fn batch_rejects_reads_and_nesting() {
        let db = db();
        assert!(db
            .execute(&Query::Batch(vec![Query::Count {
                table: "t".into(),
                filter: Filter::All,
            }]))
            .is_err());
        assert!(db
            .execute(&Query::Batch(vec![Query::Batch(vec![])]))
            .is_err());
    }

    #[test]
    fn compaction_stalls_charge_writes_then_expire() {
        let db = db();
        db.faults()
            .inject_compaction_stalls(2, std::time::Duration::from_micros(400));
        let start = std::time::Instant::now();
        for i in 0..4u64 {
            db.execute(&Query::Insert {
                table: "t".into(),
                id: Id(i + 1),
                row: row(&[("v", Value::Int(i as i64))]),
            })
            .unwrap();
        }
        assert!(start.elapsed() >= std::time::Duration::from_micros(800));
        assert_eq!(db.faults().stats().compaction_stalls_charged, 2);
        assert!(!db.faults().is_armed(), "stall window expired");
        // Reads never stall and all writes landed despite the stalls.
        assert_eq!(select_all(&db, "t").len(), 4);
    }

    #[test]
    fn compaction_stall_schedule_is_deterministic() {
        // Same write schedule twice: identical charge counts both runs.
        let observed: Vec<u64> = (0..2)
            .map(|_| {
                let db = db();
                db.faults()
                    .inject_compaction_stalls(3, std::time::Duration::from_micros(50));
                for i in 0..5u64 {
                    db.execute(&Query::Insert {
                        table: "t".into(),
                        id: Id(i + 1),
                        row: row(&[("v", Value::Int(i as i64))]),
                    })
                    .unwrap();
                }
                db.faults().stats().compaction_stalls_charged
            })
            .collect();
        assert_eq!(observed[0], observed[1]);
        assert_eq!(
            observed[0], 3,
            "countdown fires exactly, never probabilistically"
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let db = db();
        db.execute(&Query::Insert {
            table: "t".into(),
            id: Id(1),
            row: Row::new(),
        })
        .unwrap();
        assert!(matches!(
            db.execute(&Query::Insert {
                table: "t".into(),
                id: Id(1),
                row: Row::new(),
            }),
            Err(DbError::DuplicateKey { .. })
        ));
    }
}
