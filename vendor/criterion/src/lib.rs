//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the criterion API its benches use. Instead of criterion's
//! statistical sampling it runs a fixed warm-up plus a timed batch and prints
//! mean ns/iter — enough to compare orders of magnitude locally; not a
//! substitute for real criterion output.

use std::fmt::Display;
use std::time::Instant;

const WARMUP_ITERS: u64 = 100;
const MEASURE_ITERS: u64 = 2_000;

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    pub(crate) elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_case(full_name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: MEASURE_ITERS,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / u128::from(MEASURE_ITERS.max(1));
    println!("{full_name:<48} {per_iter:>12} ns/iter");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        run_case(&name.into(), |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// Group of related benchmark cases sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_case(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
