//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive` / `boxed`, regex-lite
//! string strategies (character classes with `{m,n}` repetition), tuple and
//! range strategies, `any::<T>()`, `prop::collection::{vec, btree_map}`, the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros,
//! and a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports the generated input as-is.
//! * **Deterministic seeding.** Each runner derives its stream from the
//!   `PROPTEST_SEED` env var (default fixed constant), so failures reproduce.
//! * Only the pattern syntax actually used is supported: a sequence of
//!   literal chars and `[...]` classes (with `a-z` ranges and `\x` escapes),
//!   each optionally followed by `{n}` or `{m,n}`.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG shared by all strategies
// ---------------------------------------------------------------------------

/// Splitmix64 stream used to drive value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
///
/// Object-safe core (`gen_value`) plus sized combinators, mirroring the
/// proptest API shape the workspace uses.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Bounded recursive strategy: `depth` levels of `recurse` layered over
    /// `self` as the leaf, mixing leaves back in at every level so generated
    /// structures terminate quickly. `desired_size` / `expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = OneOf::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }
}

/// Type-erased, cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.inner.gen_value(rng)
    }
}

/// Strategy yielding a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.gen_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.gen_value(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive generated values",
            self.whence
        );
    }
}

/// Uniform choice between same-valued strategies (the `prop_oneof!` target).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].gen_value(rng)
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies (up to 6 elements).
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Raw-bit reinterpretation covers the whole domain including NaN and
        // infinities; callers filter what they cannot accept.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

enum PatternPiece {
    /// Choice set with repetition bounds.
    Class { choices: Vec<char>, min: usize, max: usize },
    Literal(char),
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                // Tokenize the class body, resolving `\x` escapes.
                let mut tokens: Vec<(char, bool)> = Vec::new(); // (char, was_escaped)
                loop {
                    match chars.next() {
                        Some('\\') => {
                            let esc = chars.next().expect("dangling escape in pattern");
                            let resolved = match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            };
                            tokens.push((resolved, true));
                        }
                        Some(']') => break,
                        Some(other) => tokens.push((other, false)),
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                    }
                }
                // Expand `a-z` ranges (only for unescaped dashes).
                let mut choices = Vec::new();
                let mut i = 0;
                while i < tokens.len() {
                    if i + 2 < tokens.len() && tokens[i + 1] == ('-', false) {
                        let (lo, hi) = (tokens[i].0, tokens[i + 2].0);
                        assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                        for ch in lo..=hi {
                            choices.push(ch);
                        }
                        i += 3;
                    } else {
                        choices.push(tokens[i].0);
                        i += 1;
                    }
                }
                let (min, max) = parse_repetition(&mut chars);
                pieces.push(PatternPiece::Class { choices, min, max });
            }
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                pieces.push(PatternPiece::Literal(esc));
            }
            other => pieces.push(PatternPiece::Literal(other)),
        }
    }
    pieces
}

fn parse_repetition(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition lower bound"),
            hi.trim().parse().expect("bad repetition upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            match piece {
                PatternPiece::Literal(c) => out.push(c),
                PatternPiece::Class { choices, min, max } => {
                    assert!(!choices.is_empty(), "empty character class");
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    for _ in 0..len {
                        let idx = rng.below(choices.len() as u64) as usize;
                        out.push(choices[idx]);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Map of up to `size` entries (duplicate keys collapse, as in proptest).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = rng.usize_in(self.size.clone());
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            out
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Runner configuration. Only `cases` is honoured; the other fields exist
    /// for struct-update compatibility (`..Config::default()`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure raised from inside one test case (via `prop_assert!`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject<S: Into<String>>(message: S) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Terminal failure of a whole property run.
    #[derive(Debug, Clone)]
    pub struct TestError {
        pub case: u32,
        pub seed: u64,
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "property failed at case {} (seed {:#x}, set PROPTEST_SEED to reproduce): {}",
                self.case, self.seed, self.message
            )
        }
    }

    fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D)
    }

    pub struct TestRunner {
        config: Config,
        rng: TestRng,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            let seed = base_seed();
            TestRunner {
                config,
                rng: TestRng::new(seed),
                seed,
            }
        }

        /// Runs `test` against `config.cases` generated values. No shrinking:
        /// the first failure is reported with its case index and seed.
        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let mut case = 0;
            let mut rejected = 0u32;
            while case < self.config.cases {
                let value = strategy.gen_value(&mut self.rng);
                match test(value) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.cases * 16 {
                            return Err(TestError {
                                case,
                                seed: self.seed,
                                message: "too many rejected cases".into(),
                            });
                        }
                    }
                    Err(TestCaseError::Fail(message)) => {
                        return Err(TestError {
                            case,
                            seed: self.seed,
                            message,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($crate::test_runner::Config::default());
                let strategy = ($($strat,)+);
                let outcome = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("{}", e);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, OneOf, Strategy,
    };
    pub use crate::test_runner::TestCaseError;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn string_patterns_respect_class_and_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z_]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn escaped_classes_include_specials() {
        let mut rng = TestRng::new(2);
        let pattern = "[a\\\\\"\n\t]{0,24}";
        for _ in 0..200 {
            let s = Strategy::gen_value(&pattern, &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| matches!(c, 'a' | '\\' | '"' | '\n' | '\t')));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 6, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 3);
        }
    }

    proptest! {
        /// The macro itself: generated ints stay in the requested range.
        #[test]
        fn macro_ranges_hold(v in 5u64..10, flag in any::<bool>()) {
            prop_assert!((5..10).contains(&v));
            prop_assert_eq!(flag || !flag, true);
        }
    }

    #[test]
    fn runner_reports_failures() {
        use crate::test_runner::{Config, TestRunner};
        let mut runner = TestRunner::new(Config {
            cases: 8,
            ..Config::default()
        });
        let out = runner.run(&(0u64..4), |v| {
            if v >= 4 {
                return Err(TestCaseError::fail("out of range"));
            }
            Ok(())
        });
        assert!(out.is_ok());
    }
}
