//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset it uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. The generator is a splitmix64
//! stream — statistically fine for workload shuffling and fault schedules,
//! not for cryptography.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range type accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level generator interface.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(1..=8);
            assert!((1..=8).contains(&v));
            let w = rng.gen_range(0i64..100);
            assert!((0..100).contains(&w));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
