//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no crates cache, so the
//! workspace vendors the subset of the `parking_lot` API it actually uses,
//! implemented over `std::sync`. Semantics match `parking_lot` where the
//! workspace depends on them:
//!
//! * `lock()` / `read()` / `write()` never return poison errors — a panic
//!   while holding a guard does not poison the lock for later users.
//! * `Condvar::wait` / `wait_until` operate on this crate's `MutexGuard`.
//!
//! Fairness, timed locks, and the `send_guard` features are not provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as ss;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Poison-free mutex over [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar`] can temporarily take the std
/// guard out while waiting; outside of a wait it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<ss::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(ss::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: ss::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot does.
        // Callers in this workspace ignore the return value.
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Poison-free reader-writer lock over [`std::sync::RwLock`].
pub struct RwLock<T: ?Sized> {
    inner: ss::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ss::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ss::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: ss::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        handle.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let res = cv.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(7);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let lock = Arc::new(Mutex::new(1));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 1);
    }
}
