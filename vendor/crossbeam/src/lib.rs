//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! one piece of `crossbeam` it uses: the multi-producer **multi-consumer**
//! unbounded channel (`crossbeam::channel`), which std's mpsc cannot provide
//! because its `Receiver` is not cloneable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (mpmc, unlike std::sync::mpsc).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.push_back(msg);
            drop(queue);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_to_cloned_receivers() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let consume = |rx: Receiver<u32>| {
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Ok(v) = rx.recv() {
                        got += v;
                    }
                    got
                })
            };
            let a = consume(rx);
            let b = consume(rx2);
            for i in 1..=100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = a.join().unwrap() + b.join().unwrap();
            assert_eq!(total, (1..=100).sum::<u32>());
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
