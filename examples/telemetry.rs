//! Telemetry plane: staged visibility-latency tracking end to end.
//!
//! A causal-mode publisher/subscriber pair replicates a burst of
//! writes; afterwards each node's `TelemetrySnapshot` breaks every
//! delivered message into its pipeline stages — ORM intercept,
//! dependency compute, wire encode and broker enqueue on the publisher;
//! queue residency, pop/batch, dependency wait and apply on the
//! subscriber — plus the end-to-end origin→visible histogram per
//! delivery mode.
//!
//! Run with: `cargo run --example telemetry`

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    DeliveryMode, Ecosystem, ModeSlice, Publication, Stage, Subscription, SynapseConfig,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};

const MESSAGES: u64 = 500;

fn main() {
    let eco = Ecosystem::new();
    let pub1 = eco.add_node(
        // `telemetry_enabled` additionally turns on the structured event
        // ring; counters and histograms are always on.
        SynapseConfig::new("pub1")
            .mode(DeliveryMode::Causal)
            .telemetry(true),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("Post")).unwrap();
    pub1.publish(Publication::model("Post").field("body"))
        .unwrap();

    let sub1 = eco.add_node(
        SynapseConfig::new("sub1")
            .mode(DeliveryMode::Causal)
            .telemetry(true),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub1.orm()
        .define_model(ModelSchema::new("Post").field("body"))
        .unwrap();
    sub1.subscribe(Subscription::model("Post", "pub1").field("body"))
        .unwrap();

    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    for n in 0..MESSAGES {
        pub1.orm()
            .create("Post", vmap! { "body" => format!("post {n}") })
            .unwrap();
    }

    // Wait until the subscriber reports every message *visible* (the
    // per-mode delivered counter increments only after a successful
    // version-store apply).
    let deadline = Instant::now() + Duration::from_secs(30);
    while sub1.telemetry().delivered(ModeSlice::Causal) < MESSAGES {
        assert!(Instant::now() < deadline, "subscriber failed to drain");
        std::thread::sleep(Duration::from_millis(2));
    }
    eco.stop_all();

    let pub_snap = pub1.telemetry_snapshot();
    let sub_snap = sub1.telemetry_snapshot();
    sub_snap
        .check_consistency()
        .expect("subscriber snapshot internally consistent");
    pub_snap
        .check_consistency()
        .expect("publisher snapshot internally consistent");

    println!("staged breakdown over {MESSAGES} causal deliveries (p50/p99 µs):");
    for stage in Stage::all() {
        // Publisher-side stages live on the publishing node's snapshot,
        // subscriber-side stages (and end-to-end) on the subscribing one's.
        let snap = if stage.is_subscriber_stage() || stage == Stage::EndToEnd {
            &sub_snap
        } else {
            &pub_snap
        };
        let s = snap.stage(ModeSlice::Causal, stage);
        assert_eq!(s.count, MESSAGES, "{} counted every message", stage.name());
        println!(
            "  {:<16} {:>9.1} / {:>9.1}",
            stage.name(),
            s.p50_nanos as f64 / 1_000.0,
            s.p99_nanos as f64 / 1_000.0,
        );
    }

    let e2e = sub_snap.stage(ModeSlice::Causal, Stage::EndToEnd);
    assert!(e2e.sum_nanos > 0, "visibility latency was measured");
    assert_eq!(sub_snap.counter("subscriber.messages_processed"), MESSAGES);
    assert_eq!(pub_snap.counter("publisher.messages_published"), MESSAGES);
    println!(
        "every message visible; end-to-end p99 {:.1} µs across {} deliveries",
        e2e.p99_nanos as f64 / 1_000.0,
        sub_snap.delivered[ModeSlice::Causal.index()],
    );
}
