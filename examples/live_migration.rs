//! Live database migration via Synapse (§6.5, "Supports Heavy
//! Refactoring"): Crowdtap migrated their main app from MongoDB to TokuMX
//! by standing up the new version as a *subscriber* to all of the old
//! app's data, letting it bootstrap and stay in sync, then flipping the
//! load balancer.
//!
//! Run with: `cargo run --example live_migration`

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

fn main() {
    let eco = Ecosystem::new();

    // The old main app, on MongoDB, with live traffic.
    let old_app = eco.add_node(
        SynapseConfig::new("main_v1"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    old_app
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    old_app
        .publish(Publication::model("User").fields(&["name", "email"]))
        .unwrap();
    eco.connect();

    for i in 0..500 {
        old_app
            .orm()
            .create(
                "User",
                vmap! { "name" => format!("user-{i}"), "email" => format!("u{i}@x.com") },
            )
            .unwrap();
    }
    println!(
        "main_v1 (MongoDB) has {} users",
        old_app.orm().count("User").unwrap()
    );

    // The new version runs on TokuMX and subscribes to ALL the old app's
    // data — deployed while v1 keeps serving production traffic.
    let new_app = eco.add_node(
        SynapseConfig::new("main_v2"),
        Arc::new(MongoidAdapter::new("tokumx", LatencyModel::off())),
    );
    new_app
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    new_app
        .subscribe(Subscription::model("User", "main_v1").fields(&["name", "email"]))
        .unwrap();
    eco.connect();
    new_app.start();

    // Bootstrap copies the historical data (three-step protocol, §4.4)...
    new_app.bootstrap_from(&old_app).unwrap();
    println!(
        "main_v2 (TokuMX) bootstrapped {} users",
        new_app.orm().count("User").unwrap()
    );

    // ...while live writes keep flowing during the QA window.
    for i in 500..600 {
        old_app
            .orm()
            .create(
                "User",
                vmap! { "name" => format!("user-{i}"), "email" => format!("u{i}@x.com") },
            )
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while new_app.orm().count("User").unwrap() < 600 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(new_app.orm().count("User").unwrap(), 600);
    println!("main_v2 caught up to 600 users while v1 served traffic");

    // Flip the load balancer: v2 takes over with zero data loss. Its id
    // generator continues where the replicated sequence left off.
    old_app.stop();
    new_app.stop();
    let first_own = new_app.orm().create(
        "User",
        vmap! { "name" => "post-cutover", "email" => "new@x.com" },
    );
    // v2 still *subscribes* to User, so creating locally is refused until
    // the subscription is retired — exactly the discipline that kept the
    // rollback window open at Crowdtap.
    assert!(first_own.is_err());
    println!(
        "cutover complete; v2 refuses local writes until v1 is retired (rollback stays possible)"
    );
}
