//! The social product recommender of §5.2 (Fig. 11), end to end:
//! Diaspora + Discourse → semantic analyzer (decorator) → Spree, with a
//! mailer observing posts.
//!
//! Run with: `cargo run --example social_ecosystem`

use std::time::{Duration, Instant};
use synapse_repro::apps::social;
use synapse_repro::core::Ecosystem;
use synapse_repro::db::LatencyModel;
use synapse_repro::model::Id;
use synapse_repro::mvc::Request;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn main() {
    let eco = Ecosystem::new();
    let apps = social::build(&eco, LatencyModel::off());
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    // Two friends join Diaspora.
    let ids = social::seed_users(
        &apps.diaspora,
        &[("alice", "alice@example.com"), ("bob", "bob@example.com")],
    );
    let (alice, bob) = (ids[0], ids[1]);
    apps.diaspora
        .dispatch(
            "friends/create",
            &Request::as_user(alice).param("user_id", bob.raw()),
        )
        .unwrap();

    // Spree stocks some products.
    for (name, description) in [
        ("Trail Boots", "rugged boots for hiking and camping"),
        ("Espresso Maker", "brews rich espresso coffee at home"),
        ("Cat Tree", "a playground your cats will adore"),
    ] {
        apps.spree
            .dispatch(
                "products/create",
                &Request::anonymous()
                    .param("name", name)
                    .param("description", description)
                    .param("price", 49),
            )
            .unwrap();
    }

    // Alice posts about her hobby on Diaspora (Fig. 9(a)'s step ①).
    apps.diaspora
        .dispatch(
            "posts/create",
            &Request::as_user(alice)
                .param("body", "went hiking again, hiking trails all weekend"),
        )
        .unwrap();

    // ② the mailer notifies Alice's friends.
    assert!(eventually(Duration::from_secs(10), || {
        !apps.outbox.lock().is_empty()
    }));
    println!("mailer sent: {:?}", apps.outbox.lock().first().unwrap());

    // ③ the analyzer decorates Alice with interests, and ④⑤ the decorated
    // model reaches Spree.
    assert!(eventually(Duration::from_secs(10), || {
        apps.spree
            .orm()
            .find("User", alice)
            .ok()
            .flatten()
            .map(|u| !u.get("interests").is_null())
            .unwrap_or(false)
    }));
    let spree_alice = apps.spree.orm().find("User", alice).unwrap().unwrap();
    println!(
        "spree sees alice's interests: {}",
        spree_alice.get("interests")
    );

    // The recommender matches products to her replicated interests.
    let recs = apps
        .spree
        .dispatch(
            "products/recommended",
            &Request::anonymous().param("user_id", alice.raw()),
        )
        .unwrap();
    let rec_ids: Vec<u64> = recs
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_int().map(|i| i as u64))
        .collect();
    println!("recommended product ids for alice: {rec_ids:?}");
    assert!(!rec_ids.is_empty(), "hiking boots should match");
    for id in &rec_ids {
        let p = apps.spree.orm().find("Product", Id(*id)).unwrap().unwrap();
        println!("  → {}", p.get("name").as_str().unwrap());
    }

    eco.stop_all();
}
