//! The social product recommender of §5.2 (Fig. 11), end to end:
//! Diaspora + Discourse → semantic analyzer (decorator) → Spree, with a
//! mailer observing posts — followed by a second act: two regional
//! Diaspora deployments forming a two-writer mesh over the same User and
//! Post rows, diverging under a seeded fault schedule and converging
//! through version-vector conflict resolution (LWW for posts, a custom
//! merge for user bios).
//!
//! Run with: `cargo run --example social_ecosystem`

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::apps::social;
use synapse_repro::core::{
    DeliveryMode, Ecosystem, Publication, Resolution, Subscription, SynapseConfig, SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::SeededRng;
use synapse_repro::model::{vmap, Id, ModelSchema, Value};
use synapse_repro::mvc::Request;
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn main() {
    let eco = Ecosystem::new();
    let apps = social::build(&eco, LatencyModel::off());
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    // Two friends join Diaspora.
    let ids = social::seed_users(
        &apps.diaspora,
        &[("alice", "alice@example.com"), ("bob", "bob@example.com")],
    );
    let (alice, bob) = (ids[0], ids[1]);
    apps.diaspora
        .dispatch(
            "friends/create",
            &Request::as_user(alice).param("user_id", bob.raw()),
        )
        .unwrap();

    // Spree stocks some products.
    for (name, description) in [
        ("Trail Boots", "rugged boots for hiking and camping"),
        ("Espresso Maker", "brews rich espresso coffee at home"),
        ("Cat Tree", "a playground your cats will adore"),
    ] {
        apps.spree
            .dispatch(
                "products/create",
                &Request::anonymous()
                    .param("name", name)
                    .param("description", description)
                    .param("price", 49),
            )
            .unwrap();
    }

    // Alice posts about her hobby on Diaspora (Fig. 9(a)'s step ①).
    apps.diaspora
        .dispatch(
            "posts/create",
            &Request::as_user(alice).param("body", "went hiking again, hiking trails all weekend"),
        )
        .unwrap();

    // ② the mailer notifies Alice's friends.
    assert!(eventually(Duration::from_secs(10), || {
        !apps.outbox.lock().is_empty()
    }));
    println!("mailer sent: {:?}", apps.outbox.lock().first().unwrap());

    // ③ the analyzer decorates Alice with interests, and ④⑤ the decorated
    // model reaches Spree.
    assert!(eventually(Duration::from_secs(10), || {
        apps.spree
            .orm()
            .find("User", alice)
            .ok()
            .flatten()
            .map(|u| !u.get("interests").is_null())
            .unwrap_or(false)
    }));
    let spree_alice = apps.spree.orm().find("User", alice).unwrap().unwrap();
    println!(
        "spree sees alice's interests: {}",
        spree_alice.get("interests")
    );

    // The recommender matches products to her replicated interests.
    let recs = apps
        .spree
        .dispatch(
            "products/recommended",
            &Request::anonymous().param("user_id", alice.raw()),
        )
        .unwrap();
    let rec_ids: Vec<u64> = recs
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_int().map(|i| i as u64))
        .collect();
    println!("recommended product ids for alice: {rec_ids:?}");
    assert!(!rec_ids.is_empty(), "hiking boots should match");
    for id in &rec_ids {
        let p = apps.spree.orm().find("Product", Id(*id)).unwrap().unwrap();
        println!("  → {}", p.get("name").as_str().unwrap());
    }

    eco.stop_all();

    two_writer_mesh();
}

/// Act two: `diaspora_us` and `diaspora_eu` both accept writes to the same
/// User profiles and Posts. A seeded fault schedule partitions the
/// regions mid-write storm; once healed, every replica pair converges —
/// Post bodies by last-writer-wins, User bios through a custom merge
/// resolver that keeps the longer bio.
fn two_writer_mesh() {
    println!("\n-- two-writer mesh: diaspora_us <-> diaspora_eu --");
    let eco = Ecosystem::new();
    let merge_bios = |config: SynapseConfig| {
        config.merge_resolver("User", |ctx| {
            let incoming = ctx
                .incoming
                .get("bio")
                .and_then(|v| v.as_str())
                .unwrap_or("");
            let local = ctx
                .local
                .and_then(|attrs| attrs.get("bio"))
                .and_then(|v| v.as_str())
                .unwrap_or("");
            // Keep the longer bio (ties to the lexicographic max): a
            // commutative pick, so both regions settle identically.
            if (local.len(), local) >= (incoming.len(), incoming) {
                Resolution::KeepLocal
            } else {
                let mut merged = BTreeMap::new();
                merged.insert("bio".to_owned(), Value::from(incoming));
                Resolution::Merge(merged)
            }
        })
    };
    let us = eco.add_node(
        merge_bios(SynapseConfig::new("diaspora_us").mode(DeliveryMode::Weak)),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    let eu = eco.add_node(
        merge_bios(SynapseConfig::new("diaspora_eu").mode(DeliveryMode::Weak)),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    for node in [&us, &eu] {
        node.orm()
            .define_model(ModelSchema::new("User").field("name").field("bio"))
            .unwrap();
        node.orm()
            .define_model(ModelSchema::new("Post").field("body"))
            .unwrap();
        node.publish(
            Publication::model("User")
                .fields(&["name", "bio"])
                .bidirectional(),
        )
        .unwrap();
        node.publish(Publication::model("Post").field("body").bidirectional())
            .unwrap();
    }
    for (node, peer) in [(&us, "diaspora_eu"), (&eu, "diaspora_us")] {
        node.subscribe(
            Subscription::model("User", peer)
                .fields(&["name", "bio"])
                .bidirectional(),
        )
        .unwrap();
        node.subscribe(
            Subscription::model("Post", peer)
                .field("body")
                .bidirectional(),
        )
        .unwrap();
    }
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    // Shared rows originate in one region and replicate to the other.
    let carol = us
        .orm()
        .create("User", vmap! { "name" => "carol", "bio" => "hi" })
        .unwrap();
    let post = us
        .orm()
        .create("Post", vmap! { "body" => "first" })
        .unwrap();
    assert!(eventually(Duration::from_secs(10), || {
        eu.orm().find("User", carol.id).unwrap().is_some()
            && eu.orm().find("Post", post.id).unwrap().is_some()
    }));

    // A seeded fault plane: partition/heal windows interleaved with
    // overlapping writes from both regions. Deterministic for a seed, so
    // the divergence the mesh must repair is reproducible.
    let mut rng = SeededRng::new(42);
    let nodes: [&SynapseNode; 2] = [&us, &eu];
    let mut partitioned = [false; 2];
    for step in 0..24u64 {
        let region = rng.gen_below(2) as usize;
        match rng.gen_below(4) {
            0 => {
                partitioned[region] = true;
                nodes[region].publisher().inject_publish_failure(true);
            }
            1 => {
                partitioned[region] = false;
                nodes[region].publisher().inject_publish_failure(false);
                nodes[region].publisher().recover();
            }
            2 => {
                let _ = nodes[region].orm().update(
                    "Post",
                    post.id,
                    vmap! { "body" => format!("r{region}-s{step}") },
                );
            }
            _ => {
                let _ = nodes[region].orm().update(
                    "User",
                    carol.id,
                    vmap! { "bio" => format!("bio from region {region} at step {step}") },
                );
            }
        }
    }
    // Heal both regions and drain the journals.
    for node in nodes {
        node.publisher().inject_publish_failure(false);
        node.publisher().recover();
    }

    // Convergence: identical rows on both sides once the mesh quiesces.
    assert!(
        eventually(Duration::from_secs(20), || {
            let same_post = us
                .orm()
                .find("Post", post.id)
                .unwrap()
                .map(|r| r.get("body").clone())
                == eu
                    .orm()
                    .find("Post", post.id)
                    .unwrap()
                    .map(|r| r.get("body").clone());
            let same_bio = us
                .orm()
                .find("User", carol.id)
                .unwrap()
                .map(|r| r.get("bio").clone())
                == eu
                    .orm()
                    .find("User", carol.id)
                    .unwrap()
                    .map(|r| r.get("bio").clone());
            same_post
                && same_bio
                && us.publisher().journal_len() == 0
                && eu.publisher().journal_len() == 0
        }),
        "regions never converged"
    );
    let body = us
        .orm()
        .find("Post", post.id)
        .unwrap()
        .unwrap()
        .get("body")
        .clone();
    let bio = us
        .orm()
        .find("User", carol.id)
        .unwrap()
        .unwrap()
        .get("bio")
        .clone();
    println!("converged post body (LWW): {body}");
    println!("converged user bio (merge): {bio}");
    for node in nodes {
        let stats = node.subscriber_stats();
        println!(
            "{}: conflicts detected={} lww={} merge={} dominated={}",
            node.app(),
            stats.conflicts_detected,
            stats.conflicts_resolved_lww,
            stats.conflicts_resolved_merge,
            stats.conflicts_discarded_dominated,
        );
    }
    eco.stop_all();
}
