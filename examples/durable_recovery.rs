//! Durable recovery: crash a durable ecosystem and bring it back.
//!
//! The durability plane (DESIGN.md "The durability plane") makes a node
//! restart a local operation: the broker replays its segmented WAL, the
//! subscriber loads its latest version-store snapshot, and an interrupted
//! workload picks up where it stopped — acked messages never come back,
//! unacked messages always do.
//!
//! Three acts:
//!   1. A durable publisher/subscriber pair replicates live writes; the
//!      subscriber persists a version-store snapshot.
//!   2. The whole process "dies" — every node and the broker are dropped
//!      with messages still in flight.
//!   3. A new incarnation opens the same directory: the WAL replay and
//!      snapshot load are visible in the recovery report and telemetry,
//!      the in-flight messages are redelivered, and replication resumes.
//!
//! Run with: `cargo run --example durable_recovery`

use std::sync::Arc;
use std::time::Duration;
use synapse_repro::broker::{FsyncPolicy, WalConfig};
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig, SynapseNode};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, Id, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

fn build(
    eco: &Ecosystem,
    pub_db: &Arc<MongoidAdapter>,
    sub_db: &Arc<MongoidAdapter>,
    state_dir: &std::path::Path,
) -> (Arc<SynapseNode>, Arc<SynapseNode>) {
    let publisher = eco.add_node(SynapseConfig::new("pub"), pub_db.clone());
    publisher
        .orm()
        .define_model(ModelSchema::open("Order"))
        .unwrap();
    publisher
        .publish(Publication::model("Order").fields(&["item", "qty"]))
        .unwrap();
    let subscriber = eco.add_node(
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .durable(state_dir)
            .snapshot_every(Some(8)),
        sub_db.clone(),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("Order"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Order", "pub").fields(&["item", "qty"]))
        .unwrap();
    (publisher, subscriber)
}

fn counter(node: &SynapseNode, name: &str) -> u64 {
    node.telemetry_snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn main() {
    let root =
        std::env::temp_dir().join(format!("synapse-durable-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let wal_cfg = || WalConfig::new(root.join("wal")).fsync(FsyncPolicy::EveryWrite);

    // The databases play the surviving disks across the "crash".
    let pub_db = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));
    let sub_db = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));

    // --- Act 1: a durable ecosystem replicates live writes. ---
    let (eco, report) = Ecosystem::new_durable(wal_cfg()).unwrap();
    assert_eq!(report.replayed_entries, 0, "fresh log");
    let (publisher, subscriber) = build(&eco, &pub_db, &sub_db, &root.join("state"));
    assert!(eco.connect().is_empty());
    subscriber.start();

    for i in 0..12i64 {
        publisher
            .orm()
            .create("Order", vmap! { "item" => format!("sku-{i}"), "qty" => i })
            .unwrap();
    }
    while subscriber.orm().count("Order").unwrap() < 12 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let snapshot_seq = subscriber.persist_snapshot().unwrap();
    println!(
        "act 1: replicated 12 orders, persisted version snapshot #{snapshot_seq} \
         ({} wal appends so far)",
        counter(&subscriber, "wal.appends")
    );

    // --- Act 2: the process dies with messages in flight. ---
    // Stop the subscriber first so the last publishes stay queued (and
    // unacked) on the durable broker when everything is dropped.
    eco.stop_all();
    for i in 12..16i64 {
        publisher
            .orm()
            .create("Order", vmap! { "item" => format!("sku-{i}"), "qty" => i })
            .unwrap();
    }
    println!("act 2: crash with 4 published-but-unprocessed orders in flight");
    drop(subscriber);
    drop(publisher);
    drop(eco);

    // --- Act 3: a new incarnation recovers from disk. ---
    let (eco, report) = Ecosystem::new_durable(wal_cfg()).unwrap();
    println!(
        "act 3: wal replayed {} entries across {} segment(s); {} queue(s), \
         {} pending message(s) restored, {} acked skipped",
        report.replayed_entries,
        report.segments_scanned,
        report.queues_recovered,
        report.messages_recovered,
        report.acked_skipped
    );
    assert!(report.replayed_entries > 0);
    assert_eq!(
        report.messages_recovered, 4,
        "the in-flight orders survived"
    );
    assert!(
        report.acked_skipped >= 12,
        "processed orders do not come back"
    );

    let (publisher, subscriber) = build(&eco, &pub_db, &sub_db, &root.join("state"));
    assert_eq!(
        counter(&subscriber, "recovery.snapshots_loaded"),
        1,
        "the version snapshot loaded before any traffic"
    );
    println!(
        "        subscriber recovered {} version entries from snapshot #{snapshot_seq}",
        counter(&subscriber, "recovery.snapshot_entries")
    );
    assert!(eco.connect().is_empty());
    subscriber.start();

    // The four in-flight orders drain from the recovered backlog...
    while subscriber.orm().count("Order").unwrap() < 16 {
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...and live replication keeps working in the new incarnation.
    let fresh = publisher
        .orm()
        .create_with_id(
            "Order",
            Id(17),
            vmap! { "item" => "sku-post-crash", "qty" => 99 },
        )
        .unwrap();
    loop {
        if let Some(r) = subscriber.orm().find("Order", fresh.id).unwrap() {
            assert_eq!(r.get("qty").as_int(), Some(99));
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "        all 16 in-flight orders drained and live replication resumed \
         (order #{} visible)",
        fresh.id
    );
    eco.stop_all();
    let _ = std::fs::remove_dir_all(&root);
    println!("durable recovery: OK");
}
