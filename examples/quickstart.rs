//! Quickstart: the paper's Fig. 1 in thirty lines of setup.
//!
//! A MongoDB-backed publisher shares `User.name`; a PostgreSQL-backed
//! subscriber receives it in real time.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};

fn main() {
    let eco = Ecosystem::new();

    // Publisher side (Pub1): class User; publish do field :name; end; end
    let pub1 = eco.add_node(
        SynapseConfig::new("pub1"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("User")).unwrap();
    pub1.publish(Publication::model("User").field("name"))
        .unwrap();

    // Subscriber side (Sub1): subscribe from: :Pub1 do field :name; end
    let sub1 = eco.add_node(
        SynapseConfig::new("sub1"),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub1.orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    sub1.subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();

    // Static checks (§4.5), then go live.
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    // The publisher writes through its normal ORM...
    let user = pub1
        .orm()
        .create("User", vmap! { "name" => "alice", "password" => "s3cret" })
        .unwrap();
    println!("pub1 (MongoDB) created User#{} name=alice", user.id);

    // ...and the subscriber's SQL database catches up in real time.
    let replica = loop {
        if let Some(r) = sub1.orm().find("User", user.id).unwrap() {
            break r;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    println!(
        "sub1 (PostgreSQL) replicated User#{} name={}",
        replica.id,
        replica.get("name").as_str().unwrap()
    );
    assert!(
        replica.get("password").is_null(),
        "unpublished attributes never leave the owner"
    );

    println!(
        "publisher sent {} message(s); subscriber processed {}",
        pub1.publisher_stats().messages_published,
        sub1.subscriber_stats().messages_processed
    );
    eco.stop_all();
}
