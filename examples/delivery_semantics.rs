//! Delivery semantics in action (§3.2, §6.5): causal ordering across
//! services, weak-mode tolerance of message loss, and the
//! decommission/partial-bootstrap recovery path.
//!
//! Run with: `cargo run --example delivery_semantics`

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{DeliveryMode, Ecosystem, Publication, Subscription, SynapseConfig};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn main() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();

    // A causal subscriber with a finite give-up timeout (the paper's §6.5
    // recommendation) and a weak subscriber.
    let causal = eco.add_node(
        SynapseConfig::new("causal_sub").wait_timeout(Some(Duration::from_millis(300))),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    causal
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    causal
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();

    let weak = eco.add_node(
        SynapseConfig::new("weak_sub").subscriber_mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    weak.orm().define_model(ModelSchema::open("Post")).unwrap();
    weak.subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();

    eco.connect();
    eco.start_all();

    // Normal operation: both subscribers converge.
    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "v1", "version" => 1 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        causal.orm().find("Post", post.id).unwrap().is_some()
            && weak.orm().find("Post", post.id).unwrap().is_some()
    }));
    println!("both subscribers replicated Post#{}", post.id);

    // The §6.5 incident: the broker silently loses an update bound for the
    // causal subscriber (the RabbitMQ upgrade failure).
    eco.broker().inject_drop_next("causal_sub", 1);
    publisher
        .orm()
        .update("Post", post.id, vmap! { "body" => "v2", "version" => 2 })
        .unwrap();
    publisher
        .orm()
        .update("Post", post.id, vmap! { "body" => "v3", "version" => 3 })
        .unwrap();

    // The weak subscriber sails through: it only updates to the latest
    // version and tolerates the gap.
    assert!(eventually(Duration::from_secs(5), || {
        weak.orm()
            .find("Post", post.id)
            .unwrap()
            .map(|p| p.get("version").as_int() == Some(3))
            .unwrap_or(false)
    }));
    println!("weak subscriber reached v3 despite the lost message");

    // The causal subscriber's v3 message depends on the lost v2; it stalls
    // on the missing dependency until the configured timeout, then gives
    // up and proceeds (timeout 0s ≈ weak, timeout ∞ = strict causal).
    assert!(eventually(Duration::from_secs(5), || {
        causal
            .orm()
            .find("Post", post.id)
            .unwrap()
            .map(|p| p.get("version").as_int() == Some(3))
            .unwrap_or(false)
    }));
    let timeouts = causal.subscriber_stats().dep_timeouts;
    println!("causal subscriber gave up waiting {timeouts} time(s), then caught up to v3");
    assert!(timeouts >= 1);

    eco.stop_all();
}
