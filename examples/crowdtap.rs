//! The Crowdtap production topology of §5.1 (Fig. 10): one main app and
//! eight microservices over mixed causal/weak edges.
//!
//! Run with: `cargo run --example crowdtap`

use std::time::{Duration, Instant};
use synapse_repro::apps::crowdtap;
use synapse_repro::core::Ecosystem;
use synapse_repro::db::LatencyModel;
use synapse_repro::mvc::Request;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn main() {
    let eco = Ecosystem::new();
    let apps = crowdtap::build(&eco, LatencyModel::off());
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();

    println!(
        "topology: main_app → {}",
        crowdtap::SERVICES
            .iter()
            .map(|(name, mode)| format!("{name}({})", mode.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Seed brands/awards/users; every service picks up its subscriptions.
    let users = crowdtap::seed(&apps.main, 25, 5);
    println!("seeded {} users, 5 brands", users.len());

    // Welcome emails flow through the causal mailer service (Fig. 2).
    assert!(eventually(Duration::from_secs(10), || {
        apps.mailer_outbox.lock().len() == users.len()
    }));
    println!(
        "mailer sent {} welcome emails",
        apps.mailer_outbox.lock().len()
    );

    // Users complete actions through the Fig. 12(a) controllers.
    for (i, user) in users.iter().enumerate() {
        apps.main
            .dispatch(
                "actions/update",
                &Request::as_user(*user)
                    .param("action_id", (i + 1) as i64)
                    .param("bump_brand", i % 3 == 0),
            )
            .unwrap();
    }

    // The weak-mode reporting service converges on completed actions.
    let reporting = apps.services.get("reporting").unwrap();
    assert!(eventually(Duration::from_secs(10), || {
        reporting
            .orm()
            .where_eq("Action", "status", "completed")
            .map(|v| v.len() == users.len())
            .unwrap_or(false)
    }));
    println!(
        "reporting (weak) sees {} completed actions",
        reporting
            .orm()
            .where_eq("Action", "status", "completed")
            .unwrap()
            .len()
    );

    // The causal targeting service sees user points move.
    let targeting = apps.services.get("targeting").unwrap();
    assert!(eventually(Duration::from_secs(10), || {
        targeting
            .orm()
            .find("User", users[0])
            .ok()
            .flatten()
            .map(|u| u.get("points").as_int() == Some(10))
            .unwrap_or(false)
    }));
    println!("targeting (causal) sees user points updated");

    for (name, node) in &apps.services {
        let s = node.subscriber_stats();
        println!(
            "  {name:<13} processed={:<4} applied={:<4} stale={}",
            s.messages_processed, s.ops_applied, s.ops_stale
        );
    }
    eco.stop_all();
}
