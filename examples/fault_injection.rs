//! The deterministic fault plane in action (§6.5 hardening): a causal
//! pub/sub pair survives a seeded schedule of broker restarts, publish
//! failures, version-store shard kills, db write errors, and poison
//! messages — and prints the full accounting at the end.
//!
//! Run with: `cargo run --example fault_injection`
//! Reproduce a schedule: `SYNAPSE_SEED=1337 cargo run --example fault_injection`

use std::sync::Arc;
use std::time::Duration;
use synapse_repro::core::{Ecosystem, Publication, RetryPolicy, Subscription, SynapseConfig};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{
    FaultClock, FaultEvent, FaultKind, FaultPlan, FaultSpec, Injector, Side,
};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

fn main() {
    let seed: u64 = std::env::var("SYNAPSE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA_17);
    println!("fault injection demo — SYNAPSE_SEED={seed}");

    // Intentional poison-pill panics are part of the demo; keep them quiet.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let poison = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("poison pill"))
            .unwrap_or(false);
        if !poison {
            default_hook(info);
        }
    }));

    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();

    let subscriber = eco.add_node(
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(1)
            .retry(RetryPolicy {
                max_attempts: 50,
                base_backoff: Duration::from_micros(200),
                jitter_seed: seed,
            }),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();
    subscriber
        .orm()
        .on("Post", CallbackPoint::BeforeCreate, |ctx, record| {
            if !ctx.bootstrap {
                if let Some(body) = record.get("body").as_str() {
                    if body.starts_with("poison") {
                        panic!("poison pill: {body}");
                    }
                }
            }
            Ok(())
        });
    eco.connect();
    eco.start_all();

    const OPS: u64 = 120;
    let spec = FaultSpec {
        horizon: OPS,
        events: 10,
        shards: subscriber.config().version_store_shards,
        max_burst: 2,
        spike_micros: 100,
    };
    // Re-aim generated broker drops at the publish path so nothing is lost
    // (drops are the wedge demo's subject — see `delivery_semantics`).
    let events: Vec<FaultEvent> = FaultPlan::generate(seed, &spec)
        .events()
        .iter()
        .copied()
        .map(|mut e| {
            if let FaultKind::DropMessages { n } = e.kind {
                e.kind = FaultKind::PublishFailures { n };
            }
            e
        })
        .collect();
    println!(
        "plan: {} scheduled fault events over {OPS} ops",
        events.len()
    );
    for e in &events {
        println!("  tick {:>4}  {:?}", e.at_tick, e.kind);
    }
    let mut plan = FaultPlan::from_events(events);
    let mut injector = Injector::new(eco.broker().clone(), "sub")
        .with_store(Side::Publisher, publisher.pub_store().clone())
        .with_store(Side::Subscriber, subscriber.sub_store().clone())
        .with_db(Side::Publisher, publisher.orm().db_faults())
        .with_db(Side::Subscriber, subscriber.orm().db_faults());
    let clock = FaultClock::new();

    let mut refused = 0u64;
    for i in 0..OPS {
        injector.apply_due(&mut plan, clock.tick());
        let body = if i % 17 == 13 {
            format!("poison-{i}")
        } else {
            format!("post-{i}")
        };
        if publisher
            .orm()
            .create("Post", vmap! { "body" => body, "version" => i as i64 })
            .is_err()
        {
            refused += 1;
        }
    }

    // Heal and drain.
    injector.apply_due(&mut plan, u64::MAX);
    publisher.orm().db_faults().disarm();
    subscriber.orm().db_faults().disarm();
    publisher.pub_store().revive();
    subscriber.sub_store().revive();
    publisher.publisher().recover();
    let drained = subscriber.subscriber().drain(Duration::from_secs(30));
    eco.stop_all();

    let pub_stats = publisher.publisher_stats();
    let sub_stats = subscriber.subscriber_stats();
    let broker = eco.broker().stats();
    let pub_rows = publisher.orm().all("Post").unwrap().len();
    let sub_rows = subscriber.orm().all("Post").unwrap().len();
    println!("\ninjected:   {:?}", injector.stats());
    println!(
        "publisher:  published={} retries={} journaled={} refused_writes={refused} rows={pub_rows}",
        pub_stats.messages_published,
        pub_stats.publish_retries,
        publisher.publisher().journal_len(),
    );
    println!(
        "subscriber: processed={} retries={} redeliveries={} poison={} dead_lettered={} rows={sub_rows}",
        sub_stats.messages_processed,
        sub_stats.retries,
        sub_stats.redeliveries,
        sub_stats.poison_messages,
        sub_stats.dead_lettered,
    );
    println!(
        "broker:     enqueued={} acked={} dead_lettered={} dropped={} (drained={drained})",
        broker.enqueued, broker.acked, broker.dead_lettered, broker.dropped,
    );

    assert!(drained, "subscriber backlog must drain after healing");
    assert_eq!(
        broker.enqueued,
        broker.acked + broker.dead_lettered,
        "zero silent loss: every delivery ends acked or dead-lettered"
    );
    assert_eq!(sub_rows as u64, pub_rows as u64 - sub_stats.dead_lettered);
    println!(
        "\nconverged: subscriber == publisher modulo {} dead-lettered poison rows",
        sub_stats.dead_lettered
    );
}
