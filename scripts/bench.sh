#!/usr/bin/env bash
# Perf trajectories: runs the criterion micro-benches (broker,
# publish_path, publisher_deps, versionstore, wire) plus the end-to-end
# throughput bins and writes the JSON trajectories every future PR
# compares against (see EXPERIMENTS.md):
#
#   BENCH_publish_path.json        — broker deliver side (fanout bin, PR 2)
#   BENCH_publisher_path.json      — publisher write side (publisher bin, PR 3)
#   BENCH_visibility_latency.json  — Fig. 10 staged visibility latency per
#                                    delivery mode (visibility bin, PR 5),
#                                    including a full telemetry snapshot
#   BENCH_recovery.json            — durable-broker recovery time vs WAL
#                                    tail length, plus the checkpoint-
#                                    interval sweep (recovery bin, PR 6)
#   BENCH_scaling.json             — delivery-plane worker sweep: partitioned
#                                    queues + work stealing vs the single-lock
#                                    baseline at 4/16/64/256 workers
#                                    (scaling bin, PR 7)
#   BENCH_durable_scaling.json     — durable delivery worker sweep: group-commit
#                                    WAL vs the single-lock per-write append
#                                    path vs memory-only at 4/16/64 workers
#                                    (durable_scaling bin, PR 8)
#   BENCH_bootstrap_stall.json     — live delivery throughput with vs without
#                                    a concurrent watermark-interleaved
#                                    bootstrap, plus residency p99 and the
#                                    longest apply gap under the copy
#                                    (bootstrap_stall bin, PR 9)
#   BENCH_convergence.json         — multi-writer mesh: two-writer conflict-
#                                    rate sweep over shrinking shared pools,
#                                    merge-resolver arm, and the single-writer
#                                    plain-vs-bidirectional overhead A/B
#                                    (convergence bin, PR 10)
#
# Usage:
#   scripts/bench.sh                           # full run, writes all JSONs
#   scripts/bench.sh --save-baseline           # writes the fanout baseline
#   scripts/bench.sh --save-publisher-baseline # writes the publisher baseline
#   scripts/bench.sh --smoke                   # all bins, tiny counts,
#                                              # no JSON written (tier-1 smoke)
#
# Non-gating: results are recorded, not asserted, except that the smoke
# run must complete (the hot paths must not deadlock or lose deliveries).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="full"
case "${1:-}" in
  --save-baseline) MODE="baseline" ;;
  --save-publisher-baseline) MODE="publisher-baseline" ;;
  --smoke) MODE="smoke" ;;
  "") ;;
  *) echo "usage: scripts/bench.sh [--save-baseline|--save-publisher-baseline|--smoke]" >&2; exit 2 ;;
esac

OUT="BENCH_publish_path.json"
BASELINE="BENCH_publish_path.baseline.json"
PUB_OUT="BENCH_publisher_path.json"
PUB_BASELINE="BENCH_publisher_path.baseline.json"
VIS_OUT="BENCH_visibility_latency.json"
REC_OUT="BENCH_recovery.json"
SCALE_OUT="BENCH_scaling.json"
DUR_OUT="BENCH_durable_scaling.json"
STALL_OUT="BENCH_bootstrap_stall.json"
CONV_OUT="BENCH_convergence.json"

if [[ "$MODE" == "smoke" ]]; then
  FANOUT_MESSAGES="${FANOUT_MESSAGES:-500}" \
    cargo run --quiet --release -p synapse-bench --bin fanout_throughput
  PUBLISHER_MESSAGES="${PUBLISHER_MESSAGES:-200}" \
    cargo run --quiet --release -p synapse-bench --bin publisher_throughput
  VISIBILITY_MESSAGES="${VISIBILITY_MESSAGES:-100}" \
    cargo run --quiet --release -p synapse-bench --bin visibility_latency > /dev/null
  RECOVERY_TAILS="${RECOVERY_TAILS:-64,256}" \
    RECOVERY_TOTAL="${RECOVERY_TOTAL:-256}" \
    RECOVERY_INTERVALS="${RECOVERY_INTERVALS:-0,64}" \
    cargo run --quiet --release -p synapse-bench --bin recovery_trajectory > /dev/null
  cargo run --quiet --release -p synapse-bench --bin scaling_sweep -- --smoke > /dev/null
  cargo run --quiet --release -p synapse-bench --bin durable_scaling -- --smoke > /dev/null
  cargo run --quiet --release -p synapse-bench --bin bootstrap_stall -- --smoke > /dev/null
  cargo run --quiet --release -p synapse-bench --bin convergence -- --smoke > /dev/null
  echo "bench smoke: OK"
  exit 0
fi

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

CRIT_LOG="$(mktemp)"
FANOUT_LOG="$(mktemp)"
PUB_LOG="$(mktemp)"
VIS_LOG="$(mktemp)"
SCALE_LOG="$(mktemp)"
DUR_LOG="$(mktemp)"
STALL_LOG="$(mktemp)"
CONV_LOG="$(mktemp)"
trap 'rm -f "$CRIT_LOG" "$FANOUT_LOG" "$PUB_LOG" "$VIS_LOG" "$SCALE_LOG" "$DUR_LOG" "$STALL_LOG" "$CONV_LOG"' EXIT

# Criterion lines: "<name>   <ns> ns/iter"; bin lines:
# "<scenario> <value> <unit>_per_sec".
criterion_json() {
  awk '/ns\/iter/ { printf "%s    \"%s\": %s", sep, $1, $2; sep=",\n" } END { print "" }' "$CRIT_LOG"
}
rates_json() {
  awk '/_per_sec/ { printf "%s    \"%s\": %s", sep, $1, $2; sep=",\n" } END { print "" }' "$1"
}

# --- publisher write-path trajectory (PR 3) --------------------------------

run_publisher_bin() {
  cargo run --quiet --release -p synapse-bench --bin publisher_throughput | tee "$PUB_LOG"
}

write_publisher_json() {
  local target="$1"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"publisher_writes_per_sec\": {"
    rates_json "$PUB_LOG"
    if [[ "$target" == "$PUB_OUT" && -f "$PUB_BASELINE" ]]; then
      echo "  },"
      # Speedup of the current 1000-dep scenario over the pre-change
      # baseline — the ISSUE 3 acceptance number.
      CUR="$(awk '/^publisher\/write_1000deps / { print $2+0; exit }' "$PUB_LOG")"
      BASE="$(awk -F'[:,]' '/publisher\/write_1000deps/ { gsub(/[ "]/,"",$2); print $2+0; exit }' "$PUB_BASELINE")"
      SPEEDUP="$(awk -v c="$CUR" -v b="$BASE" 'BEGIN { if (b > 0) printf "%.2f", c/b; else print "null" }')"
      echo "  \"baseline\": $(cat "$PUB_BASELINE"),"
      echo "  \"publisher_1000dep_speedup_vs_baseline\": $SPEEDUP"
    else
      echo "  }"
    fi
    echo "}"
  } > "$target"
  echo "bench: wrote $target"
}

if [[ "$MODE" == "publisher-baseline" ]]; then
  run_publisher_bin
  write_publisher_json "$PUB_BASELINE"
  exit 0
fi

# --- Fig. 10 visibility-latency trajectory (PR 5) --------------------------

write_visibility_json() {
  # The bin already emits well-formed JSON (per-mode per-stage p50/p99
  # plus a full telemetry snapshot); wrap it with provenance metadata.
  cargo run --quiet --release -p synapse-bench --bin visibility_latency > "$VIS_LOG"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"visibility_latency\": $(cat "$VIS_LOG")"
    echo "}"
  } > "$VIS_OUT"
  echo "bench: wrote $VIS_OUT"
}

# --- recovery-time trajectory (PR 6) ---------------------------------------

write_recovery_json() {
  # The bin already emits well-formed JSON (WAL-tail and checkpoint
  # sweeps); wrap it with provenance metadata.
  local rec_log
  rec_log="$(mktemp)"
  cargo run --quiet --release -p synapse-bench --bin recovery_trajectory > "$rec_log"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"recovery\": $(cat "$rec_log")"
    echo "}"
  } > "$REC_OUT"
  rm -f "$rec_log"
  echo "bench: wrote $REC_OUT"
}

# --- delivery-plane worker-sweep trajectory (PR 7) -------------------------

write_scaling_json() {
  # The bin prints one "scaling/<arm>_<W>w <rate> msgs_per_sec" line per
  # run; the per-worker-count speedups (partitioned over the single-lock
  # baseline, the ISSUE 7 acceptance number at 64 workers) are computed
  # here from those lines.
  cargo run --quiet --release -p synapse-bench --bin scaling_sweep | tee "$SCALE_LOG"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"delivery_msgs_per_sec\": {"
    rates_json "$SCALE_LOG"
    echo "  },"
    echo "  \"partitioned_speedup_vs_single_lock\": {"
    awk '
      /^scaling\/baseline_/    { w=$1; sub(/^scaling\/baseline_/, "", w); order[++n]=w; base[w]=$2+0 }
      /^scaling\/partitioned_/ { w=$1; sub(/^scaling\/partitioned_/, "", w); part[w]=$2+0 }
      END {
        for (i = 1; i <= n; i++) {
          w = order[i]
          if (base[w] > 0 && w in part) {
            printf "%s    \"%s\": %.2f", sep, w, part[w]/base[w]; sep=",\n"
          }
        }
        print ""
      }' "$SCALE_LOG"
    echo "  }"
    echo "}"
  } > "$SCALE_OUT"
  echo "bench: wrote $SCALE_OUT"
}

# --- durable delivery worker-sweep trajectory (PR 8) -----------------------

write_durable_scaling_json() {
  # The bin prints one "durable/<arm>_<W>w <rate> msgs_per_sec" line per
  # arm and worker count. The two ISSUE 8 acceptance numbers at 64
  # workers — group-commit speedup over the per-write append path, and
  # how far durable delivery sits from memory-only — are computed here
  # per worker count from those lines.
  cargo run --quiet --release -p synapse-bench --bin durable_scaling | tee "$DUR_LOG"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"durable_msgs_per_sec\": {"
    rates_json "$DUR_LOG"
    echo "  },"
    echo "  \"group_speedup_vs_perwrite\": {"
    awk '
      /^durable\/group_/    { w=$1; sub(/^durable\/group_/, "", w); order[++n]=w; grp[w]=$2+0 }
      /^durable\/perwrite_/ { w=$1; sub(/^durable\/perwrite_/, "", w); per[w]=$2+0 }
      END {
        for (i = 1; i <= n; i++) {
          w = order[i]
          if (per[w] > 0 && w in grp) {
            printf "%s    \"%s\": %.2f", sep, w, grp[w]/per[w]; sep=",\n"
          }
        }
        print ""
      }' "$DUR_LOG"
    echo "  },"
    echo "  \"memory_over_group\": {"
    awk '
      /^durable\/group_/  { w=$1; sub(/^durable\/group_/, "", w); order[++n]=w; grp[w]=$2+0 }
      /^durable\/memory_/ { w=$1; sub(/^durable\/memory_/, "", w); mem[w]=$2+0 }
      END {
        for (i = 1; i <= n; i++) {
          w = order[i]
          if (grp[w] > 0 && w in mem) {
            printf "%s    \"%s\": %.2f", sep, w, mem[w]/grp[w]; sep=",\n"
          }
        }
        print ""
      }' "$DUR_LOG"
    echo "  }"
    echo "}"
  } > "$DUR_OUT"
  echo "bench: wrote $DUR_OUT"
}

# --- bootstrap stall-elimination trajectory (PR 9) -------------------------

write_bootstrap_stall_json() {
  # The bin prints "bootstrap_stall/<arm> <rate> msgs_per_sec" for the
  # live-only and live-during-bootstrap arms plus "<metric> <value> ns"
  # lines (residency p99s, longest apply gap under the copy). The ISSUE 9
  # acceptance story — live delivery never pauses while a copy runs — is
  # carried by the gap and retention numbers computed here.
  cargo run --quiet --release -p synapse-bench --bin bootstrap_stall | tee "$STALL_LOG"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"live_msgs_per_sec\": {"
    rates_json "$STALL_LOG"
    echo "  },"
    echo "  \"nanos\": {"
    awk '/ ns$/ { name=$1; sub(/^bootstrap_stall\//, "", name);
                  printf "%s    \"%s\": %s", sep, name, $2; sep=",\n" }
         END { print "" }' "$STALL_LOG"
    echo "  },"
    awk '
      /^bootstrap_stall\/live_only /             { only=$2+0 }
      /^bootstrap_stall\/live_during_bootstrap / { during=$2+0 }
      END {
        if (only > 0) printf "  \"live_retention_under_bootstrap\": %.2f\n", during/only
        else          print  "  \"live_retention_under_bootstrap\": null"
      }' "$STALL_LOG"
    echo "}"
  } > "$STALL_OUT"
  echo "bench: wrote $STALL_OUT"
}

# --- multi-writer convergence trajectory (PR 10) ----------------------------

write_convergence_json() {
  # The bin prints "convergence/<arm> <rate> msgs_per_sec" lines plus
  # "convergence/conflicts_<arm> <count> conflicts" lines. The ISSUE 10
  # acceptance number — the single-writer overhead of turning the vector
  # plane on (bidirectional over plain) — is computed here.
  cargo run --quiet --release -p synapse-bench --bin convergence | tee "$CONV_LOG"
  {
    echo "{"
    echo "  \"schema\": \"synapse-bench/v1\","
    echo "  \"generated_by\": \"scripts/bench.sh\","
    echo "  \"git_rev\": \"$GIT_REV\","
    echo "  \"utc\": \"$UTC\","
    echo "  \"msgs_per_sec\": {"
    rates_json "$CONV_LOG"
    echo "  },"
    echo "  \"conflicts_detected\": {"
    awk '/ conflicts$/ { name=$1; sub(/^convergence\/conflicts_/, "", name);
                         printf "%s    \"%s\": %s", sep, name, $2; sep=",\n" }
         END { print "" }' "$CONV_LOG"
    echo "  },"
    awk '
      /^convergence\/single_writer_plain /         { plain=$2+0 }
      /^convergence\/single_writer_bidirectional / { bidi=$2+0 }
      END {
        if (plain > 0) printf "  \"single_writer_bidirectional_retention\": %.2f\n", bidi/plain
        else           print  "  \"single_writer_bidirectional_retention\": null"
      }' "$CONV_LOG"
    echo "}"
  } > "$CONV_OUT"
  echo "bench: wrote $CONV_OUT"
}

# --- full / fanout-baseline runs -------------------------------------------

for bench in broker publish_path publisher_deps versionstore wire; do
  cargo bench --quiet -p synapse-bench --bench "$bench" 2>/dev/null | tee -a "$CRIT_LOG"
done
cargo run --quiet --release -p synapse-bench --bin fanout_throughput | tee "$FANOUT_LOG"
run_publisher_bin

TARGET="$OUT"
[[ "$MODE" == "baseline" ]] && TARGET="$BASELINE"

{
  echo "{"
  echo "  \"schema\": \"synapse-bench/v1\","
  echo "  \"generated_by\": \"scripts/bench.sh\","
  echo "  \"git_rev\": \"$GIT_REV\","
  echo "  \"utc\": \"$UTC\","
  echo "  \"fanout_deliveries_per_sec\": {"
  rates_json "$FANOUT_LOG"
  echo "  },"
  echo "  \"criterion_ns_per_iter\": {"
  criterion_json
  if [[ "$MODE" == "full" && -f "$BASELINE" ]]; then
    echo "  },"
    # Speedup of the current best fanout scenario over the pre-change
    # baseline's unbatched scenario — the ISSUE 2 acceptance number.
    CUR="$(awk '/deliveries_per_sec/ { if ($2+0 > best) best=$2+0 } END { print best }' "$FANOUT_LOG")"
    BASE="$(awk -F'[:,]' '/fanout\// { gsub(/[ "]/,"",$2); if ($2+0 > 0) { print $2+0; exit } }' "$BASELINE")"
    SPEEDUP="$(awk -v c="$CUR" -v b="$BASE" 'BEGIN { if (b > 0) printf "%.2f", c/b; else print "null" }')"
    echo "  \"baseline\": $(cat "$BASELINE"),"
    echo "  \"fanout_speedup_vs_baseline\": $SPEEDUP"
  else
    echo "  }"
  fi
  echo "}"
} > "$TARGET"

echo "bench: wrote $TARGET"

if [[ "$MODE" == "full" ]]; then
  write_publisher_json "$PUB_OUT"
  write_visibility_json
  write_recovery_json
  write_scaling_json
  write_durable_scaling_json
  write_bootstrap_stall_json
  write_convergence_json
fi
