#!/usr/bin/env bash
# Perf trajectory: runs the criterion micro-benches (broker, publish_path,
# versionstore, wire) plus the end-to-end fanout throughput bench and
# writes BENCH_publish_path.json — numbers every future PR compares
# against (see EXPERIMENTS.md "Publish→deliver hot-path trajectory").
#
# Usage:
#   scripts/bench.sh                  # full run, writes BENCH_publish_path.json
#   scripts/bench.sh --save-baseline  # full run, writes the baseline file instead
#   scripts/bench.sh --smoke          # fanout bench only, tiny message count,
#                                     # no JSON written (tier-1 smoke)
#
# Non-gating: results are recorded, not asserted, except that the smoke
# run must complete (the hot path must not deadlock or lose deliveries).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="full"
case "${1:-}" in
  --save-baseline) MODE="baseline" ;;
  --smoke) MODE="smoke" ;;
  "") ;;
  *) echo "usage: scripts/bench.sh [--save-baseline|--smoke]" >&2; exit 2 ;;
esac

OUT="BENCH_publish_path.json"
BASELINE="BENCH_publish_path.baseline.json"

if [[ "$MODE" == "smoke" ]]; then
  FANOUT_MESSAGES="${FANOUT_MESSAGES:-500}" \
    cargo run --quiet --release -p synapse-bench --bin fanout_throughput
  echo "bench smoke: OK"
  exit 0
fi

CRIT_LOG="$(mktemp)"
FANOUT_LOG="$(mktemp)"
trap 'rm -f "$CRIT_LOG" "$FANOUT_LOG"' EXIT

for bench in broker publish_path versionstore wire; do
  cargo bench --quiet -p synapse-bench --bench "$bench" 2>/dev/null | tee -a "$CRIT_LOG"
done
cargo run --quiet --release -p synapse-bench --bin fanout_throughput | tee "$FANOUT_LOG"

GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Criterion lines: "<name>   <ns> ns/iter"; fanout lines:
# "<name> <value> deliveries_per_sec".
criterion_json() {
  awk '/ns\/iter/ { printf "%s    \"%s\": %s", sep, $1, $2; sep=",\n" } END { print "" }' "$CRIT_LOG"
}
fanout_json() {
  awk '/deliveries_per_sec/ { printf "%s    \"%s\": %s", sep, $1, $2; sep=",\n" } END { print "" }' "$FANOUT_LOG"
}

TARGET="$OUT"
[[ "$MODE" == "baseline" ]] && TARGET="$BASELINE"

{
  echo "{"
  echo "  \"schema\": \"synapse-bench/v1\","
  echo "  \"generated_by\": \"scripts/bench.sh\","
  echo "  \"git_rev\": \"$GIT_REV\","
  echo "  \"utc\": \"$UTC\","
  echo "  \"fanout_deliveries_per_sec\": {"
  fanout_json
  echo "  },"
  echo "  \"criterion_ns_per_iter\": {"
  criterion_json
  if [[ "$MODE" == "full" && -f "$BASELINE" ]]; then
    echo "  },"
    # Speedup of the current best fanout scenario over the pre-change
    # baseline's unbatched scenario — the ISSUE 2 acceptance number.
    CUR="$(awk '/deliveries_per_sec/ { if ($2+0 > best) best=$2+0 } END { print best }' "$FANOUT_LOG")"
    BASE="$(awk -F'[:,]' '/fanout\// { gsub(/[ "]/,"",$2); if ($2+0 > 0) { print $2+0; exit } }' "$BASELINE")"
    SPEEDUP="$(awk -v c="$CUR" -v b="$BASE" 'BEGIN { if (b > 0) printf "%.2f", c/b; else print "null" }')"
    echo "  \"baseline\": $(cat "$BASELINE"),"
    echo "  \"fanout_speedup_vs_baseline\": $SPEEDUP"
  else
    echo "  }"
  fi
  echo "}"
} > "$TARGET"

echo "bench: wrote $TARGET"
