#!/usr/bin/env bash
# Tier-1 gate: the repo must build in release and pass the root test
# suite, then the seeded fault soak must reproduce under the pinned
# seed of record (same seed => identical outcome counters; see
# EXPERIMENTS.md "§6.5 — seeded fault-injection soak").
set -euo pipefail
cd "$(dirname "$0")/.."

# `--smoke` runs the liveness subset only: release build plus the
# delivery-plane, durable-mode, and bootstrap-stall smoke gates — the
# fast pre-push check.
MODE="full"
case "${1:-}" in
  --smoke) MODE="smoke" ;;
  "") ;;
  *) echo "usage: scripts/tier1.sh [--smoke]" >&2; exit 2 ;;
esac

cargo build --release

if [[ "$MODE" == "smoke" ]]; then
  cargo run --quiet --release -p synapse-bench --bin scaling_sweep -- --smoke
  cargo run --quiet --release -p synapse-bench --bin durable_scaling -- --smoke
  cargo run --quiet --release -p synapse-bench --bin bootstrap_stall -- --smoke
  cargo run --quiet --release -p synapse-bench --bin convergence -- --smoke
  echo "tier1 --smoke: OK"
  exit 0
fi

# Format + lint gates: first-party code must be rustfmt-clean and
# warning-free (vendored crates are excluded — they are not ours to lint).
FIRST_PARTY=(-p synapse-repro)
while read -r manifest; do
  name="$(awk -F'"' '/^name = /{print $2; exit}' "$manifest")"
  FIRST_PARTY+=(-p "$name")
done < <(ls crates/*/Cargo.toml)
cargo fmt "${FIRST_PARTY[@]}" -- --check
cargo clippy "${FIRST_PARTY[@]}" --all-targets --quiet -- -D warnings

cargo test -q

# Pinned-seed soak: deterministic replay of the fault schedule.
SYNAPSE_SEED="${SYNAPSE_SEED:-24210775}" cargo test -q --test fault_soak

# Live-bootstrap soak: chunked recovery under the same seed of record
# (see EXPERIMENTS.md "§4.4 — live-bootstrap soak"). Set
# SYNAPSE_BOOTSTRAP_SWEEP=1 to additionally run the 10-seed sweep.
SYNAPSE_SEED="${SYNAPSE_SEED:-24210775}" \
  SYNAPSE_BOOTSTRAP_SWEEP="${SYNAPSE_BOOTSTRAP_SWEEP:-0}" \
  cargo test -q --test live_bootstrap

# Crash-restart soak: the durability plane under the seeded kill
# schedule (see EXPERIMENTS.md "crash-restart soak"). Zero acked-message
# loss across every crash point, and a restart resumes an interrupted
# bootstrap from its snapshot-carried watermark. Set
# SYNAPSE_CRASH_SWEEP=1 to additionally run the 10-seed sweep.
SYNAPSE_SEED="${SYNAPSE_SEED:-24210775}" \
  SYNAPSE_CRASH_SWEEP="${SYNAPSE_CRASH_SWEEP:-0}" \
  cargo test -q --test crash_restart

# Delivery-plane scaling smoke (gating for liveness, not perf): the
# partitioned work-stealing arm must drain a tiny trace with zero
# acked-loss at every worker count and must not collapse below the
# single-lock baseline (a collapse means livelock or accidental
# serialization in the partition/steal path).
cargo run --quiet --release -p synapse-bench --bin scaling_sweep -- --smoke

# Durable-mode liveness gate (gating for liveness, not perf): the
# group-commit WAL must drain a tiny durable trace with zero acked-loss
# at every worker count, must not collapse below the per-write append
# baseline, and a publish→deliver→crash→recover round trip under
# Interval fsync must come back with exactly published-minus-acked.
cargo run --quiet --release -p synapse-bench --bin durable_scaling -- --smoke

# Bootstrap stall-elimination gate (gating for liveness, not perf): a
# watermark-interleaved copy running concurrently with a live write load
# must converge exactly, must merge its chunks through the delivery
# queue, must never open a >1s apply gap on the subscriber, and must not
# collapse live throughput below 0.2x the steady-state arm — any of
# those means the copy is pausing live delivery again.
cargo run --quiet --release -p synapse-bench --bin bootstrap_stall -- --smoke

# Multi-writer convergence gate (gating for liveness, not perf): every
# two-writer mesh arm must converge exactly under both LWW and a merge
# resolver, and turning the vector plane on must not collapse the
# single-writer path.
cargo run --quiet --release -p synapse-bench --bin convergence -- --smoke

# Optional bench smoke (non-gating for perf, gating for liveness): the
# fanout bench must complete without deadlock or delivery loss.
if [[ "${SYNAPSE_BENCH_SMOKE:-0}" == "1" ]]; then
  scripts/bench.sh --smoke
fi

echo "tier1: OK"
