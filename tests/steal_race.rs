//! Forced-interleaving test for work stealing (the ISSUE 7 delivery
//! plane): a thief that steals a later message for an object while the
//! home worker is mid-apply on an earlier one must not let the later
//! write land first and be overwritten by the stale resume.
//!
//! Companion to `apply_race.rs`: same rendezvous technique (a
//! `BeforeUpdate` callback parks the home worker inside the race
//! window, `serialize_applies(false)` re-exposes the historical
//! schedule), but the two deliveries here traverse a *real* partitioned
//! broker queue — keyed `publish_routed` puts both messages for the
//! object in one partition in order, the home worker takes the first
//! via `pop_batch_from`, and the thief takes the second via
//! `steal_batch` from the same partition, exactly the pool's steal
//! path. The per-object apply slot is what makes the steal safe.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use synapse_repro::broker::{Broker, QueueConfig};
use synapse_repro::core::{
    DeliveryMode, DepName, Ecosystem, Operation, Publication, Subscription, SynapseConfig,
    WriteMessage,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{Id, ModelSchema, Record, Value};
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};
use synapse_repro::orm::CallbackPoint;

const OBJECT: Id = Id(7);

fn object_msg(operation: &str, key: u64, version: u64, name: &str) -> WriteMessage {
    let mut attrs = BTreeMap::new();
    attrs.insert("name".to_owned(), Value::from(name));
    let record = Record::with_attrs("User", OBJECT, attrs);
    WriteMessage {
        app: "pub1".to_owned(),
        operations: vec![Operation::from_record(operation, &record)],
        dependencies: [(key, version)].into_iter().collect(),
        published_at: 0,
        generation: 1,
        vectors: BTreeMap::new(),
    }
}

/// Runs the forced steal schedule once and returns the final row value.
///
/// The home worker pops the *earlier* update (v1) from the object's
/// partition and parks mid-apply; the thief then steals the *later*
/// update (v2) from the same partition and applies it on this thread.
/// Without per-object serialization the thief's fresh write lands first
/// and the resuming home worker overwrites it with the stale value;
/// with the apply slot held across the freshness check and the ORM
/// write, the thief blocks until the home worker finishes, so the
/// fresh value always survives.
fn steal_race_once(serialize: bool) -> String {
    let eco = Ecosystem::new();
    let pub1 = eco.add_node(
        SynapseConfig::new("pub1").mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("User")).unwrap();
    pub1.publish(Publication::model("User").field("name"))
        .unwrap();

    let sub = eco.add_node(
        SynapseConfig::new("sub1").mode(DeliveryMode::Weak),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub.orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    sub.subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();
    sub.set_publisher_mode("pub1", DeliveryMode::Weak);
    sub.subscriber().serialize_applies(serialize);

    let key = sub
        .config()
        .dep_space
        .key(&DepName::object("pub1", "User", OBJECT));

    // A standalone partitioned queue carrying the racing pair; the node's
    // own pool must not drain it, so it lives on its own broker.
    let broker = Broker::new();
    broker.declare_queue(
        "race",
        QueueConfig {
            max_len: None,
            partitions: 4,
        },
    );
    broker.bind("pub1", "race");
    let consumer = broker.consumer("race").unwrap();

    // Seed the row through the replication path (subscribed models are
    // owner-write-only) so both racing operations are plain updates.
    broker
        .publish_routed("pub1", object_msg("create", key, 0, "v0").encode(), 0, key)
        .unwrap();
    broker
        .publish_routed("pub1", object_msg("update", key, 1, "v1").encode(), 0, key)
        .unwrap();
    broker
        .publish_routed("pub1", object_msg("update", key, 2, "v2").encode(), 0, key)
        .unwrap();

    // Keyed routing put all three in one partition, in publish order.
    let depths = broker.partition_depths("race").unwrap();
    let partition = depths
        .iter()
        .position(|d| *d == 3)
        .expect("one partition holds the key");

    let seed = consumer
        .pop_batch_from(partition, 1, Duration::ZERO)
        .pop()
        .unwrap();
    sub.subscriber().process(&seed).unwrap();
    consumer.ack(seed.tag);

    // Rendezvous: the home worker announces it is inside the race window
    // (past the freshness check, before the ORM write), then waits
    // (bounded) for the thief's apply to finish.
    let home_inside = Arc::new((Mutex::new(false), Condvar::new()));
    let thief_done = Arc::new(AtomicBool::new(false));
    {
        let home_inside = home_inside.clone();
        let thief_done = thief_done.clone();
        sub.orm()
            .on("User", CallbackPoint::BeforeUpdate, move |_, rec| {
                if rec.get("name").as_str() == Some("v1") {
                    let (lock, cvar) = &*home_inside;
                    *lock.lock().unwrap() = true;
                    cvar.notify_all();
                    // Bounded wait: under the fix the thief *cannot* apply
                    // while we hold the slot, so this times out and the home
                    // worker simply applies first.
                    let deadline = std::time::Instant::now() + Duration::from_millis(400);
                    while !thief_done.load(Ordering::SeqCst) && std::time::Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                Ok(())
            });
    }

    // Home worker: pop the earlier update from its partition and apply.
    let stale = consumer
        .pop_batch_from(partition, 1, Duration::ZERO)
        .pop()
        .unwrap();
    let stale_tag = stale.tag;
    let subscriber = sub.subscriber().clone();
    let home = std::thread::spawn(move || subscriber.process(&stale));

    // Wait until the home worker is parked inside the race window.
    {
        let (lock, cvar) = &*home_inside;
        let mut inside = lock.lock().unwrap();
        while !*inside {
            let (guard, timeout) = cvar.wait_timeout(inside, Duration::from_secs(2)).unwrap();
            inside = guard;
            assert!(
                !timeout.timed_out(),
                "home worker never reached the race window"
            );
        }
    }

    // Thief: steal the later update from the same partition and apply it
    // on this thread while the home worker is still mid-apply.
    let stolen = consumer.steal_batch(partition, 1).pop().unwrap();
    assert_eq!(
        stolen.payload.as_str(),
        object_msg("update", key, 2, "v2").encode(),
        "the thief took the partition's next ready message"
    );
    sub.subscriber().process(&stolen).unwrap();
    thief_done.store(true, Ordering::SeqCst);
    home.join().unwrap().unwrap();

    // Steal bookkeeping: both tags ack back to the queue they live on,
    // and nothing is left ready or un-acked.
    assert!(consumer.ack(stale_tag), "home worker's tag stayed live");
    assert!(consumer.ack(stolen.tag), "stolen delivery acks by its tag");
    assert_eq!(broker.queue_len("race"), Some(0));
    assert_eq!(broker.queue_unacked_len("race"), Some(0));

    sub.orm()
        .find("User", OBJECT)
        .unwrap()
        .expect("row exists")
        .get("name")
        .as_str()
        .expect("name is a string")
        .to_owned()
}

/// With per-object serialization bypassed, the forced steal schedule
/// lands the stale home-worker write last — the reordering stealing
/// would introduce if the apply slot did not exist. If this assertion
/// ever starts failing, the schedule no longer exercises the race and
/// the test needs a new trigger.
#[test]
fn bypassing_apply_slots_lets_a_steal_reorder_the_object() {
    assert_eq!(steal_race_once(false), "v1");
}

/// The default path holds the per-object apply slot across the
/// freshness check and the ORM write: the stolen (later) update
/// survives the same forced schedule.
#[test]
fn apply_slots_make_stealing_order_safe() {
    assert_eq!(steal_race_once(true), "v2");
}
