//! Broker queue-cap pressure (§4.4, ROADMAP open item): the fault plane
//! slows a live subscriber with database latency spikes until its capped
//! queue overflows and the broker decommissions it *under load* — not the
//! subscriber-down variant of `failure_recovery.rs`. The documented way
//! back is a partial bootstrap, and the cycle must be repeatable: the test
//! drives two full pressure → decommission → bootstrap → converge rounds
//! through one deterministic `FaultPlan`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig, SynapseNode};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{FaultEvent, FaultKind, FaultPlan, Injector, Side};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

#[test]
fn queue_pressure_decommissions_under_load_and_bootstrap_cycles_converge() {
    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    // Small cap, one worker: the decommission policy has to fire from
    // backlog growth alone while the worker is actively consuming.
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .queue_cap(8)
            .workers(1)
            .wait_timeout(Some(Duration::from_millis(50))),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();
    eco.connect();
    eco.start_all();

    // One latency-spike event per pressure round: every subscriber-side
    // apply stalls 5ms, so a single worker drains ~200 msg/s while the
    // publisher floods orders of magnitude faster.
    let mut plan = FaultPlan::from_events(
        (1..=2)
            .map(|round| FaultEvent {
                at_tick: round,
                kind: FaultKind::DbLatencySpike {
                    side: Side::Subscriber,
                    ops: 10_000,
                    micros: 5_000,
                },
            })
            .collect(),
    );
    let mut injector = Injector::new(eco.broker().clone(), "sub")
        .with_db(Side::Subscriber, subscriber.orm().db_faults());

    let mut published = 0u64;
    for round in 1..=2u64 {
        injector.apply_due(&mut plan, round);

        // Probe: one slowed apply must land before the flood, so the
        // pressure hits a worker that is provably consuming (and charging
        // the spike), not one that never woke up.
        let charged_before = subscriber.orm().db_faults().stats().latency_spikes_charged;
        let probe = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("probe-{round}"), "version" => 0 },
            )
            .unwrap();
        published += 1;
        assert!(
            eventually(Duration::from_secs(5), || {
                subscriber.orm().find("Post", probe.id).unwrap().is_some()
            }),
            "round {round}: probe must replicate before the flood"
        );
        assert!(
            subscriber.orm().db_faults().stats().latency_spikes_charged > charged_before,
            "round {round}: the probe apply must be slowed by the armed spike"
        );

        // Flood. The cap check runs at enqueue time, so the broker kills
        // the queue mid-flood once the lagging worker falls 8 behind.
        for i in 0..150 {
            publisher
                .orm()
                .create(
                    "Post",
                    vmap! { "body" => format!("r{round}-{i}"), "version" => i },
                )
                .unwrap();
            published += 1;
        }
        assert!(
            eventually(Duration::from_secs(5), || subscriber.is_decommissioned()),
            "round {round}: capped queue must decommission under injected load"
        );

        // Heal the fault, then the §4.4 recovery: partial bootstrap
        // reinstates the queue and copies the publisher's state across.
        subscriber.orm().db_faults().disarm();
        subscriber.bootstrap_from(&publisher).unwrap();
        assert_eq!(
            subscriber.orm().count("Post").unwrap(),
            published,
            "round {round}: bootstrap must converge to the publisher's rows"
        );
        assert_eq!(subscriber.stats().bootstraps, round);

        // Live replication must work again before the next round.
        let fresh = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("fresh-{round}"), "version" => 1000 },
            )
            .unwrap();
        published += 1;
        assert!(
            eventually(Duration::from_secs(5), || {
                subscriber.orm().find("Post", fresh.id).unwrap().is_some()
            }),
            "round {round}: live replication must resume after bootstrap"
        );
    }

    // The pressure was real: copies were refused and/or a backlog was
    // discarded at decommission time, and both spikes were scheduled.
    let broker_stats = eco.broker().stats();
    assert!(
        broker_stats.refused + broker_stats.discarded > 0,
        "decommission must refuse or discard copies under pressure"
    );
    assert_eq!(injector.stats().db_latency_spikes_scheduled, 20_000);
    eco.stop_all();
}
