//! Table 1 / Table 3 as a test: every publisher-capable vendor replicates
//! to every subscriber-capable vendor.

use std::time::Duration;
use synapse_repro::core::{DeliveryMode, Ecosystem};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::vmap;

const PUBLISHERS: &[&str] = &[
    "postgresql",
    "mysql",
    "oracle",
    "mongodb",
    "tokumx",
    "cassandra",
    "ephemeral",
];
const SUBSCRIBERS: &[&str] = &[
    "postgresql",
    "mysql",
    "oracle",
    "mongodb",
    "tokumx",
    "cassandra",
    "elasticsearch",
    "neo4j",
    "rethinkdb",
];

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn every_vendor_pair_replicates() {
    let mut failures = Vec::new();
    for pub_vendor in PUBLISHERS {
        for sub_vendor in SUBSCRIBERS {
            let eco = Ecosystem::new();
            let pair = synapse_apps::stress::build_pair(
                &eco,
                pub_vendor,
                sub_vendor,
                DeliveryMode::Causal,
                1,
                LatencyModel::off(),
            );
            assert!(eco.connect().is_empty());
            eco.start_all();
            let ok = match pair
                .publisher
                .orm()
                .create("User", vmap! { "name" => "matrix" })
            {
                Ok(user) => eventually(Duration::from_secs(5), || {
                    pair.subscriber
                        .orm()
                        .find("User", user.id)
                        .map(|r| r.is_some())
                        .unwrap_or(false)
                }),
                Err(_) => false,
            };
            eco.stop_all();
            if !ok {
                failures.push(format!("{pub_vendor} → {sub_vendor}"));
            }
        }
    }
    assert!(failures.is_empty(), "failing pairs: {failures:?}");
}
