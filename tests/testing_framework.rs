//! The §4.5 testing framework: factories exported by publishers, payload
//! emulation on subscribers, and bootstrap-aware callbacks (Fig. 2).

use parking_lot::Mutex;
use std::sync::Arc;
use synapse_repro::core::testing::{emulate_delivery, emulate_message, FactorySet};
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

/// A subscriber's integration test never needs a live publisher: the
/// publisher's factory builds sample objects and Synapse emulates the
/// production payloads.
#[test]
fn subscriber_tests_run_against_emulated_payloads() {
    // The publisher's exported artifacts: its publication and factory file.
    let publication = Publication::model("User").fields(&["name", "email"]);
    let factories = FactorySet::new();
    factories.define("User", |i| {
        vmap! { "name" => format!("user-{i}"), "email" => format!("u{i}@x.com"), "secret" => "x" }
    });

    // The subscriber under test, alone in its own ecosystem.
    let eco = Ecosystem::new();
    let sub = eco.add_node(
        SynapseConfig::new("mailer"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    sub.orm().define_model(ModelSchema::open("User")).unwrap();
    sub.subscribe(Subscription::model("User", "main_app").fields(&["name", "email"]))
        .unwrap();

    let outbox: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sent = outbox.clone();
    sub.orm()
        .on("User", CallbackPoint::AfterCreate, move |ctx, u| {
            if !ctx.bootstrap {
                sent.lock()
                    .push(u.get("email").as_str().unwrap_or("?").to_owned());
            }
            Ok(())
        });

    // Replay three factory-built users as production payloads.
    for i in 1..=3 {
        let record = factories.build("User", i).unwrap();
        let msg = emulate_message("main_app", &publication, "create", &record);
        let delivery = emulate_delivery(&msg);
        sub.subscriber().process(&delivery).unwrap();
    }

    assert_eq!(sub.orm().count("User").unwrap(), 3);
    assert_eq!(outbox.lock().len(), 3, "welcome mails for each user");
    // The emulation projected away unpublished attributes, like production.
    let u = sub
        .orm()
        .find("User", synapse_repro::model::Id(1))
        .unwrap()
        .unwrap();
    assert!(u.get("secret").is_null());
}

/// Fig. 2: `Synapse.bootstrap?` suppresses side effects during catch-up.
#[test]
fn bootstrap_flag_suppresses_side_effects() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("main_app"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    publisher
        .publish(Publication::model("User").fields(&["name", "email"]))
        .unwrap();

    let sub = eco.add_node(
        SynapseConfig::new("mailer"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    sub.orm().define_model(ModelSchema::open("User")).unwrap();
    sub.subscribe(Subscription::model("User", "main_app").fields(&["name", "email"]))
        .unwrap();
    eco.connect();

    let outbox: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sent = outbox.clone();
    sub.orm()
        .on("User", CallbackPoint::AfterCreate, move |ctx, u| {
            if !ctx.bootstrap {
                sent.lock()
                    .push(u.get("name").as_str().unwrap_or("?").to_owned());
            }
            Ok(())
        });

    // 100 pre-existing users arrive via bootstrap: no emails.
    for i in 0..100 {
        publisher
            .orm()
            .create(
                "User",
                vmap! { "name" => format!("old-{i}"), "email" => "e" },
            )
            .unwrap();
    }
    sub.start_and_bootstrap_from(&publisher).unwrap();
    assert_eq!(sub.orm().count("User").unwrap(), 100);
    assert!(outbox.lock().is_empty(), "no mail during bootstrap");

    // A live signup after bootstrap does get its welcome mail.
    publisher
        .orm()
        .create("User", vmap! { "name" => "fresh", "email" => "f" })
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while outbox.lock().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(*outbox.lock(), vec!["fresh".to_string()]);
    eco.stop_all();
}

/// Publisher factories are reusable across subscriber suites and produce
/// distinct sequenced data.
#[test]
fn factories_generate_distinct_sequenced_samples() {
    let factories = FactorySet::new();
    factories.define("Post", |i| vmap! { "body" => format!("post body {i}") });
    let a = factories.build("Post", 1).unwrap();
    let b = factories.build("Post", 2).unwrap();
    assert_ne!(a.id, b.id);
    assert_ne!(a.get("body"), b.get("body"));
    assert!(factories.build("Unknown", 1).is_none());
}
