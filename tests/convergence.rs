//! Multi-writer convergence: two writers of one bidirectional model
//! diverge under partitions and concurrent writes, then converge to an
//! identical final state once the mesh heals — under the default
//! last-writer-wins resolver and under a user merge resolver.
//!
//! The deterministic tests force the interesting interleavings directly
//! (publish-failure windows as partitions; hand-built version vectors
//! through the delivery emulator); the seeded property tests drive random
//! interleaved publish/partition/heal schedules through the full stack.

use proptest::prelude::*;
use proptest::test_runner::{Config, TestRunner};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::testing::emulate_delivery;
use synapse_repro::core::{
    mesh_object, writer_id, DeliveryMode, Ecosystem, Operation, Publication, Resolution,
    Subscription, SynapseConfig, SynapseNode, WriteMessage,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, Id, ModelSchema, Record, Value};
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};
use synapse_repro::versionstore::VersionVector;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Builds a two-writer mesh: both nodes publish *and* subscribe the same
/// `User` fields bidirectionally. `configure` lets a test register
/// resolvers on each node's config before the node is built.
fn mesh(
    eco: &Ecosystem,
    app_a: &str,
    app_b: &str,
    fields: &[&str],
    configure: impl Fn(SynapseConfig) -> SynapseConfig,
) -> (Arc<SynapseNode>, Arc<SynapseNode>) {
    let a = eco.add_node(
        configure(SynapseConfig::new(app_a).mode(DeliveryMode::Weak)),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    let b = eco.add_node(
        configure(SynapseConfig::new(app_b).mode(DeliveryMode::Weak)),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    for node in [&a, &b] {
        let mut schema = ModelSchema::new("User");
        for f in fields {
            schema = schema.field(*f);
        }
        node.orm().define_model(schema).unwrap();
        node.publish(Publication::model("User").fields(fields).bidirectional())
            .unwrap();
    }
    a.subscribe(
        Subscription::model("User", app_b)
            .fields(fields)
            .bidirectional(),
    )
    .unwrap();
    b.subscribe(
        Subscription::model("User", app_a)
            .fields(fields)
            .bidirectional(),
    )
    .unwrap();
    let violations = eco.connect();
    assert!(violations.is_empty(), "{violations:?}");
    eco.start_all();
    (a, b)
}

/// Waits until both nodes stop processing messages (their publisher
/// journals are empty and subscriber counters stop moving), then returns.
/// Convergence assertions only make sense on a quiescent mesh.
fn quiesce(a: &SynapseNode, b: &SynapseNode) {
    let snapshot = |n: &SynapseNode| {
        let s = n.subscriber_stats();
        (
            s.messages_processed,
            s.ops_applied,
            n.publisher().journal_len(),
        )
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = (snapshot(a), snapshot(b));
    let mut calm = 0;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(30));
        let now = (snapshot(a), snapshot(b));
        let journals_empty = now.0 .2 == 0 && now.1 .2 == 0;
        if now == last && journals_empty {
            calm += 1;
            if calm >= 5 {
                return;
            }
        } else {
            calm = 0;
        }
        last = now;
    }
    panic!("mesh never quiesced");
}

fn field_of(node: &SynapseNode, id: Id, field: &str) -> Value {
    node.orm()
        .find("User", id)
        .unwrap()
        .map(|r| r.get(field).clone())
        .unwrap_or(Value::Null)
}

/// Partition both writers, apply one concurrent update on each side, heal,
/// and require convergence to the deterministic LWW winner: the vectors
/// fork with equal sums, so the higher writer id wins on both nodes.
#[test]
fn partitioned_writers_converge_under_lww() {
    let eco = Ecosystem::new();
    let (a, b) = mesh(&eco, "mesh_a", "mesh_b", &["name"], |c| c);

    let user = a.orm().create("User", vmap! { "name" => "seed" }).unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        field_of(&b, user.id, "name").as_str() == Some("seed")
    }));

    // Partition: both writers journal instead of reaching the broker.
    a.publisher().inject_publish_failure(true);
    b.publisher().inject_publish_failure(true);
    a.orm()
        .update("User", user.id, vmap! { "name" => "from_a" })
        .unwrap();
    b.orm()
        .update("User", user.id, vmap! { "name" => "from_b" })
        .unwrap();

    // Heal: journals drain, each side receives the other's concurrent
    // write.
    a.publisher().inject_publish_failure(false);
    b.publisher().inject_publish_failure(false);
    a.publisher().recover();
    b.publisher().recover();
    quiesce(&a, &b);

    // Fork stamps: A's update carries {A:2}, B's carries {A:1,B:1} — equal
    // sums, so the greater writer id wins identically everywhere.
    let winner = if writer_id("mesh_a") > writer_id("mesh_b") {
        "from_a"
    } else {
        "from_b"
    };
    for node in [&a, &b] {
        assert_eq!(
            field_of(node, user.id, "name").as_str(),
            Some(winner),
            "{} did not converge to the LWW winner",
            node.app()
        );
    }
    // Both sides saw the fork and resolved it with the default policy.
    for node in [&a, &b] {
        let stats = node.subscriber_stats();
        assert!(stats.conflicts_detected >= 1, "{}", node.app());
        assert!(stats.conflicts_resolved_lww >= 1, "{}", node.app());
        assert_eq!(stats.conflicts_resolved_merge, 0, "{}", node.app());
    }
    // The counters fold into the exported telemetry snapshot.
    assert!(a.telemetry_snapshot().counter("conflicts.detected") >= 1);
    eco.stop_all();
}

/// The same forced fork under a user merge resolver: each side writes its
/// own score field, and the registered resolver folds the pair with a
/// per-field max — a commutative merge, so both replicas converge to the
/// union of the two writes (which plain LWW would have discarded).
#[test]
fn partitioned_writers_merge_with_custom_resolver() {
    let eco = Ecosystem::new();
    let fields = &["score_a", "score_b"];
    let merge = |config: SynapseConfig| {
        config.merge_resolver("User", |ctx| {
            let mut merged = BTreeMap::new();
            for field in ["score_a", "score_b"] {
                let local = ctx
                    .local
                    .and_then(|attrs| attrs.get(field))
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                let incoming = ctx
                    .incoming
                    .get(field)
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                merged.insert(field.to_owned(), Value::from(local.max(incoming)));
            }
            Resolution::Merge(merged)
        })
    };
    let (a, b) = mesh(&eco, "mesh_a", "mesh_b", fields, merge);

    let user = a
        .orm()
        .create("User", vmap! { "score_a" => 0, "score_b" => 0 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        b.orm().find("User", user.id).unwrap().is_some()
    }));

    a.publisher().inject_publish_failure(true);
    b.publisher().inject_publish_failure(true);
    a.orm()
        .update("User", user.id, vmap! { "score_a" => 7 })
        .unwrap();
    b.orm()
        .update("User", user.id, vmap! { "score_b" => 9 })
        .unwrap();
    a.publisher().inject_publish_failure(false);
    b.publisher().inject_publish_failure(false);
    a.publisher().recover();
    b.publisher().recover();
    quiesce(&a, &b);

    for node in [&a, &b] {
        assert_eq!(
            field_of(node, user.id, "score_a").as_int(),
            Some(7),
            "{} lost A's write",
            node.app()
        );
        assert_eq!(
            field_of(node, user.id, "score_b").as_int(),
            Some(9),
            "{} lost B's write",
            node.app()
        );
        let stats = node.subscriber_stats();
        assert!(stats.conflicts_detected >= 1, "{}", node.app());
        assert!(stats.conflicts_resolved_merge >= 1, "{}", node.app());
    }
    eco.stop_all();
}

/// Deterministic classification through hand-built vectors: one node
/// subscribed bidirectionally to two remote writers receives a fresh
/// write, a concurrent fork (→ resolver, LWW tiebreak by writer id), a
/// dominated straggler (→ discarded), and a dominating follow-up.
#[test]
fn forced_concurrent_vectors_classify_and_resolve() {
    const OBJECT: Id = Id(11);
    let eco = Ecosystem::new();
    let node = eco.add_node(
        SynapseConfig::new("observer").mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    for from in ["wa", "wb"] {
        node.subscribe(
            Subscription::model("User", from)
                .field("name")
                .bidirectional(),
        )
        .unwrap();
        node.set_publisher_mode(from, DeliveryMode::Weak);
    }

    let mesh_key = node.config().dep_space.key(&mesh_object("User", OBJECT));
    let msg = |app: &str, operation: &str, name: &str, vector: VersionVector| {
        let mut attrs = BTreeMap::new();
        attrs.insert("name".to_owned(), Value::from(name));
        let record = Record::with_attrs("User", OBJECT, attrs);
        WriteMessage {
            app: app.to_owned(),
            operations: vec![Operation::from_record(operation, &record)],
            dependencies: BTreeMap::new(),
            published_at: 0,
            generation: 1,
            vectors: [(mesh_key, vector)].into_iter().collect(),
        }
    };
    let (wa, wb) = (writer_id("wa"), writer_id("wb"));

    // ① Fresh create from writer A.
    node.subscriber()
        .process(&emulate_delivery(&msg(
            "wa",
            "create",
            "from_a",
            VersionVector::component(wa, 1),
        )))
        .unwrap();
    assert_eq!(field_of(&node, OBJECT, "name").as_str(), Some("from_a"));

    // ② Concurrent fork from writer B: equal sums, LWW breaks the tie by
    // writer id, identically on every replica.
    node.subscriber()
        .process(&emulate_delivery(&msg(
            "wb",
            "update",
            "from_b",
            VersionVector::component(wb, 1),
        )))
        .unwrap();
    let winner = if wb > wa { "from_b" } else { "from_a" };
    assert_eq!(field_of(&node, OBJECT, "name").as_str(), Some(winner));
    let stats = node.subscriber_stats();
    assert_eq!(stats.conflicts_detected, 1);
    assert_eq!(stats.conflicts_resolved_lww, 1);

    // ③ Dominated straggler: {A:1} against the joined {A:1,B:1} history.
    node.subscriber()
        .process(&emulate_delivery(&msg(
            "wa",
            "update",
            "stale_a",
            VersionVector::component(wa, 1),
        )))
        .unwrap();
    assert_eq!(field_of(&node, OBJECT, "name").as_str(), Some(winner));
    assert_eq!(node.subscriber_stats().conflicts_discarded_dominated, 1);

    // ④ Dominating follow-up applies without touching the resolver.
    node.subscriber()
        .process(&emulate_delivery(&msg(
            "wa",
            "update",
            "settled",
            VersionVector::from_components(&[(wa, 2), (wb, 1)]),
        )))
        .unwrap();
    assert_eq!(field_of(&node, OBJECT, "name").as_str(), Some("settled"));
    assert_eq!(node.subscriber_stats().conflicts_detected, 1);
}

/// One step of a seeded schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Writer 0/1 updates the row with a value derived from the step index.
    Write(usize),
    /// Writer 0/1 loses its broker link (writes journal locally).
    Partition(usize),
    /// Writer 0/1 regains the broker and drains its journal.
    Heal(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Writes listed twice: half the schedule mutates, the other half
    // toggles partitions.
    prop_oneof![
        (0usize..2).prop_map(Step::Write),
        (0usize..2).prop_map(Step::Write),
        (0usize..2).prop_map(Step::Partition),
        (0usize..2).prop_map(Step::Heal),
    ]
}

/// Drives one random schedule through a live mesh and asserts both
/// replicas converge to the identical row once healed and quiescent.
fn run_schedule(schedule: &[Step], use_merge: bool) {
    let eco = Ecosystem::new();
    let configure = move |config: SynapseConfig| {
        if use_merge {
            // Lexicographic-max merge: deterministic and commutative, so
            // any resolution order converges.
            config.merge_resolver("User", |ctx| {
                let incoming = ctx.incoming.get("name").and_then(|v| v.as_str());
                let local = ctx
                    .local
                    .and_then(|attrs| attrs.get("name"))
                    .and_then(|v| v.as_str());
                match (incoming, local) {
                    (Some(i), Some(l)) if l >= i => Resolution::KeepLocal,
                    (Some(_), _) => Resolution::TakeIncoming,
                    (None, _) => Resolution::KeepLocal,
                }
            })
        } else {
            config
        }
    };
    let (a, b) = mesh(&eco, "mesh_a", "mesh_b", &["name"], configure);
    let nodes = [&a, &b];

    let user = a.orm().create("User", vmap! { "name" => "seed" }).unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        b.orm().find("User", user.id).unwrap().is_some()
    }));

    for (i, step) in schedule.iter().enumerate() {
        match step {
            Step::Write(w) => {
                // A partitioned or racing writer can fail transiently; the
                // schedule just moves on, like a retrying controller.
                let _ = nodes[*w].orm().update(
                    "User",
                    user.id,
                    vmap! { "name" => format!("w{w}-{i}") },
                );
            }
            Step::Partition(w) => nodes[*w].publisher().inject_publish_failure(true),
            Step::Heal(w) => {
                nodes[*w].publisher().inject_publish_failure(false);
                nodes[*w].publisher().recover();
            }
        }
    }
    // Final heal: every journaled write reaches the mesh.
    for node in nodes {
        node.publisher().inject_publish_failure(false);
        node.publisher().recover();
    }
    quiesce(&a, &b);

    let final_a = field_of(&a, user.id, "name");
    let final_b = field_of(&b, user.id, "name");
    assert_eq!(
        final_a, final_b,
        "replicas diverged after {schedule:?} (merge={use_merge})"
    );
    eco.stop_all();
}

/// Runs `cases` seeded schedules against a full live mesh (each case
/// spins an ecosystem with worker threads, so the count stays small).
fn run_seeded_cases(use_merge: bool) {
    let mut runner = TestRunner::new(Config {
        cases: 6,
        ..Config::default()
    });
    let strategy = prop::collection::vec(step_strategy(), 1..14);
    runner
        .run(&strategy, |schedule| {
            run_schedule(&schedule, use_merge);
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Random interleaved publish/partition/heal schedules converge to an
/// identical final state under the default LWW resolver.
#[test]
fn seeded_schedules_converge_under_lww() {
    run_seeded_cases(false);
}

/// The same schedules converge under a commutative user merge resolver
/// registered on both writers.
#[test]
fn seeded_schedules_converge_under_merge() {
    run_seeded_cases(true);
}
