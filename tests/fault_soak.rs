//! Seeded fault-injection soak of the replication pipeline (§6.5).
//!
//! Two experiments drive a causal pub/sub pair through the deterministic
//! fault plane (`synapse_faults`):
//!
//! 1. `strict_mode_wedge_recovers_via_decommission_and_partial_bootstrap`
//!    reproduces the paper's production incident: under strict causal
//!    mode (`dep_wait_timeout = None`) a single lost message wedges the
//!    subscriber forever; the documented way out is decommission + partial
//!    bootstrap (§4.4), which this test executes and verifies.
//!
//! 2. `seeded_soak_converges_deterministically_with_zero_silent_loss`
//!    runs a randomized `FaultPlan` (publish failures, broker restarts,
//!    shard kills/revives, db write errors, latency spikes) against a live
//!    pair while the driver publishes creates/updates, some of them poison
//!    pills whose subscriber callback panics. After healing and draining,
//!    it asserts (a) convergence: subscriber == publisher modulo the
//!    dead-lettered poison rows, (b) zero silent loss via the broker
//!    accounting identity `enqueued == acked + dead_lettered`, and (c)
//!    determinism: the same seed yields identical outcome counters on a
//!    second full run. Set `SYNAPSE_SEED` to reproduce a specific run.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    Ecosystem, Publication, RetryPolicy, Subscription, SynapseConfig, SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{
    FaultClock, FaultEvent, FaultKind, FaultPlan, FaultSpec, Injector, InjectorStats, SeededRng,
    Side,
};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

/// Seed of record: `SYNAPSE_SEED=<n>` reproduces a specific schedule.
fn seed_of_record() -> u64 {
    std::env::var("SYNAPSE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

fn publishing_node(eco: &Ecosystem) -> Arc<SynapseNode> {
    let node = mongo_node(eco, SynapseConfig::new("pub"));
    node.publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    node
}

fn subscribing_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = mongo_node(eco, config);
    node.subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();
    node
}

/// Keeps intentional poison-pill panics from flooding test output while
/// letting every other panic (i.e. real failures) print normally.
fn quiet_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let poison = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("poison pill"))
                .unwrap_or(false);
            if !poison {
                default(info);
            }
        }));
    });
}

/// §6.5 wedge + §4.4 recovery, driven through the fault plane.
#[test]
fn strict_mode_wedge_recovers_via_decommission_and_partial_bootstrap() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco);
    // Strict causal mode: wait forever for missing dependencies — the
    // configuration that wedged Crowdtap's subscribers in production.
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub").wait_timeout(None).workers(1),
    );
    eco.connect();
    eco.start_all();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "v1", "version" => 1 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", post.id).unwrap().is_some()
    }));

    // Fault plane: drop the next delivery (v2), then publish v2 and v3.
    let clock = FaultClock::new();
    let mut plan = FaultPlan::from_events(vec![FaultEvent {
        at_tick: 1,
        kind: FaultKind::DropMessages { n: 1 },
    }]);
    let mut injector = Injector::new(eco.broker().clone(), "sub");
    injector.apply_due(&mut plan, clock.tick());
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 2 })
        .unwrap();
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 3 })
        .unwrap();

    // The wedge: v3 depends on the dropped v2's version bump, and strict
    // mode waits forever. Progress stops.
    std::thread::sleep(Duration::from_millis(400));
    let stats = subscriber.subscriber_stats();
    assert_eq!(stats.messages_processed, 1, "subscriber must be wedged");
    assert_eq!(stats.dep_timeouts, 0, "strict mode never times out");
    let replica = subscriber.orm().find("Post", post.id).unwrap().unwrap();
    assert_eq!(replica.get("version").as_int(), Some(1));

    // §4.4 recovery: decommission the wedged queue, then partial
    // bootstrap from the publisher.
    eco.broker().decommission_queue("sub");
    assert!(subscriber.is_decommissioned());
    subscriber.bootstrap_from(&publisher).unwrap();
    assert_eq!(subscriber.stats().bootstraps, 1);
    assert!(eventually(Duration::from_secs(5), || {
        subscriber
            .orm()
            .find("Post", post.id)
            .unwrap()
            .map(|p| p.get("version").as_int() == Some(3))
            .unwrap_or(false)
    }));

    // Live replication works again.
    let fresh = publisher
        .orm()
        .create("Post", vmap! { "body" => "post-recovery", "version" => 4 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    assert_eq!(injector.stats().drops_scheduled, 1);
    eco.stop_all();
}

/// Everything the driver can observe deterministically about one soak run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SoakOutcome {
    injector: InjectorStats,
    operations_marshalled: u64,
    refused_writes: u64,
    dead_letter_ids: Vec<u64>,
    dropped: u64,
    generation_bumps: u64,
    publisher_rows: u64,
    subscriber_rows: u64,
}

fn run_soak(seed: u64) -> SoakOutcome {
    const OPS: u64 = 160;
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco);
    let retry = RetryPolicy {
        max_attempts: 50,
        base_backoff: Duration::from_micros(200),
        jitter_seed: seed,
    };
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(1)
            .retry(retry),
    );
    // Poison pills: the subscriber's application callback panics on them,
    // every time — the deterministic-failure class that must end in the
    // dead-letter store, not in endless redelivery.
    for point in [CallbackPoint::BeforeCreate, CallbackPoint::BeforeUpdate] {
        subscriber.orm().on("Post", point, |ctx, record| {
            if !ctx.bootstrap {
                if let Some(body) = record.get("body").as_str() {
                    if body.starts_with("poison") {
                        panic!("poison pill: {body}");
                    }
                }
            }
            Ok(())
        });
    }
    eco.connect();
    eco.start_all();

    // Seeded plan over the op horizon. Broker drops are exercised by the
    // wedge test above; here they would make per-row accounting depend on
    // *which* message was lost, so the generated drops are re-aimed at the
    // publish path (same transient class, journal-recoverable).
    let spec = FaultSpec {
        horizon: OPS,
        events: 12,
        shards: subscriber.config().version_store_shards,
        max_burst: 2,
        spike_micros: 100,
    };
    let generated = FaultPlan::generate(seed, &spec);
    let events: Vec<FaultEvent> = generated
        .events()
        .iter()
        .copied()
        .map(|mut e| {
            if let FaultKind::DropMessages { n } = e.kind {
                e.kind = FaultKind::PublishFailures { n };
            }
            e
        })
        .collect();
    let mut plan = FaultPlan::from_events(events);
    let mut injector = Injector::new(eco.broker().clone(), "sub")
        .with_store(Side::Publisher, publisher.pub_store().clone())
        .with_store(Side::Subscriber, subscriber.sub_store().clone())
        .with_db(Side::Publisher, publisher.orm().db_faults())
        .with_db(Side::Subscriber, subscriber.orm().db_faults());
    let clock = FaultClock::new();
    let mut driver = SeededRng::new(seed ^ 0xD41_7E12);

    let mut ids = Vec::new();
    let mut refused = 0u64;
    for i in 0..OPS {
        injector.apply_due(&mut plan, clock.tick());
        let create = ids.is_empty() || driver.gen_ratio(3, 5);
        let result = if create {
            let body = if driver.gen_ratio(1, 12) {
                format!("poison-{i}")
            } else {
                format!("b{i}")
            };
            publisher
                .orm()
                .create("Post", vmap! { "body" => body, "version" => i as i64 })
                .map(|r| ids.push(r.id))
        } else {
            let target = ids[driver.gen_below(ids.len() as u64) as usize];
            publisher
                .orm()
                .update("Post", target, vmap! { "version" => (1000 + i) as i64 })
                .map(|_| ())
        };
        if result.is_err() {
            // Injected publisher-side db fault: the write never happened,
            // so there is nothing to replicate. Counted, not silent.
            refused += 1;
        }
    }

    // Fire schedule remainder (paired revives past the horizon), then
    // heal: disarm residual db faults, revive stores, republish journal.
    injector.apply_due(&mut plan, u64::MAX);
    publisher.orm().db_faults().disarm();
    subscriber.orm().db_faults().disarm();
    publisher.pub_store().revive();
    subscriber.sub_store().revive();
    publisher.publisher().recover();
    assert_eq!(
        publisher.publisher().journal_len(),
        0,
        "journal must drain once the broker heals"
    );

    assert!(
        subscriber.subscriber().drain(Duration::from_secs(30)),
        "subscriber backlog must drain after healing"
    );
    eco.stop_all();

    // --- Convergence: subscriber == publisher modulo dead-lettered. ---
    let dead_letters = subscriber.dead_letters();
    let mut dead_ids: BTreeSet<u64> = BTreeSet::new();
    for d in &dead_letters {
        let msg = synapse_repro::core::WriteMessage::decode(&d.payload)
            .expect("only decodable poison in this soak");
        for op in &msg.operations {
            dead_ids.insert(op.id.raw());
        }
    }
    let pub_rows = publisher.orm().all("Post").unwrap();
    let sub_rows = subscriber.orm().all("Post").unwrap();
    let mut expected_rows = 0u64;
    for row in &pub_rows {
        let poisoned = row
            .get("body")
            .as_str()
            .map(|b| b.starts_with("poison"))
            .unwrap_or(false);
        let replica = subscriber.orm().find("Post", row.id).unwrap();
        if poisoned {
            assert!(
                replica.is_none(),
                "poison row {} must not replicate",
                row.id
            );
            assert!(
                dead_ids.contains(&row.id.raw()),
                "poison row {} must be accounted in the dead-letter store",
                row.id
            );
        } else {
            expected_rows += 1;
            let replica = replica.unwrap_or_else(|| {
                panic!(
                    "row {} silently lost (not replicated, not dead-lettered)",
                    row.id
                )
            });
            assert_eq!(replica.get("body"), row.get("body"), "row {}", row.id);
            assert_eq!(replica.get("version"), row.get("version"), "row {}", row.id);
        }
    }
    assert_eq!(sub_rows.len() as u64, expected_rows, "no phantom rows");

    // --- Zero silent loss: the broker accounting identity. ---
    let broker_stats = eco.broker().stats();
    let pub_stats = publisher.publisher_stats();
    let sub_stats = subscriber.subscriber_stats();
    assert_eq!(broker_stats.enqueued, pub_stats.messages_published);
    assert_eq!(
        broker_stats.enqueued,
        broker_stats.acked + broker_stats.dead_lettered,
        "every enqueued delivery must end acked or dead-lettered"
    );
    assert_eq!(broker_stats.dropped, 0);
    assert_eq!(broker_stats.discarded, 0);
    // At-least-once: every published message ends processed or
    // dead-lettered. A broker restart requeues in-flight deliveries and
    // turns their late acks spurious, so the handled sum may exceed
    // `published` — but by at most one duplicate per restart (workers=1).
    let handled = sub_stats.messages_processed + sub_stats.dead_lettered;
    assert!(
        handled >= pub_stats.messages_published,
        "silent loss: handled {handled} < published {}",
        pub_stats.messages_published
    );
    assert!(
        handled - pub_stats.messages_published <= injector.stats().broker_restarts,
        "more duplicates than broker restarts can explain"
    );
    assert_eq!(sub_stats.dead_lettered, broker_stats.dead_lettered);
    assert_eq!(
        pub_stats.publish_failures, 0,
        "retries absorb armed failures"
    );

    // --- Telemetry plane: the snapshot must be live and self-consistent
    // even under faults. Stage counts equal the end-to-end count per mode,
    // subscriber stage sums never exceed the end-to-end sum, and the
    // delivered total matches what actually survived to the version-store
    // apply. (Latency values are wall-clock and thus excluded from the
    // determinism check below — only counters ride in SoakOutcome.)
    let sub_snap = subscriber.telemetry_snapshot();
    sub_snap
        .check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent subscriber telemetry: {e}"));
    assert!(
        sub_snap.has_deliveries(),
        "the soak must record visibility latencies"
    );
    // One visibility sample per successful apply. `messages_processed`
    // counts only live acks; a broker restart or a dead version store at
    // flush time voids the ack while the sample stays, and the copy is
    // reprocessed. Every such duplicate sample therefore rides a
    // redelivered pop, so the redelivery counter bounds the overshoot.
    assert!(
        sub_snap.total_delivered() >= sub_stats.messages_processed,
        "visibility samples lost: {} < {}",
        sub_snap.total_delivered(),
        sub_stats.messages_processed
    );
    assert!(
        sub_snap.total_delivered() - sub_stats.messages_processed <= sub_stats.redeliveries,
        "more visibility samples than redeliveries can explain"
    );
    let pub_snap = publisher.telemetry_snapshot();
    pub_snap
        .check_consistency()
        .unwrap_or_else(|e| panic!("inconsistent publisher telemetry: {e}"));

    SoakOutcome {
        injector: injector.stats(),
        operations_marshalled: pub_stats.operations,
        refused_writes: refused,
        dead_letter_ids: dead_ids.into_iter().collect(),
        dropped: broker_stats.dropped,
        generation_bumps: pub_stats.generation_bumps,
        publisher_rows: pub_rows.len() as u64,
        subscriber_rows: sub_rows.len() as u64,
    }
}

/// The tentpole soak: convergence, zero silent loss, and determinism —
/// the same seed must produce identical counter totals twice.
#[test]
fn seeded_soak_converges_deterministically_with_zero_silent_loss() {
    quiet_poison_panics();
    let seed = seed_of_record();
    eprintln!("fault soak: SYNAPSE_SEED={seed}");
    let first = run_soak(seed);
    let second = run_soak(seed);
    assert_eq!(
        first, second,
        "same seed must reproduce identical soak outcomes"
    );
    assert!(
        first.injector.total_scheduled() > 0,
        "the plan must actually inject faults"
    );
    assert!(
        !first.dead_letter_ids.is_empty(),
        "poison pills must reach the dead-letter store"
    );
}
