//! Live-bootstrap soak: chunked recovery under an active fault plane.
//!
//! The scenario the §4.4 rebuild exists for: a subscriber bootstraps from
//! a publisher *while* a writer keeps publishing and the fault plane keeps
//! firing. Three deterministic fault classes strike *inside* the protocol:
//!
//! * a poison callback (panic during a chunk apply — the §6.5 class) kills
//!   the first attempt mid-step-2, after two chunk watermarks committed;
//! * a [`PhaseHook`]-aimed broker restart fires on the fifth `copying`
//!   entry, i.e. in the middle of the *resumed* copy;
//! * after convergence, a phase-aimed subscriber version-store shard kill
//!   strikes a later recovery mid-copy (the aftershock), and re-entering
//!   `bootstrap_from` must revive the store and reconverge.
//!
//! A seeded `FaultPlan` keeps background pressure on the pipeline for the
//! whole write horizon (publish failures, broker restarts, db write
//! errors, latency spikes).
//!
//! Asserted invariants, per seed:
//!
//! * every failed attempt clears the bootstrap flag and leaves the node
//!   writable (the stuck-flag regression, under live fire);
//! * converging attempts resume from the last chunk watermark instead of
//!   restarting the copy (`resumes` grows with each recovery);
//! * convergence is exact: row-for-row equality with equal counts — no
//!   lost records, no double-applied rows, no phantom rows — with zero
//!   dead-letters and zero broker drops/discards;
//! * chunk/live reconciliation really happened (`records_reconciled >= 1`).
//!
//! `SYNAPSE_SEED=<n>` pins the schedule; `SYNAPSE_BOOTSTRAP_SWEEP=1`
//! additionally runs a 10-seed sweep derived from the seed of record.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use synapse_repro::core::{
    BootstrapPhase, DepName, Ecosystem, Publication, RetryPolicy, Subscription, SynapseConfig,
    SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{
    FaultClock, FaultEvent, FaultKind, FaultPlan, FaultSpec, Injector, PhaseHook, SeededRng, Side,
};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

/// Seed of record: `SYNAPSE_SEED=<n>` reproduces a specific schedule.
fn seed_of_record() -> u64 {
    std::env::var("SYNAPSE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

/// Keeps the intentional chunk-apply panic from flooding test output while
/// letting every other panic (i.e. real failures) print normally.
fn quiet_poison_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let poison = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("poison pill"))
                .unwrap_or(false);
            if !poison {
                default(info);
            }
        }));
    });
}

/// Ops the writer thread attempts while the bootstrap runs.
const OPS: u64 = 160;
/// Rows seeded before the subscriber's queue is even bound: history that
/// can only arrive through the chunked object copy.
const SEED_ROWS: usize = 120;

/// One full soak run. Panics on any violated invariant.
fn run_live_bootstrap(seed: u64) {
    quiet_poison_panics();
    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(1)
            // The retry budget must exceed the worst contiguous burst the
            // plan can arm: nack requeues at the queue front, so stacked
            // db-error bursts are consumed consecutively by one delivery.
            .retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_micros(200),
                jitter_seed: seed,
            })
            .bootstrap_chunk(16)
            .bootstrap_drain_timeout(Duration::from_secs(15)),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();
    // A purely local model, to prove the node stays writable after a
    // failed attempt.
    subscriber.orm().define_model(ModelSchema::open("Note")).unwrap();

    // Poison pill for attempt 1: the copier's 33rd applied record — i.e.
    // somewhere in the third chunk or later, with two watermarks already
    // committed — panics once. Only the bootstrap copier runs chunk
    // applies on this (the test's) thread, so live worker applies can
    // never trip it.
    let copier_thread = std::thread::current().id();
    let copier_applies = Arc::new(AtomicU64::new(0));
    let pill_fired = Arc::new(AtomicBool::new(false));
    for point in [CallbackPoint::BeforeCreate, CallbackPoint::BeforeUpdate] {
        let copier_applies = copier_applies.clone();
        let pill_fired = pill_fired.clone();
        subscriber.orm().on("Post", point, move |ctx, _record| {
            if ctx.bootstrap && std::thread::current().id() == copier_thread {
                let n = copier_applies.fetch_add(1, Ordering::SeqCst) + 1;
                if n == 33 && !pill_fired.swap(true, Ordering::SeqCst) {
                    panic!("{}", format!("poison pill: chunk apply {n} dies once"));
                }
            }
            Ok(())
        });
    }

    let mut seeded_ids = Vec::with_capacity(SEED_ROWS);
    for i in 0..SEED_ROWS {
        let row = publisher
            .orm()
            .create("Post", vmap! { "body" => format!("seed-{i}"), "version" => i as i64 })
            .unwrap();
        seeded_ids.push(row.id);
    }
    let first_seed = seeded_ids[0];
    eco.connect();
    subscriber.start();

    // --- Phase-aimed faults: strike *inside* the protocol. ---
    // Entries are 1-based per phase label; entry 5 lands mid-way through
    // the *resumed* copy (attempt 1 dies on its third `copying` entry).
    let mut hook = PhaseHook::new();
    hook.on_entry("copying", 5, FaultKind::BrokerRestart);
    let phase_injector = Injector::new(eco.broker().clone(), "sub")
        .with_store(Side::Subscriber, subscriber.sub_store().clone());
    let bridge = Arc::new(Mutex::new((hook, phase_injector)));
    {
        let bridge = bridge.clone();
        subscriber.set_bootstrap_probe(move |state| {
            let label = match state.phase() {
                BootstrapPhase::Snapshot => "snapshot",
                BootstrapPhase::Copying => "copying",
                BootstrapPhase::Draining => "draining",
                BootstrapPhase::Idle | BootstrapPhase::Live => return,
            };
            let (hook, injector) = &mut *bridge.lock().unwrap();
            hook.enter(label, injector);
        });
    }

    // --- Background pressure: a seeded plan over the write horizon. ---
    // Raw broker drops are real message loss and plan-generated shard
    // kills would race the deterministic schedule (a publisher write heals
    // its own store via a generation bump, §4.4, and a subscriber revive
    // would mask the aftershock), so both classes are re-aimed at
    // transient, recoverable faults; the rest of the generated schedule
    // (publish failures, broker restarts, db errors, latency) fires as-is.
    let spec = FaultSpec {
        horizon: OPS,
        events: 10,
        shards: subscriber.config().version_store_shards,
        max_burst: 2,
        spike_micros: 100,
    };
    let events: Vec<FaultEvent> = FaultPlan::generate(seed, &spec)
        .events()
        .iter()
        .copied()
        .filter_map(|mut e| {
            match e.kind {
                FaultKind::DropMessages { n } => e.kind = FaultKind::PublishFailures { n },
                FaultKind::KillShard { .. } | FaultKind::ReviveShards { .. } => return None,
                _ => {}
            }
            Some(e)
        })
        .collect();
    let plan = FaultPlan::from_events(events);
    let plan_injector = Injector::new(eco.broker().clone(), "sub")
        .with_db(Side::Publisher, publisher.orm().db_faults())
        .with_db(Side::Subscriber, subscriber.orm().db_faults());

    // Writer thread: creates and full-row updates against the publisher,
    // ticking the plan once per op. Writes refused by an injected
    // publisher-side fault never happened and are only counted.
    let writer = {
        let publisher = publisher.clone();
        let mut plan = plan;
        let mut injector = plan_injector;
        let mut ids = seeded_ids;
        std::thread::spawn(move || {
            let clock = FaultClock::new();
            let mut driver = SeededRng::new(seed ^ 0xB007_57A9);
            let mut refused = 0u64;
            for i in 0..OPS {
                injector.apply_due(&mut plan, clock.tick());
                let result = if driver.gen_ratio(2, 5) {
                    publisher
                        .orm()
                        .create(
                            "Post",
                            vmap! { "body" => format!("live-{i}"), "version" => (5000 + i) as i64 },
                        )
                        .map(|r| ids.push(r.id))
                } else {
                    let target = ids[driver.gen_below(ids.len() as u64) as usize];
                    publisher
                        .orm()
                        .update(
                            "Post",
                            target,
                            vmap! { "body" => format!("touch-{i}"), "version" => (1000 + i) as i64 },
                        )
                        .map(|_| ())
                };
                if result.is_err() {
                    refused += 1;
                }
                std::thread::sleep(Duration::from_micros(400));
            }
            (refused, plan, injector)
        })
    };

    // --- Attempt 1: must die mid-copy on the poisoned chunk apply. ---
    let first = subscriber.bootstrap_from(&publisher);
    assert!(first.is_err(), "the poisoned chunk apply must fail attempt 1");
    assert!(pill_fired.load(Ordering::SeqCst), "the pill fired in the copier");
    assert!(
        !subscriber.orm().is_bootstrap(),
        "a failed attempt must clear the bootstrap flag even under live fire"
    );
    let failed = subscriber.bootstrap_stats();
    assert_eq!(failed.completions, 0);
    assert!(
        failed.chunks_copied >= 2,
        "chunks before the poisoned one committed watermarks"
    );
    assert_eq!(failed.phase, BootstrapPhase::Idle);
    // Writable: local models work as if no bootstrap ever ran.
    subscriber
        .orm()
        .create("Note", vmap! { "body" => "still writable" })
        .unwrap();

    // --- Re-entry under live fire: resume from the watermark. ---
    // The writer is still publishing and the plan is still firing; the
    // resumed copy also runs through the phase-aimed broker restart.
    let mut extra_failures = 0;
    loop {
        match subscriber.bootstrap_from(&publisher) {
            Ok(()) => break,
            Err(e) => {
                assert!(!subscriber.orm().is_bootstrap());
                extra_failures += 1;
                assert!(extra_failures < 20, "bootstrap never converged: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // --- Writer finishes; heal the pipeline and settle. ---
    let (refused, mut plan, mut injector) = writer.join().unwrap();
    injector.apply_due(&mut plan, u64::MAX);
    publisher.orm().db_faults().disarm();
    subscriber.orm().db_faults().disarm();
    // Republishing the journal can itself eat residual armed publish
    // failures; drive it until the journal is empty.
    for _ in 0..5 {
        publisher.publisher().recover();
        if publisher.publisher().journal_len() == 0 {
            break;
        }
    }
    assert_eq!(publisher.publisher().journal_len(), 0, "journal must drain");
    assert!(
        subscriber.subscriber().drain(Duration::from_secs(30)),
        "backlog must drain once the pipeline heals"
    );

    // --- Convergence: exact, with nothing lost and nothing doubled. ---
    let pub_rows = publisher.orm().all("Post").unwrap();
    let sub_rows = subscriber.orm().all("Post").unwrap();
    assert!(pub_rows.len() >= SEED_ROWS);
    assert!(refused < OPS, "the writer must have made progress");
    assert_eq!(
        sub_rows.len(),
        pub_rows.len(),
        "no lost records and no phantom (double-applied) rows"
    );
    for row in &pub_rows {
        let replica = subscriber
            .orm()
            .find("Post", row.id)
            .unwrap()
            .unwrap_or_else(|| panic!("row {} lost across the bootstrap", row.id));
        assert_eq!(replica.get("body"), row.get("body"), "row {}", row.id);
        assert_eq!(replica.get("version"), row.get("version"), "row {}", row.id);
    }
    let dl = subscriber.dead_letters();
    assert!(
        dl.is_empty(),
        "no delivery may dead-letter in this soak: {dl:?}"
    );
    let broker_stats = eco.broker().stats();
    assert_eq!(broker_stats.dropped, 0, "no silent broker loss");
    assert_eq!(broker_stats.discarded, 0, "no decommission happened");

    let stats = subscriber.bootstrap_stats();
    assert!(stats.attempts >= 2);
    assert_eq!(stats.completions, 1);
    assert!(
        stats.resumes >= 1,
        "the converging attempt must resume from the chunk watermark"
    );
    assert!(
        stats.records_copied as usize + stats.records_reconciled as usize >= SEED_ROWS,
        "the copy must cover every seeded row, applied or reconciled"
    );
    assert_eq!(stats.phase, BootstrapPhase::Live);
    assert!(!subscriber.orm().is_bootstrap());

    // --- Aftershock: a subscriber store shard dies mid-copy. ---
    // A phase-aimed kill strikes the third chunk of the next recovery; the
    // attempt fails after retrying the dead shard, a re-entry revives the
    // store, resumes past the aftershock watermark, and reconverges.
    let wm_shard = subscriber.sub_store().shard_for(
        subscriber
            .config()
            .dep_space
            .key(&DepName::bootstrap_watermark("pub", "Post")),
    );
    let victim = (wm_shard + 1) % subscriber.config().version_store_shards;
    // Plant the version-store state a live racer leaves behind: the live
    // stream has moved `first_seed` far past anything the copier can pin,
    // so the recovery's re-copy of that row must be discarded as stale
    // (reconciled) instead of regressing the replica.
    let raced_key = subscriber
        .config()
        .dep_space
        .key(&DepName::object("pub", "Post", first_seed));
    subscriber
        .sub_store()
        .advance_latest(raced_key, u64::MAX / 2)
        .unwrap();
    let pre_reconciled = subscriber.bootstrap_stats().records_reconciled;
    {
        let (hook, _) = &mut *bridge.lock().unwrap();
        let at = hook.entries("copying") + 3;
        hook.on_entry(
            "copying",
            at,
            FaultKind::KillShard {
                side: Side::Subscriber,
                shard: victim,
            },
        );
    }
    let aftershock = subscriber.bootstrap_from(&publisher);
    assert!(
        aftershock.is_err(),
        "the mid-copy shard kill must fail the aftershock attempt"
    );
    assert!(subscriber.sub_store().is_dead());
    assert!(!subscriber.orm().is_bootstrap());
    assert!(
        subscriber.bootstrap_stats().retries >= 1,
        "the dead shard was retried under the policy before failing"
    );
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(
        !subscriber.sub_store().is_dead(),
        "re-entry revives the dead subscriber store"
    );
    let final_stats = subscriber.bootstrap_stats();
    assert_eq!(final_stats.completions, 2);
    assert!(
        final_stats.resumes >= 2,
        "the aftershock recovery also resumed from its watermark"
    );
    assert!(
        final_stats.records_reconciled > pre_reconciled,
        "the raced row was reconciled, not re-applied"
    );
    assert_eq!(
        subscriber.orm().count("Post").unwrap(),
        pub_rows.len() as u64,
        "the aftershock recovery must not lose or duplicate rows"
    );
    // The reconciled row kept its converged content: no regression.
    let raced = subscriber.orm().find("Post", first_seed).unwrap().unwrap();
    let truth = publisher.orm().find("Post", first_seed).unwrap().unwrap();
    assert_eq!(raced.get("body"), truth.get("body"));
    {
        let (hook, injector) = &*bridge.lock().unwrap();
        assert!(hook.exhausted(), "every phase-aimed fault fired");
        assert!(hook.entries("copying") >= 8);
        assert!(hook.entries("snapshot") >= 4);
        assert_eq!(injector.stats().broker_restarts, 1);
        assert_eq!(injector.stats().shard_kills, 1);
    }

    // Live replication still works end to end.
    let fresh = publisher
        .orm()
        .create("Post", vmap! { "body" => "post-aftershock", "version" => 9999 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    eco.stop_all();
}

/// The pinned-seed run (`SYNAPSE_SEED` reproduces a specific schedule).
#[test]
fn mid_copy_faults_fail_attempts_then_resume_converges() {
    run_live_bootstrap(seed_of_record());
}

/// Ten-seed sweep, opt-in via `SYNAPSE_BOOTSTRAP_SWEEP=1`: the invariants
/// must hold across schedules, not just under the seed of record.
#[test]
fn ten_seed_sweep_holds_the_invariants() {
    if std::env::var("SYNAPSE_BOOTSTRAP_SWEEP").as_deref() != Ok("1") {
        eprintln!("live_bootstrap sweep skipped (set SYNAPSE_BOOTSTRAP_SWEEP=1 to run)");
        return;
    }
    let base = seed_of_record();
    for i in 0..10u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        eprintln!("sweep {i}: seed {seed:#x}");
        run_live_bootstrap(seed);
    }
}
