//! Live-bootstrap soak: watermark-interleaved recovery under an active
//! fault plane.
//!
//! The scenario the §4.4 rebuild exists for: a subscriber bootstraps from
//! a publisher *while* a writer keeps publishing and the fault plane keeps
//! firing. The copy is DBLog-style — lo/hi watermark markers bracket each
//! chunk select, survivors merge into the partitioned delivery queue
//! behind live traffic, and there is no drain pause. Three deterministic
//! fault classes strike *inside* the protocol:
//!
//! * an armed chunk-copy fault (the transient-engine class) exhausts the
//!   retry policy on attempt 1's third chunk, after two chunk watermarks
//!   committed;
//! * a [`PhaseHook`]-aimed broker restart fires on the fifth `copying`
//!   entry, i.e. in the middle of the *resumed* copy;
//! * after convergence, a phase-aimed subscriber version-store shard kill
//!   strikes a later recovery mid-copy (the aftershock), and re-entering
//!   `bootstrap_from` must revive the store and reconverge.
//!
//! A seeded `FaultPlan` keeps background pressure on the pipeline for the
//! whole write horizon (publish failures, broker restarts, db write
//! errors, latency spikes).
//!
//! Asserted invariants, per seed:
//!
//! * every failed attempt clears the bootstrap flag and leaves the node
//!   writable (the stuck-flag regression, under live fire);
//! * converging attempts resume from the last chunk watermark instead of
//!   restarting the copy (`resumes` grows with each recovery);
//! * convergence is exact: row-for-row equality with equal counts — no
//!   lost records, no double-applied rows, no phantom rows — with zero
//!   dead-letters and zero broker drops/discards;
//! * chunk/live reconciliation really happened (`records_reconciled >= 1`)
//!   and the copy actually rode the delivery queue (`copies_merged >= 1`).
//!
//! Two further tests pin the rebuild's headline claims directly:
//! [`bootstrap_interleaves_without_stalling_live_delivery`] (queue
//! residency and delivery-gap bounds while a copy runs) and
//! [`delete_mid_chunk_is_not_resurrected_by_its_in_flight_copy`] (the
//! stale-copy resurrection regression).
//!
//! `SYNAPSE_SEED=<n>` pins the schedule; `SYNAPSE_BOOTSTRAP_SWEEP=1`
//! additionally runs a 10-seed sweep derived from the seed of record.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use synapse_repro::core::{
    BootstrapPhase, BootstrapState, DepName, Ecosystem, ModeSlice, Publication, RetryPolicy, Stage,
    Subscription, SynapseConfig, SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{
    FaultClock, FaultEvent, FaultKind, FaultPlan, FaultSpec, Injector, PhaseHook, SeededRng, Side,
};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

/// Seed of record: `SYNAPSE_SEED=<n>` reproduces a specific schedule.
fn seed_of_record() -> u64 {
    std::env::var("SYNAPSE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

/// Ops the writer thread attempts while the bootstrap runs.
const OPS: u64 = 160;
/// Rows seeded before the subscriber's queue is even bound: history that
/// can only arrive through the chunked object copy.
const SEED_ROWS: usize = 120;

/// One full soak run. Panics on any violated invariant.
fn run_live_bootstrap(seed: u64) {
    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(1)
            // The retry budget must exceed the worst contiguous burst the
            // plan can arm: nack requeues at the queue front, so stacked
            // db-error bursts are consumed consecutively by one delivery.
            .retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_micros(200),
                jitter_seed: seed,
            })
            .bootstrap_chunk(16)
            .bootstrap_window_timeout(Duration::from_millis(250)),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();
    // A purely local model, to prove the node stays writable after a
    // failed attempt.
    subscriber
        .orm()
        .define_model(ModelSchema::open("Note"))
        .unwrap();

    let mut seeded_ids = Vec::with_capacity(SEED_ROWS);
    for i in 0..SEED_ROWS {
        let row = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("seed-{i}"), "version" => i as i64 },
            )
            .unwrap();
        seeded_ids.push(row.id);
    }
    let first_seed = seeded_ids[0];
    eco.connect();
    subscriber.start();

    // --- Phase-aimed faults: strike *inside* the protocol. ---
    // Entries are 1-based per phase label; entry 5 lands mid-way through
    // the *resumed* copy (attempt 1 dies on its third `copying` entry).
    let mut hook = PhaseHook::new();
    hook.on_entry("copying", 5, FaultKind::BrokerRestart);
    let phase_injector = Injector::new(eco.broker().clone(), "sub")
        .with_store(Side::Subscriber, subscriber.sub_store().clone());
    let bridge = Arc::new(Mutex::new((hook, phase_injector)));
    // Chunk-copy fault for attempt 1: the first time the copier enters its
    // third chunk (two watermarks already committed), arm exactly one
    // retry budget's worth of transient copy failures — the chunk retries,
    // exhausts the policy, and the attempt dies mid-step-2.
    let copy_fault_armed = Arc::new(AtomicBool::new(false));
    {
        let bridge = bridge.clone();
        let copy_fault_armed = copy_fault_armed.clone();
        let fault_target = subscriber.clone();
        let budget = subscriber.config().retry.max_attempts as u64;
        subscriber.set_bootstrap_probe(move |state| {
            if let BootstrapState::Copying { chunk: 2, .. } = state {
                if !copy_fault_armed.swap(true, Ordering::SeqCst) {
                    fault_target.inject_copy_failures(budget);
                }
            }
            let label = match state.phase() {
                BootstrapPhase::Snapshot => "snapshot",
                BootstrapPhase::Copying => "copying",
                BootstrapPhase::Reconciling => "reconciling",
                BootstrapPhase::Finalizing => "finalizing",
                BootstrapPhase::Idle | BootstrapPhase::Live => return,
            };
            let (hook, injector) = &mut *bridge.lock().unwrap();
            hook.enter(label, injector);
        });
    }

    // --- Background pressure: a seeded plan over the write horizon. ---
    // Raw broker drops are real message loss and plan-generated shard
    // kills would race the deterministic schedule (a publisher write heals
    // its own store via a generation bump, §4.4, and a subscriber revive
    // would mask the aftershock), so both classes are re-aimed at
    // transient, recoverable faults; the rest of the generated schedule
    // (publish failures, broker restarts, db errors, latency) fires as-is.
    let spec = FaultSpec {
        horizon: OPS,
        events: 10,
        shards: subscriber.config().version_store_shards,
        max_burst: 2,
        spike_micros: 100,
    };
    let events: Vec<FaultEvent> = FaultPlan::generate(seed, &spec)
        .events()
        .iter()
        .copied()
        .filter_map(|mut e| {
            match e.kind {
                FaultKind::DropMessages { n } => e.kind = FaultKind::PublishFailures { n },
                FaultKind::KillShard { .. } | FaultKind::ReviveShards { .. } => return None,
                _ => {}
            }
            Some(e)
        })
        .collect();
    let plan = FaultPlan::from_events(events);
    let plan_injector = Injector::new(eco.broker().clone(), "sub")
        .with_db(Side::Publisher, publisher.orm().db_faults())
        .with_db(Side::Subscriber, subscriber.orm().db_faults());

    // Writer thread: creates and full-row updates against the publisher,
    // ticking the plan once per op. Writes refused by an injected
    // publisher-side fault never happened and are only counted.
    let writer = {
        let publisher = publisher.clone();
        let mut plan = plan;
        let mut injector = plan_injector;
        let mut ids = seeded_ids;
        std::thread::spawn(move || {
            let clock = FaultClock::new();
            let mut driver = SeededRng::new(seed ^ 0xB007_57A9);
            let mut refused = 0u64;
            for i in 0..OPS {
                injector.apply_due(&mut plan, clock.tick());
                let result = if driver.gen_ratio(2, 5) {
                    publisher
                        .orm()
                        .create(
                            "Post",
                            vmap! { "body" => format!("live-{i}"), "version" => (5000 + i) as i64 },
                        )
                        .map(|r| ids.push(r.id))
                } else {
                    let target = ids[driver.gen_below(ids.len() as u64) as usize];
                    publisher
                        .orm()
                        .update(
                            "Post",
                            target,
                            vmap! { "body" => format!("touch-{i}"), "version" => (1000 + i) as i64 },
                        )
                        .map(|_| ())
                };
                if result.is_err() {
                    refused += 1;
                }
                std::thread::sleep(Duration::from_micros(400));
            }
            (refused, plan, injector)
        })
    };

    // --- Attempt 1: must die mid-copy on the armed chunk fault. ---
    let first = subscriber.bootstrap_from(&publisher);
    assert!(first.is_err(), "the armed chunk fault must fail attempt 1");
    assert!(
        copy_fault_armed.load(Ordering::SeqCst),
        "the copy fault armed in the copier"
    );
    assert!(
        !subscriber.orm().is_bootstrap(),
        "a failed attempt must clear the bootstrap flag even under live fire"
    );
    let failed = subscriber.bootstrap_stats();
    assert_eq!(failed.completions, 0);
    assert!(
        failed.chunks_copied >= 2,
        "chunks before the poisoned one committed watermarks"
    );
    assert_eq!(failed.phase, BootstrapPhase::Idle);
    // Writable: local models work as if no bootstrap ever ran.
    subscriber
        .orm()
        .create("Note", vmap! { "body" => "still writable" })
        .unwrap();

    // --- Re-entry under live fire: resume from the watermark. ---
    // The writer is still publishing and the plan is still firing; the
    // resumed copy also runs through the phase-aimed broker restart.
    let mut extra_failures = 0;
    loop {
        match subscriber.bootstrap_from(&publisher) {
            Ok(()) => break,
            Err(e) => {
                assert!(!subscriber.orm().is_bootstrap());
                extra_failures += 1;
                assert!(extra_failures < 20, "bootstrap never converged: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // --- Writer finishes; heal the pipeline and settle. ---
    let (refused, mut plan, mut injector) = writer.join().unwrap();
    injector.apply_due(&mut plan, u64::MAX);
    publisher.orm().db_faults().disarm();
    subscriber.orm().db_faults().disarm();
    // Republishing the journal can itself eat residual armed publish
    // failures; drive it until the journal is empty.
    for _ in 0..5 {
        publisher.publisher().recover();
        if publisher.publisher().journal_len() == 0 {
            break;
        }
    }
    assert_eq!(publisher.publisher().journal_len(), 0, "journal must drain");
    assert!(
        subscriber.subscriber().drain(Duration::from_secs(30)),
        "backlog must drain once the pipeline heals"
    );

    // --- Convergence: exact, with nothing lost and nothing doubled. ---
    let pub_rows = publisher.orm().all("Post").unwrap();
    let sub_rows = subscriber.orm().all("Post").unwrap();
    assert!(pub_rows.len() >= SEED_ROWS);
    assert!(refused < OPS, "the writer must have made progress");
    assert_eq!(
        sub_rows.len(),
        pub_rows.len(),
        "no lost records and no phantom (double-applied) rows"
    );
    for row in &pub_rows {
        let replica = subscriber
            .orm()
            .find("Post", row.id)
            .unwrap()
            .unwrap_or_else(|| panic!("row {} lost across the bootstrap", row.id));
        assert_eq!(replica.get("body"), row.get("body"), "row {}", row.id);
        assert_eq!(replica.get("version"), row.get("version"), "row {}", row.id);
    }
    let dl = subscriber.dead_letters();
    assert!(
        dl.is_empty(),
        "no delivery may dead-letter in this soak: {dl:?}"
    );
    let broker_stats = eco.broker().stats();
    assert_eq!(broker_stats.dropped, 0, "no silent broker loss");
    assert_eq!(broker_stats.discarded, 0, "no decommission happened");

    let stats = subscriber.bootstrap_stats();
    assert!(stats.attempts >= 2);
    assert_eq!(stats.completions, 1);
    assert!(
        stats.resumes >= 1,
        "the converging attempt must resume from the chunk watermark"
    );
    assert!(
        stats.copies_merged >= 1,
        "the interleaved copy must ride the delivery queue, not a side door"
    );
    assert!(
        stats.records_copied as usize + stats.records_reconciled as usize >= SEED_ROWS,
        "the copy must cover every seeded row, applied or reconciled"
    );
    assert_eq!(stats.phase, BootstrapPhase::Live);
    assert!(!subscriber.orm().is_bootstrap());

    // --- Aftershock: a subscriber store shard dies mid-copy. ---
    // A phase-aimed kill strikes the third chunk of the next recovery; the
    // attempt fails after retrying the dead shard, a re-entry revives the
    // store, resumes past the aftershock watermark, and reconverges.
    let wm_shard = subscriber.sub_store().shard_for(
        subscriber
            .config()
            .dep_space
            .key(&DepName::bootstrap_watermark("pub", "Post")),
    );
    let victim = (wm_shard + 1) % subscriber.config().version_store_shards;
    // Plant the version-store state a live racer leaves behind: the live
    // stream has moved `first_seed` far past anything the copier can pin,
    // so the recovery's re-copy of that row must be discarded as stale
    // (reconciled) instead of regressing the replica.
    let raced_key = subscriber
        .config()
        .dep_space
        .key(&DepName::object("pub", "Post", first_seed));
    subscriber
        .sub_store()
        .advance_latest(raced_key, u64::MAX / 2)
        .unwrap();
    let pre_reconciled = subscriber.bootstrap_stats().records_reconciled;
    {
        let (hook, _) = &mut *bridge.lock().unwrap();
        let at = hook.entries("copying") + 3;
        hook.on_entry(
            "copying",
            at,
            FaultKind::KillShard {
                side: Side::Subscriber,
                shard: victim,
            },
        );
    }
    let aftershock = subscriber.bootstrap_from(&publisher);
    assert!(
        aftershock.is_err(),
        "the mid-copy shard kill must fail the aftershock attempt"
    );
    assert!(subscriber.sub_store().is_dead());
    assert!(!subscriber.orm().is_bootstrap());
    assert!(
        subscriber.bootstrap_stats().retries >= 1,
        "the dead shard was retried under the policy before failing"
    );
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(
        !subscriber.sub_store().is_dead(),
        "re-entry revives the dead subscriber store"
    );
    // Copies merged by the failed aftershock attempt may still be settling
    // behind this attempt's; wait for the queue to empty before counting.
    assert!(
        subscriber.subscriber().drain(Duration::from_secs(30)),
        "merged copies settle after the aftershock recovery"
    );
    let final_stats = subscriber.bootstrap_stats();
    assert_eq!(final_stats.completions, 2);
    assert!(
        final_stats.resumes >= 2,
        "the aftershock recovery also resumed from its watermark"
    );
    assert!(
        final_stats.records_reconciled > pre_reconciled,
        "the raced rows were reconciled, not re-applied"
    );
    assert_eq!(
        subscriber.orm().count("Post").unwrap(),
        pub_rows.len() as u64,
        "the aftershock recovery must not lose or duplicate rows"
    );
    // The reconciled row kept its converged content: no regression.
    let raced = subscriber.orm().find("Post", first_seed).unwrap().unwrap();
    let truth = publisher.orm().find("Post", first_seed).unwrap().unwrap();
    assert_eq!(raced.get("body"), truth.get("body"));
    {
        let (hook, injector) = &*bridge.lock().unwrap();
        assert!(hook.exhausted(), "every phase-aimed fault fired");
        assert!(hook.entries("copying") >= 8);
        assert!(hook.entries("snapshot") >= 4);
        assert!(
            hook.entries("reconciling") >= 4,
            "interleaved chunks reconciled against their watermark windows"
        );
        assert_eq!(injector.stats().broker_restarts, 1);
        assert_eq!(injector.stats().shard_kills, 1);
    }

    // Live replication still works end to end.
    let fresh = publisher
        .orm()
        .create(
            "Post",
            vmap! { "body" => "post-aftershock", "version" => 9999 },
        )
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    eco.stop_all();
}

/// The pinned-seed run (`SYNAPSE_SEED` reproduces a specific schedule).
#[test]
fn mid_copy_faults_fail_attempts_then_resume_converges() {
    run_live_bootstrap(seed_of_record());
}

/// Ten-seed sweep, opt-in via `SYNAPSE_BOOTSTRAP_SWEEP=1`: the invariants
/// must hold across schedules, not just under the seed of record.
#[test]
fn ten_seed_sweep_holds_the_invariants() {
    if std::env::var("SYNAPSE_BOOTSTRAP_SWEEP").as_deref() != Ok("1") {
        eprintln!("live_bootstrap sweep skipped (set SYNAPSE_BOOTSTRAP_SWEEP=1 to run)");
        return;
    }
    let base = seed_of_record();
    for i in 0..10u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        eprintln!("sweep {i}: seed {seed:#x}");
        run_live_bootstrap(seed);
    }
}

/// The headline claim of the rebuild, measured rather than inferred: a
/// large concurrent copy must not stall live delivery.
///
/// Phase A establishes a steady-state queue-residency baseline for live
/// (causal) deliveries; phase B runs a ~94-chunk bootstrap while a writer
/// keeps publishing. Asserts:
///
/// * live-delivery queue-residency p99 over steady state + bootstrap
///   combined stays within a small factor of the steady-state baseline —
///   a drain-style pause would park live messages for the whole copy and
///   blow the tail out by orders of magnitude;
/// * no gap between consecutive subscriber-side applies during the
///   bootstrap window exceeds 600ms — comfortably above one batch-poll
///   interval (the workers' 50ms empty-queue wait) plus scheduler noise
///   on a loaded CI host, far below the whole-copy pause (the full
///   ~1.3s bootstrap window) the old drain design imposed;
/// * copies really rode the delivery queue (weak-slice residency samples
///   and `copies_merged > 0`), and convergence is exact.
#[test]
fn bootstrap_interleaves_without_stalling_live_delivery() {
    const STALL_SEED_ROWS: usize = 1500;
    const STEADY_OPS: u64 = 300;
    const BOOT_OPS: u64 = 900;

    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(2)
            .bootstrap_chunk(16)
            .bootstrap_window_timeout(Duration::from_millis(250)),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();

    // Apply clock: every subscriber-side Post write stamps the shared
    // vector; gaps between stamps measure delivery liveness.
    let t0 = Instant::now();
    let applies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    for point in [CallbackPoint::AfterCreate, CallbackPoint::AfterUpdate] {
        let applies = applies.clone();
        subscriber.orm().on("Post", point, move |_ctx, _record| {
            applies.lock().unwrap().push(t0.elapsed().as_nanos() as u64);
            Ok(())
        });
    }

    for i in 0..STALL_SEED_ROWS {
        publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("seed-{i}"), "version" => i as i64 },
            )
            .unwrap();
    }
    eco.connect();
    subscriber.start();

    // --- Phase A: live-only steady state, then baseline. ---
    for i in 0..STEADY_OPS {
        publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("steady-{i}"), "version" => 0_i64 },
            )
            .unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(subscriber.subscriber().drain(Duration::from_secs(30)));
    let steady = subscriber.telemetry_snapshot();
    let steady_live = steady.stage(ModeSlice::Causal, Stage::QueueResidency);
    let (steady_count, steady_p99) = (steady_live.count, steady_live.p99_nanos);
    assert!(
        steady_count > 0,
        "steady live deliveries recorded residency"
    );

    // --- Phase B: the copy runs while the writer keeps publishing. ---
    let writer = {
        let publisher = publisher.clone();
        std::thread::spawn(move || {
            for i in 0..BOOT_OPS {
                publisher
                    .orm()
                    .create(
                        "Post",
                        vmap! { "body" => format!("live-{i}"), "version" => (5000 + i) as i64 },
                    )
                    .unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let boot_started = t0.elapsed().as_nanos() as u64;
    subscriber.bootstrap_from(&publisher).unwrap();
    let boot_ended = t0.elapsed().as_nanos() as u64;
    writer.join().unwrap();
    assert!(subscriber.subscriber().drain(Duration::from_secs(30)));

    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert_eq!(stats.phase, BootstrapPhase::Live);
    assert!(
        stats.copies_merged > 0,
        "the copy must ride the partitioned delivery queue"
    );
    assert_eq!(
        subscriber.orm().count("Post").unwrap(),
        publisher.orm().count("Post").unwrap(),
        "exact convergence with a writer racing the whole copy"
    );

    // (1) Residency tail: combined steady+bootstrap p99 within a small
    // factor of the steady baseline (floored to absorb scheduler noise on
    // loaded CI machines). The bootstrap window contributes at least as
    // many live samples as steady state, so a drain-style stall — live
    // messages parked for the duration of a ~94-chunk copy — cannot hide
    // from the combined tail.
    let after = subscriber.telemetry_snapshot();
    let live_after = after.stage(ModeSlice::Causal, Stage::QueueResidency);
    assert!(
        live_after.count > steady_count,
        "live deliveries continued during the bootstrap"
    );
    let bound = (steady_p99.saturating_mul(10)).max(25_000_000);
    assert!(
        live_after.p99_nanos <= bound,
        "live queue-residency p99 {}µs exceeds {}µs (10x steady-state p99 {}µs, floored at 25ms): \
         the copy stalled live delivery",
        live_after.p99_nanos / 1_000,
        bound / 1_000,
        steady_p99 / 1_000,
    );
    assert!(
        after.stage(ModeSlice::Weak, Stage::QueueResidency).count > 0,
        "merged copies are telemetered through the same residency stage"
    );

    // (2) Delivery-gap bound across the bootstrap window.
    let stamps = applies.lock().unwrap().clone();
    let mut in_window: Vec<u64> = stamps
        .into_iter()
        .filter(|t| (boot_started..=boot_ended).contains(t))
        .collect();
    in_window.sort_unstable();
    assert!(
        !in_window.is_empty(),
        "deliveries must apply during the bootstrap window"
    );
    let mut max_gap = 0u64;
    let mut prev = boot_started;
    for t in &in_window {
        max_gap = max_gap.max(t - prev);
        prev = *t;
    }
    max_gap = max_gap.max(boot_ended - prev);
    assert!(
        max_gap < 600_000_000,
        "a {}ms delivery gap opened during the bootstrap window ({}ms total)",
        max_gap / 1_000_000,
        (boot_ended - boot_started) / 1_000_000,
    );
    eco.stop_all();
}

/// The stale-copy resurrection regression, seeded deterministically: a row
/// is deleted on the publisher *after* its chunk was selected but *before*
/// the chunk merges — the in-flight copy must lose to the tombstone.
///
/// The destroy is fired from the bootstrap probe on the chunk's
/// `Reconciling` transition, which by construction sits between the page
/// select and the merge publish. Both the live destroy and the merged copy
/// are key-routed to the same partition, so the tombstone applies first
/// and copy admission must refuse the resurrection.
#[test]
fn delete_mid_chunk_is_not_resurrected_by_its_in_flight_copy() {
    let eco = Ecosystem::new();
    let publisher = mongo_node(&eco, SynapseConfig::new("pub"));
    publisher
        .publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    let subscriber = mongo_node(
        &eco,
        SynapseConfig::new("sub")
            .wait_timeout(Some(Duration::from_millis(50)))
            .workers(1)
            .bootstrap_chunk(16),
    );
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
        .unwrap();

    let mut ids = Vec::new();
    for i in 0..64 {
        let row = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("seed-{i}"), "version" => i as i64 },
            )
            .unwrap();
        ids.push(row.id);
    }
    eco.connect();
    subscriber.start();

    // A row in the middle of chunk 1 (rows 17–32 in id order).
    let victim = ids[20];
    let fired = Arc::new(AtomicBool::new(false));
    {
        let publisher = publisher.clone();
        let fired = fired.clone();
        subscriber.set_bootstrap_probe(move |state| {
            if let BootstrapState::Reconciling { chunk: 1, .. } = state {
                if !fired.swap(true, Ordering::SeqCst) {
                    // Chunk 1's page is already selected with `victim` in
                    // it; this destroy races the merge.
                    publisher.orm().destroy("Post", victim).unwrap();
                }
            }
        });
    }
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(fired.load(Ordering::SeqCst), "the destroy raced chunk 1");
    assert!(subscriber.subscriber().drain(Duration::from_secs(30)));

    assert!(publisher.orm().find("Post", victim).unwrap().is_none());
    assert!(
        subscriber.orm().find("Post", victim).unwrap().is_none(),
        "a row deleted mid-chunk must not be resurrected by its in-flight copy"
    );
    assert_eq!(subscriber.orm().count("Post").unwrap(), 63);
    let stats = subscriber.bootstrap_stats();
    assert!(
        stats.records_reconciled >= 1,
        "the raced copy was reconciled away, not silently lost"
    );
    assert!(subscriber.dead_letters().is_empty());
    eco.stop_all();
}
