//! Crash-restart soak: the durability plane under a seeded kill schedule.
//!
//! Two layers, one invariant — **acked work never resurrects and
//! durably-accepted work never vanishes**, no matter where the process
//! dies:
//!
//! * **Broker layer** (`wal_survives_every_crash_point`): a seeded
//!   [`CrashPlan`] drives rounds of publish/pop/ack against a durable
//!   broker and kills it at a rotating crash point — mid-append (a torn
//!   frame poisons the log), torn tail (garbage bytes after the last good
//!   frame), dropped fsyncs followed by power failure (the disk lied),
//!   a crash right after a checkpoint compaction, and mid-group-commit
//!   (a leader's multi-frame staged batch reaches disk only as a strict
//!   prefix). Every reopen must replay
//!   a consistent prefix: all durably-confirmed unacked messages present,
//!   no acked message redelivered, no phantom payloads.
//! * **Node layer** (`node_recovery_resumes_interrupted_bootstrap`): a
//!   subscriber with the durability plane on dies mid-bootstrap (an armed
//!   chunk-copy fault kills the interleaved copy after two watermarks
//!   committed — their lo/hi marker records already in the broker WAL),
//!   persists a version-store snapshot, and is rebuilt from disk after a
//!   torn-tail corruption of the active segment. Recovery must truncate
//!   the tear, load the snapshot *before traffic* (asserted through the
//!   `recovery.*` telemetry counters), replay the broker WAL — watermark
//!   markers included — and the next `bootstrap_from` must resume from
//!   the snapshot-carried watermark as a delta copy (`resumes >= 1`,
//!   `records_copied` strictly below a full re-copy) rather than
//!   restarting from row zero.
//!
//! `SYNAPSE_SEED=<n>` pins the schedule; `SYNAPSE_CRASH_SWEEP=1` runs a
//! ten-seed sweep of the broker soak on top of the seed of record.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::broker::{Broker, FsyncPolicy, QueueConfig, SharedStr, WalConfig};
use synapse_repro::core::{Ecosystem, Publication, Subscription, SynapseConfig, SynapseNode};
use synapse_repro::db::LatencyModel;
use synapse_repro::faults::{CrashPlan, CrashPoint, SeededRng};
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

/// Seed of record: `SYNAPSE_SEED=<n>` reproduces a specific schedule.
fn seed_of_record() -> u64 {
    std::env::var("SYNAPSE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

/// Fresh unique directory under the system temp dir (no external tempfile
/// crate in this workspace).
fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "synapse-crash-restart-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The highest-numbered WAL segment file in `dir` — the active tail the
/// torn-tail faults damage.
fn latest_segment(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("wal dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("segment-") && n.ends_with(".wal"))
        })
        .max()
        .expect("at least one segment")
}

/// Appends `n` garbage bytes to the active segment: the on-disk residue of
/// an append that died partway (a torn tail the next open must truncate).
fn tear_tail(dir: &std::path::Path, n: u64) {
    use std::io::Write;
    let path = latest_segment(dir);
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open segment");
    file.write_all(&vec![0xFF; n as usize]).expect("tear tail");
    file.sync_all().expect("sync torn tail");
}

/// Rounds in the broker-layer soak. The crash-point rotation in
/// [`CrashPlan::generate`] guarantees all five points fire within any
/// window of five rounds, so six rounds cover every point at least once.
const ROUNDS: usize = 6;
/// Upper bound on publishes per round (the plan draws `after_ops` from
/// `1..=OPS_PER_ROUND`).
const OPS_PER_ROUND: u64 = 40;

/// One full broker-layer soak run. Panics on any violated invariant.
fn run_crash_soak(seed: u64) {
    let dir = temp_dir("broker");
    // EveryWrite makes publish-Ok a durability promise (the frame is
    // synced before the call returns), which is what the zero-acked-loss
    // ledger below audits. Small segments force mid-soak rolls so replay
    // crosses segment boundaries.
    let cfg = || {
        WalConfig::new(&dir)
            .segment_max_bytes(4096)
            .fsync(FsyncPolicy::EveryWrite)
    };
    let plan = CrashPlan::generate(seed, ROUNDS, OPS_PER_ROUND);
    let mut rng = SeededRng::new(seed ^ 0xC4A5_4B17);

    // The durability ledger. `confirmed`: publish returned Ok under a
    // truthful disk and no ack was ever durably logged — these MUST
    // survive every crash. `acked`: an ack was durably logged — these must
    // NEVER be redelivered. `suspect`: published into a lying-fsync
    // window — they may or may not survive (the disk lied, not the WAL),
    // but if they do survive they are real deliveries, not phantoms.
    let mut confirmed: BTreeSet<String> = BTreeSet::new();
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut suspect: BTreeSet<String> = BTreeSet::new();
    let mut seq = 0u64;
    let mut total_replayed = 0u64;
    let mut total_torn = 0u64;
    let mut points_fired: BTreeSet<&'static str> = BTreeSet::new();

    for (round, event) in plan.events.iter().enumerate() {
        let (broker, report) = Broker::open_durable(cfg()).expect("open_durable never fails");
        total_replayed += report.replayed_entries;
        total_torn += report.torn_entries_dropped;
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        let consumer = broker.consumer("q").expect("queue declared");

        // --- Audit the recovered state against the ledger. ---
        let mut present: BTreeMap<String, u64> = BTreeMap::new();
        while let Some(d) = consumer.pop(Duration::ZERO) {
            present.insert(d.payload.as_str().to_owned(), d.tag);
        }
        for p in &acked {
            assert!(
                !present.contains_key(p),
                "round {round}: acked payload {p:?} resurrected after restart"
            );
        }
        for p in &confirmed {
            assert!(
                present.contains_key(p),
                "round {round}: durably-confirmed payload {p:?} lost across restart"
            );
        }
        for p in present.keys() {
            assert!(
                confirmed.contains(p) || suspect.contains(p),
                "round {round}: phantom payload {p:?} replayed from nowhere"
            );
        }

        // Retire survivors of the last lying-fsync window: acking them now
        // (under a truthful disk again) makes the ack durable.
        for p in std::mem::take(&mut suspect) {
            if let Some(&tag) = present.get(&p) {
                assert!(consumer.ack(tag), "ack of recovered suspect");
                acked.insert(p);
            }
        }
        // Ack a seeded subset of the confirmed backlog.
        for p in confirmed.clone() {
            if rng.gen_ratio(1, 2) {
                let tag = present[&p];
                assert!(consumer.ack(tag), "ack of confirmed payload");
                confirmed.remove(&p);
                acked.insert(p);
            }
        }
        // Seeded checkpoint: compact history so replay also runs from a
        // Checkpoint record (with live unacked state) instead of raw
        // enqueues only.
        if rng.gen_ratio(1, 3) {
            broker.checkpoint().expect("checkpoint");
        }

        // --- This round's write traffic. ---
        for _ in 0..event.after_ops {
            let p = format!("r{round}-m{seq}");
            seq += 1;
            broker.publish("x", p.as_str()).expect("healthy publish");
            confirmed.insert(p);
        }

        // --- Kill the process at the plan's crash point. ---
        match event.point {
            CrashPoint::MidAppend => {
                points_fired.insert("mid-append");
                let wal = broker.wal().expect("durable broker has a wal");
                wal.inject_partial_append(event.cut_back % 7);
                let p = format!("r{round}-torn-{seq}");
                seq += 1;
                assert!(
                    broker.publish("x", p.as_str()).is_err(),
                    "a publish whose append died mid-frame must fail"
                );
                assert!(
                    broker.publish("x", "post-poison").is_err(),
                    "a poisoned log must refuse all further publishes"
                );
            }
            CrashPoint::TornTail => {
                points_fired.insert("torn-tail");
                drop(consumer);
                drop(broker);
                tear_tail(&dir, event.cut_back);
                continue;
            }
            CrashPoint::DroppedFsync => {
                points_fired.insert("dropped-fsync");
                let wal = broker.wal().expect("durable broker has a wal");
                wal.inject_drop_fsyncs(1_000);
                for _ in 0..(event.cut_back % 6 + 1) {
                    let p = format!("r{round}-lied-{seq}");
                    seq += 1;
                    if broker.publish("x", p.as_str()).is_ok() {
                        suspect.insert(p);
                    }
                }
                wal.simulate_power_failure().expect("power failure");
                assert!(
                    broker.publish("x", "post-power-failure").is_err(),
                    "a power-failed log must refuse further publishes"
                );
            }
            CrashPoint::MidSnapshot => {
                points_fired.insert("mid-snapshot");
                // Crash immediately after a checkpoint compaction: the
                // post-checkpoint tail is torn, so replay must restore the
                // whole backlog from the Checkpoint record alone.
                broker.checkpoint().expect("checkpoint before crash");
                drop(consumer);
                drop(broker);
                tear_tail(&dir, event.cut_back);
                continue;
            }
            CrashPoint::MidGroupCommit => {
                points_fired.insert("mid-group-commit");
                let wal = broker.wal().expect("durable broker has a wal");
                // The cut lands somewhere inside a four-frame staged batch
                // (write_batch always clamps to a strict prefix): complete
                // prefix frames reach disk and replay as live, the cut
                // frame is torn-tail truncated on reopen.
                wal.inject_partial_append(20 + event.cut_back * 3);
                let mut batch: Vec<(SharedStr, u64, u64)> = Vec::new();
                let mut staged: Vec<String> = Vec::new();
                for i in 0..4u64 {
                    let p = format!("r{round}-gc-{seq}");
                    seq += 1;
                    staged.push(p.clone());
                    batch.push((SharedStr::from(p), 0, 1 + i));
                }
                assert!(
                    broker.publish_batch_routed("x", batch).is_err(),
                    "a batch whose group commit died mid-write must fail"
                );
                // The publisher saw Err, so none of these are promised.
                // Complete prefix frames may still replay as live —
                // at-least-once allows their presence but forbids
                // requiring them, exactly the `suspect` contract.
                suspect.extend(staged);
                assert!(
                    broker.publish("x", "post-batch-poison").is_err(),
                    "a poisoned log must refuse all further publishes"
                );
            }
        }
        drop(consumer);
        drop(broker);
    }

    // --- Final convergence: drain everything after the last crash. ---
    let (broker, report) = Broker::open_durable(cfg()).expect("final open");
    total_replayed += report.replayed_entries;
    total_torn += report.torn_entries_dropped;
    broker.declare_queue("q", QueueConfig::default());
    let consumer = broker.consumer("q").expect("queue declared");
    let mut survivors = BTreeSet::new();
    while let Some(d) = consumer.pop(Duration::ZERO) {
        survivors.insert(d.payload.as_str().to_owned());
        assert!(consumer.ack(d.tag));
    }
    for p in &confirmed {
        assert!(
            survivors.contains(p),
            "confirmed payload {p:?} lost by the end of the soak"
        );
    }
    for p in &acked {
        assert!(
            !survivors.contains(p),
            "acked payload {p:?} redelivered at the end of the soak"
        );
    }
    for p in &survivors {
        assert!(
            confirmed.contains(p) || suspect.contains(p),
            "phantom payload {p:?} in the final drain"
        );
    }
    assert_eq!(
        points_fired.len(),
        CrashPoint::ALL.len(),
        "the rotation must exercise every crash point: {points_fired:?}"
    );
    assert!(total_replayed > 0, "recovery replayed WAL entries");
    assert!(
        total_torn >= 1,
        "torn-tail rounds must be detected and truncated"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The pinned-seed broker-layer run.
#[test]
fn wal_survives_every_crash_point() {
    run_crash_soak(seed_of_record());
}

/// Ten-seed sweep, opt-in via `SYNAPSE_CRASH_SWEEP=1`.
#[test]
fn ten_seed_sweep_holds_the_invariants() {
    if std::env::var("SYNAPSE_CRASH_SWEEP").as_deref() != Ok("1") {
        eprintln!("crash_restart sweep skipped (set SYNAPSE_CRASH_SWEEP=1 to run)");
        return;
    }
    let base = seed_of_record();
    for i in 0..10u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        eprintln!("sweep {i}: seed {seed:#x}");
        run_crash_soak(seed);
    }
}

/// Partitioned-layout crash point: keyed publishes land in
/// hash-determined partitions; after a torn-tail crash, WAL replay must
/// rebuild the exact same partition membership (the tag's hint byte is
/// the routing fact of record, so it needs no extra log records), with
/// every durably-unacked message back in its home partition in publish
/// order and nothing acked resurrected. In-flight pops are not logged —
/// only acks are — so a reopen deterministically restores "published
/// minus acked", per partition.
#[test]
fn partition_layout_survives_reopen() {
    use synapse_repro::broker::tag_hint;

    const PARTS: usize = 8;
    const KEYS: u64 = 12;
    let dir = temp_dir("partition-layout");
    let cfg = || {
        WalConfig::new(&dir)
            .segment_max_bytes(4096)
            .fsync(FsyncPolicy::EveryWrite)
    };
    let qcfg = QueueConfig {
        max_len: None,
        partitions: PARTS,
    };
    let home = |key: u64| (key % 256) as usize % PARTS;

    let (broker, _) = Broker::open_durable(cfg()).expect("first open");
    broker.declare_queue("q", qcfg.clone());
    broker.bind("x", "q");
    let consumer = broker.consumer("q").expect("queue declared");

    // 48 keyed messages over 12 keys, payloads carrying (key, sequence).
    let mut published: BTreeMap<u64, u64> = BTreeMap::new();
    for i in 0..48u64 {
        let key = 1 + i % KEYS;
        let seq = published.entry(key).or_default();
        broker
            .publish_routed("x", format!("k{key}-{seq}"), 0, key)
            .expect("healthy publish");
        *seq += 1;
    }

    // Crash with a mixed ledger: a few in-flight (popped, never acked —
    // these must come back), a few durably acked (must not), the rest
    // never popped.
    let inflight = consumer.pop_batch_from(home(3), 3, Duration::ZERO);
    assert_eq!(inflight.len(), 3, "partition for key 3 had a backlog");
    let mut acked: BTreeMap<u64, u64> = BTreeMap::new();
    for d in consumer.pop_batch_from(home(5), 2, Duration::ZERO) {
        assert!(consumer.ack(d.tag));
        let key = tag_hint(d.tag) as u64; // keys 1..=12 < 256: the hint is the key
        *acked.entry(key).or_default() += 1;
    }
    drop(consumer);
    drop(broker);
    tear_tail(&dir, 17);

    let (broker, report) = Broker::open_durable(cfg()).expect("reopen");
    assert!(report.replayed_entries > 0, "replay saw the keyed traffic");
    broker.declare_queue("q", qcfg);
    assert_eq!(broker.queue_partitions("q"), Some(PARTS));
    let consumer = broker.consumer("q").expect("queue declared");

    // Membership is a pure function of the replayed tags: every partition
    // holds exactly its keys' published-minus-acked messages.
    let mut expected = vec![0usize; PARTS];
    for (key, n) in &published {
        expected[home(*key)] += *n as usize;
    }
    for (key, n) in &acked {
        expected[home(*key)] -= *n as usize;
    }
    assert_eq!(
        broker.partition_depths("q").expect("partitioned queue"),
        expected,
        "reopen rebuilt the exact pre-crash partition membership"
    );

    // Drain each partition: deliveries carry their partition in the tag
    // hint, and each key replays its full sequence in publish order with
    // exactly the acked prefix missing.
    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    for p in 0..PARTS {
        loop {
            let batch = consumer.pop_batch_from(p, 16, Duration::ZERO);
            if batch.is_empty() {
                break;
            }
            for d in batch {
                assert_eq!(
                    tag_hint(d.tag) as usize % PARTS,
                    p,
                    "tag hint names its partition"
                );
                let (key, seq) = d
                    .payload
                    .as_str()
                    .strip_prefix('k')
                    .and_then(|s| s.split_once('-'))
                    .map(|(k, s)| (k.parse::<u64>().unwrap(), s.parse::<u64>().unwrap()))
                    .unwrap();
                let next = seen
                    .entry(key)
                    .or_insert_with(|| acked.get(&key).copied().unwrap_or(0));
                assert_eq!(seq, *next, "key {key} replays in publish order");
                *next += 1;
                assert!(consumer.ack(d.tag));
            }
        }
    }
    for (key, n) in &published {
        assert_eq!(
            seen.get(key).copied().unwrap_or(0),
            *n,
            "key {key} drained to its publish count"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------------------
// Node layer: snapshot + WAL recovery resumes an interrupted bootstrap.
// --------------------------------------------------------------------------

/// Rows seeded before the subscriber's queue is bound: history that can
/// only arrive through the chunked object copy.
const SEED_ROWS: usize = 48;
/// Live rows written after the failed attempt, so the broker WAL carries
/// real enqueue/ack traffic across the restart.
const LIVE_ROWS: usize = 6;

fn counter(snap: &synapse_repro::core::TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn node_recovery_resumes_interrupted_bootstrap() {
    let seed = seed_of_record();
    let root = temp_dir("node");
    let wal_dir = root.join("wal");
    let sub_dir = root.join("sub");
    // The databases play the role of the surviving disks: the same adapter
    // Arcs are handed to the rebuilt nodes after the "crash".
    let pub_adapter = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));
    let sub_adapter = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));

    let wal_cfg = || WalConfig::new(&wal_dir).fsync(FsyncPolicy::Interval(4));
    let build = |eco: &Ecosystem| -> (Arc<SynapseNode>, Arc<SynapseNode>) {
        let publisher = eco.add_node(SynapseConfig::new("pub"), pub_adapter.clone());
        publisher
            .orm()
            .define_model(ModelSchema::open("Post"))
            .unwrap();
        publisher
            .publish(Publication::model("Post").fields(&["body", "version"]))
            .unwrap();
        let subscriber = eco.add_node(
            SynapseConfig::new("sub")
                .wait_timeout(Some(Duration::from_millis(50)))
                .workers(1)
                .bootstrap_chunk(8)
                .durable(&sub_dir)
                .snapshot_every(None),
            sub_adapter.clone(),
        );
        subscriber
            .orm()
            .define_model(ModelSchema::open("Post"))
            .unwrap();
        subscriber
            .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
            .unwrap();
        (publisher, subscriber)
    };

    // --- Incarnation 1: die mid-bootstrap, persist a snapshot. ---
    let (eco, report) = Ecosystem::new_durable(wal_cfg()).expect("durable ecosystem");
    assert_eq!(report.replayed_entries, 0, "fresh log, empty recovery");
    let (publisher, subscriber) = build(&eco);

    // Mid-interleave fault: the first time the copier enters its third
    // chunk — two chunk watermarks committed, their lo/hi markers already
    // written to the broker WAL — a burst of transient copy faults
    // exhausts the retry policy and kills the attempt.
    let fault_armed = Arc::new(AtomicBool::new(false));
    {
        let fault_armed = fault_armed.clone();
        let target = subscriber.clone();
        let budget = subscriber.config().retry.max_attempts as u64;
        subscriber.set_bootstrap_probe(move |state| {
            if let synapse_repro::core::BootstrapState::Copying { chunk: 2, .. } = state {
                if !fault_armed.swap(true, Ordering::SeqCst) {
                    target.inject_copy_failures(budget);
                }
            }
        });
    }

    for i in 0..SEED_ROWS {
        publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("seed-{i}"), "version" => i as i64 },
            )
            .unwrap();
    }
    eco.connect();
    subscriber.start();

    let first = subscriber.bootstrap_from(&publisher);
    assert!(first.is_err(), "the armed chunk fault must fail attempt 1");
    assert!(
        fault_armed.load(Ordering::SeqCst),
        "the fault armed in the copier"
    );
    assert!(!subscriber.orm().is_bootstrap());
    let failed = subscriber.bootstrap_stats();
    assert_eq!(failed.completions, 0);
    assert!(
        failed.chunks_copied >= 2,
        "chunks before the poisoned one committed watermarks"
    );

    // Live traffic after the failure: the broker WAL picks up real
    // enqueue/ack records the restart will replay.
    let mut live_ids = Vec::new();
    for i in 0..LIVE_ROWS {
        let row = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("live-{i}"), "version" => (1000 + i) as i64 },
            )
            .unwrap();
        live_ids.push(row.id);
    }
    let last_live = *live_ids.last().unwrap();
    assert!(
        eventually(Duration::from_secs(5), || {
            subscriber.orm().find("Post", last_live).unwrap().is_some()
        }),
        "live replication applies even while bootstrap is incomplete"
    );

    // Persist the version-store snapshot — watermarks included. The first
    // attempt is interrupted by an injected fault; the store must keep the
    // previous-latest intact and the retry must land.
    let store = subscriber.snapshot_store().expect("durability plane is on");
    store.inject_interrupt_next();
    assert!(
        subscriber.persist_snapshot().is_err(),
        "the injected interrupt must fail this persist"
    );
    subscriber.persist_snapshot().expect("retry persists");
    let sstats = store.stats();
    assert_eq!(sstats.interrupted, 1);
    assert_eq!(sstats.persisted, 1);
    let snap = subscriber.telemetry_snapshot();
    assert_eq!(counter(&snap, "durability.snapshots_persisted"), 1);
    assert_eq!(counter(&snap, "durability.snapshots_interrupted"), 1);
    let copied_before_crash = failed.records_copied;
    assert!(copied_before_crash >= 16, "two committed chunks of eight");

    eco.stop_all();
    drop(subscriber);
    drop(publisher);
    drop(eco);

    // The crash leaves a torn tail on the active segment — garbage bytes
    // after the last good frame, as if the process died mid-append while
    // the interleaved copy's watermark markers were being logged.
    tear_tail(&wal_dir, 37);

    // --- Incarnation 2: rebuild from disk; recovery precedes traffic. ---
    // The log it replays carries the first incarnation's watermark-marker
    // records (lo/hi for the two committed chunks) alongside the enqueue/
    // ack traffic; replay must fold both and truncate the torn tail.
    let (eco, report) = Ecosystem::new_durable(wal_cfg()).expect("durable reopen");
    assert!(
        report.replayed_entries > 0,
        "the restart replays the WAL the first incarnation wrote"
    );
    assert!(
        report.torn_entries_dropped >= 1,
        "the torn tail was detected and truncated on reopen"
    );
    let (publisher, subscriber) = build(&eco);

    // Recovery telemetry: the snapshot was loaded during construction —
    // before connect/start — and the WAL replay was folded in.
    let snap = subscriber.telemetry_snapshot();
    assert_eq!(counter(&snap, "recovery.snapshots_loaded"), 1);
    assert!(
        counter(&snap, "recovery.snapshot_entries") > 0,
        "the loaded snapshot carried version entries (incl. watermarks)"
    );
    assert!(
        counter(&snap, "recovery.wal_replayed_entries") > 0,
        "the broker recovery report is visible through node telemetry"
    );
    assert_eq!(counter(&snap, "recovery.snapshot_load_errors"), 0);
    assert!(
        counter(&snap, "recovery.passes") >= 1,
        "the recovery duration histogram recorded the pass"
    );

    eco.connect();
    subscriber.start();

    // The resumed bootstrap is a delta replay: the snapshot-carried
    // watermark skips the two chunks the first incarnation copied.
    subscriber
        .bootstrap_from(&publisher)
        .expect("resumed bootstrap converges");
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert!(
        stats.resumes >= 1,
        "the watermark survived the restart via the snapshot"
    );
    let total = (SEED_ROWS + LIVE_ROWS) as u64;
    assert!(
        stats.records_copied < total,
        "delta replay: {} rows re-copied of {total} — a full re-copy means \
         the watermark was lost",
        stats.records_copied
    );

    // Exact convergence, crash or no crash.
    let pub_rows = publisher.orm().all("Post").unwrap();
    let sub_rows = subscriber.orm().all("Post").unwrap();
    assert_eq!(pub_rows.len(), SEED_ROWS + LIVE_ROWS);
    assert_eq!(
        sub_rows.len(),
        pub_rows.len(),
        "no lost and no doubled rows"
    );
    for row in &pub_rows {
        let replica = subscriber
            .orm()
            .find("Post", row.id)
            .unwrap()
            .unwrap_or_else(|| panic!("row {} lost across the crash", row.id));
        assert_eq!(replica.get("body"), row.get("body"), "row {}", row.id);
        assert_eq!(replica.get("version"), row.get("version"), "row {}", row.id);
    }

    // Live replication still works end to end, and the driver-clocked
    // snapshot cadence is live again on the rebuilt node. The rebuilt
    // publisher's in-memory id generator restarted at 1, so seed it the
    // way a restarted app would: from the database's max id.
    let next_id = synapse_repro::model::Id(pub_rows.iter().map(|r| r.id.0).max().unwrap() + 1);
    let fresh = publisher
        .orm()
        .create_with_id(
            "Post",
            next_id,
            vmap! { "body" => format!("post-crash-{seed}"), "version" => 9999 },
        )
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    subscriber
        .persist_snapshot()
        .expect("post-recovery snapshot");
    eco.stop_all();
    let _ = std::fs::remove_dir_all(&root);
}

/// Reads the 8-byte magic of the newest `state-<seq>.snap` file in `dir`.
fn latest_snapshot_magic(dir: &std::path::Path) -> [u8; 8] {
    let path = std::fs::read_dir(dir)
        .expect("snapshot dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("state-") && n.ends_with(".snap"))
        })
        .max_by_key(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| {
                    n.strip_prefix("state-")?
                        .strip_suffix(".snap")?
                        .parse::<u64>()
                        .ok()
                })
                .unwrap_or(0)
        })
        .expect("at least one snapshot file");
    let bytes = std::fs::read(&path).expect("read snapshot");
    bytes[..8].try_into().expect("snapshot has a magic header")
}

/// Mixed-format reopen: a node whose snapshot directory holds a
/// scalar-era SYNSNAP2 file (as left behind by a pre-vector binary) must
/// recover from it — entries land on the legacy vector component, replicated
/// state survives, and freshness still discards stale redeliveries. The
/// next persist upgrades the directory to the current SYNSNAP3 format,
/// which the store then prefers on a further reopen.
#[test]
fn legacy_format_snapshot_recovers_and_upgrades_on_next_persist() {
    let root = temp_dir("legacy-snap");
    let wal_dir = root.join("wal");
    let sub_dir = root.join("sub");
    let pub_adapter = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));
    let sub_adapter = Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off()));

    let wal_cfg = || WalConfig::new(&wal_dir).fsync(FsyncPolicy::Interval(4));
    let build = |eco: &Ecosystem| -> (Arc<SynapseNode>, Arc<SynapseNode>) {
        let publisher = eco.add_node(SynapseConfig::new("pub"), pub_adapter.clone());
        publisher
            .orm()
            .define_model(ModelSchema::open("Post"))
            .unwrap();
        publisher
            .publish(Publication::model("Post").fields(&["body", "version"]))
            .unwrap();
        let subscriber = eco.add_node(
            SynapseConfig::new("sub")
                .wait_timeout(Some(Duration::from_millis(50)))
                .workers(1)
                .durable(&sub_dir)
                .snapshot_every(None),
            sub_adapter.clone(),
        );
        subscriber
            .orm()
            .define_model(ModelSchema::open("Post"))
            .unwrap();
        subscriber
            .subscribe(Subscription::model("Post", "pub").fields(&["body", "version"]))
            .unwrap();
        (publisher, subscriber)
    };

    // --- Incarnation 1: replicate some rows, persist a snapshot. ---
    let (eco, _) = Ecosystem::new_durable(wal_cfg()).expect("durable ecosystem");
    let (publisher, subscriber) = build(&eco);
    eco.connect();
    eco.start_all();
    let mut ids = Vec::new();
    for i in 0..12 {
        let row = publisher
            .orm()
            .create(
                "Post",
                vmap! { "body" => format!("v2-era-{i}"), "version" => i as i64 },
            )
            .unwrap();
        ids.push(row.id);
    }
    let last = *ids.last().unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", last).unwrap().is_some()
    }));
    subscriber.persist_snapshot().expect("snapshot persists");
    let store = subscriber.snapshot_store().expect("durability plane is on");
    let snap_dir = store.dir().to_path_buf();
    assert_eq!(latest_snapshot_magic(&snap_dir), *b"SYNSNAP3");
    eco.stop_all();
    drop((subscriber, publisher, eco));

    // Downgrade the on-disk file to the scalar-era format in place — the
    // directory now looks exactly as a pre-vector binary left it.
    let offline = synapse_repro::core::SnapshotStore::open(&snap_dir).expect("reopen offline");
    let current = offline
        .load_latest()
        .expect("readable")
        .expect("a snapshot was persisted");
    assert!(
        !current.sub_entries.is_empty(),
        "the snapshot carried subscriber version entries"
    );
    std::fs::write(
        snap_dir.join(format!("state-{}.snap", current.seq)),
        current.encode_legacy(),
    )
    .expect("rewrite as legacy");
    drop(offline);
    assert_eq!(latest_snapshot_magic(&snap_dir), *b"SYNSNAP2");

    // --- Incarnation 2: rebuild from the legacy file. ---
    let (eco, report) = Ecosystem::new_durable(wal_cfg()).expect("durable reopen");
    assert!(
        report.replayed_entries > 0,
        "the WAL from incarnation 1 replays"
    );
    let (publisher, subscriber) = build(&eco);
    let snap = subscriber.telemetry_snapshot();
    assert_eq!(
        counter(&snap, "recovery.snapshots_loaded"),
        1,
        "the SYNSNAP2 file loaded through the compat path"
    );
    assert!(counter(&snap, "recovery.snapshot_entries") > 0);
    assert_eq!(counter(&snap, "recovery.snapshot_load_errors"), 0);
    eco.connect();
    eco.start_all();

    // Replicated state survived the format downgrade.
    for &id in &ids {
        assert!(
            subscriber.orm().find("Post", id).unwrap().is_some(),
            "row {id} recovered from the legacy snapshot"
        );
    }
    // The recovered scalar freshness marks still gate redelivery: versions
    // restored from the v2 entries make a fresh update apply normally.
    let next_id = synapse_repro::model::Id(ids.iter().map(|i| i.0).max().unwrap() + 1);
    publisher
        .orm()
        .create_with_id(
            "Post",
            next_id,
            vmap! { "body" => "post-downgrade", "version" => 99 },
        )
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", next_id).unwrap().is_some()
    }));

    // The next persist writes the current format and supersedes the
    // legacy file; a further reopen prefers it.
    subscriber.persist_snapshot().expect("upgrade persist");
    assert_eq!(latest_snapshot_magic(&snap_dir), *b"SYNSNAP3");
    let reopened = synapse_repro::core::SnapshotStore::open(&snap_dir).expect("reopen upgraded");
    let upgraded = reopened.load_latest().expect("readable").expect("present");
    assert!(
        upgraded.seq > current.seq,
        "the upgraded snapshot is newest"
    );
    eco.stop_all();
    let _ = std::fs::remove_dir_all(&root);
}
