//! Causal-ordering semantics across the full stack (§3.2, §4.2, Fig. 8):
//! same-object serialization, controller chains, user-session
//! serialization, cross-controller read snapshots, and the
//! global-vs-causal-vs-weak relationships.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    with_user_scope, DeliveryMode, DepName, Ecosystem, Publication, Subscription, SynapseConfig,
    SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, Id, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;
use synapse_repro::orm::CallbackPoint;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn wired_pair(
    mode: DeliveryMode,
    workers: usize,
) -> (Ecosystem, Arc<SynapseNode>, Arc<SynapseNode>) {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub").mode(mode),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    for m in ["Post", "Comment"] {
        publisher.orm().define_model(ModelSchema::open(m)).unwrap();
    }
    publisher
        .publish(Publication::model("Post").fields(&["body", "author_id"]))
        .unwrap();
    publisher
        .publish(Publication::model("Comment").fields(&["post_id", "body"]))
        .unwrap();
    let subscriber = eco.add_node(
        SynapseConfig::new("sub").mode(mode).workers(workers),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    for m in ["Post", "Comment"] {
        subscriber.orm().define_model(ModelSchema::open(m)).unwrap();
    }
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body", "author_id"]))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Comment", "pub").fields(&["post_id", "body"]))
        .unwrap();
    assert!(eco.connect().is_empty());
    (eco, publisher, subscriber)
}

/// The paper's motivating guarantee: a comment referencing a post is never
/// applied before the post itself, even with many parallel workers racing.
#[test]
fn comments_never_arrive_before_their_posts() {
    let (eco, publisher, subscriber) = wired_pair(DeliveryMode::Causal, 4);
    // Detect violations at apply time via a callback.
    let violations: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let v = violations.clone();
    subscriber
        .orm()
        .on("Comment", CallbackPoint::AfterCreate, move |ctx, c| {
            let post_id = Id(c.get("post_id").as_int().unwrap_or(0) as u64);
            if ctx.orm.find("Post", post_id)?.is_none() {
                v.lock().push(post_id.raw());
            }
            Ok(())
        });
    eco.start_all();

    for round in 0..50u64 {
        let user = DepName::object("pub", "User", Id(round % 5 + 1));
        with_user_scope(user, || {
            let post = publisher
                .orm()
                .create("Post", vmap! { "body" => "p", "author_id" => round })
                .unwrap();
            // Same controller: read-your-write, then comment.
            let read_back = publisher.orm().find("Post", post.id).unwrap().unwrap();
            publisher
                .orm()
                .create(
                    "Comment",
                    vmap! { "post_id" => read_back.id.raw(), "body" => "c" },
                )
                .unwrap();
        });
    }
    assert!(eventually(Duration::from_secs(10), || {
        subscriber.orm().count("Comment").unwrap() == 50
    }));
    assert!(
        violations.lock().is_empty(),
        "comments applied before their posts: {:?}",
        violations.lock()
    );
    eco.stop_all();
}

/// Same-user updates are serialized (rule 3 of causal ordering): with many
/// workers, a user's posts apply in creation order.
#[test]
fn per_user_session_updates_apply_in_order() {
    let (eco, publisher, subscriber) = wired_pair(DeliveryMode::Causal, 4);
    let applied: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let a = applied.clone();
    subscriber
        .orm()
        .on("Post", CallbackPoint::AfterCreate, move |_, p| {
            a.lock().push(p.get("author_id").as_int().unwrap_or(-1));
            // Slow the apply down so misordering would actually show.
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        });
    eco.start_all();

    let user = DepName::object("pub", "User", Id(7));
    for i in 0..20u64 {
        with_user_scope(user.clone(), || {
            publisher
                .orm()
                .create("Post", vmap! { "body" => "p", "author_id" => i })
                .unwrap();
        });
    }
    assert!(eventually(Duration::from_secs(10), || {
        applied.lock().len() == 20
    }));
    let seen = applied.lock();
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(*seen, sorted, "same-session posts must apply in order");
    eco.stop_all();
}

/// Global ordering serializes *everything*: even unrelated objects from
/// unrelated sessions apply in publication order.
#[test]
fn global_mode_serializes_unrelated_objects() {
    let (eco, publisher, subscriber) = wired_pair(DeliveryMode::Global, 4);
    let applied: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let a = applied.clone();
    subscriber
        .orm()
        .on("Post", CallbackPoint::AfterCreate, move |_, p| {
            a.lock().push(p.get("author_id").as_int().unwrap_or(-1));
            Ok(())
        });
    eco.start_all();

    for i in 0..30u64 {
        // Different users, no shared objects, no scopes.
        publisher
            .orm()
            .create("Post", vmap! { "body" => "p", "author_id" => i })
            .unwrap();
    }
    assert!(eventually(Duration::from_secs(10), || {
        applied.lock().len() == 30
    }));
    let seen = applied.lock();
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(*seen, sorted, "global order must match publication order");
    eco.stop_all();
}

/// A weak subscriber of a causal publisher ignores the causal dependency
/// information (mode degradation, §3.2).
#[test]
fn weak_subscriber_of_causal_publisher_ignores_dependencies() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub").publisher_mode(DeliveryMode::Causal),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["body"]))
        .unwrap();
    let subscriber = eco.add_node(
        SynapseConfig::new("sub").subscriber_mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body"]))
        .unwrap();
    assert!(eco.connect().is_empty());
    assert_eq!(
        subscriber.subscriber().effective_mode("pub"),
        DeliveryMode::Weak
    );

    // Drop a message, publish more; the weak subscriber never stalls.
    let p = publisher
        .orm()
        .create("Post", vmap! { "body" => "a" })
        .unwrap();
    eco.broker().inject_drop_next("sub", 1);
    publisher
        .orm()
        .update("Post", p.id, vmap! { "body" => "b" })
        .unwrap();
    publisher
        .orm()
        .update("Post", p.id, vmap! { "body" => "c" })
        .unwrap();
    eco.start_all();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber
            .orm()
            .find("Post", p.id)
            .unwrap()
            .map(|r| r.get("body").as_str() == Some("c"))
            .unwrap_or(false)
    }));
    assert_eq!(subscriber.subscriber_stats().dep_timeouts, 0);
    eco.stop_all();
}

/// A causal subscriber cannot exceed a weak publisher: the effective mode
/// is weak (§3.2: "subscribers can only select delivery semantics that are
/// at most as strong as the publishers support").
#[test]
fn subscriber_mode_degrades_to_publisher_mode() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub").publisher_mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    publisher
        .publish(Publication::model("Post").fields(&["body"]))
        .unwrap();
    let subscriber = eco.add_node(
        SynapseConfig::new("sub").subscriber_mode(DeliveryMode::Causal),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("Post"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Post", "pub").fields(&["body"]))
        .unwrap();
    assert!(eco.connect().is_empty());
    assert_eq!(
        subscriber.subscriber().effective_mode("pub"),
        DeliveryMode::Weak
    );
}

/// Transactions combine all their writes into one message applied together
/// (§4.2: "all writes within a single transaction are combined into a
/// single message").
#[test]
fn transactions_combine_writes_into_one_message() {
    let (eco, publisher, subscriber) = wired_pair(DeliveryMode::Causal, 2);
    eco.start_all();

    let before = publisher.publisher_stats().messages_published;
    publisher.transaction(|| {
        let post = publisher
            .orm()
            .create("Post", vmap! { "body" => "p", "author_id" => 1 })
            .unwrap();
        publisher
            .orm()
            .create(
                "Comment",
                vmap! { "post_id" => post.id.raw(), "body" => "c1" },
            )
            .unwrap();
        publisher
            .orm()
            .create(
                "Comment",
                vmap! { "post_id" => post.id.raw(), "body" => "c2" },
            )
            .unwrap();
    });
    let after = publisher.publisher_stats().messages_published;
    assert_eq!(after - before, 1, "three writes, one message");

    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().count("Comment").unwrap() == 2
            && subscriber.orm().count("Post").unwrap() == 1
    }));
    eco.stop_all();
}
