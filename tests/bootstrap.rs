//! The three-step bootstrap protocol (§4.4) in detail: version snapshots
//! before data, projection during bulk copy, live traffic during the copy,
//! ephemeral exclusion, decorator chains bootstrapping in stages, and the
//! failure paths of the watermark-interleaved recovery rebuild — flag
//! hygiene on failed attempts, watermark resume after a mid-copy fault,
//! watermark lineage across decommission/reinstate, deferred watermark
//! cleanup, dead publisher stores, ephemeral-only publications, and
//! reinstates racing a broker restart.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    BootstrapPhase, BootstrapState, Ecosystem, Publication, Subscription, SynapseConfig,
    SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, ModelSchema};
use synapse_repro::orm::adapters::{EphemeralAdapter, MongoidAdapter};

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn publisher_with_users(eco: &Ecosystem, n: usize) -> Arc<SynapseNode> {
    let node = eco.add_node(
        SynapseConfig::new("pub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("User")).unwrap();
    node.publish(Publication::model("User").fields(&["name"]))
        .unwrap();
    for i in 0..n {
        node.orm()
            .create("User", vmap! { "name" => format!("u{i}"), "secret" => "x" })
            .unwrap();
    }
    node
}

/// A subscriber that joins late gets all pre-existing objects, projected to
/// the published attributes only.
#[test]
fn late_subscriber_bootstraps_projected_history() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 200);
    let subscriber = eco.add_node(
        SynapseConfig::new("late"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    subscriber.start_and_bootstrap_from(&publisher).unwrap();
    assert_eq!(subscriber.orm().count("User").unwrap(), 200);
    let sample = subscriber
        .orm()
        .find("User", synapse_repro::model::Id(1))
        .unwrap()
        .unwrap();
    assert_eq!(sample.get("name").as_str(), Some("u0"));
    assert!(
        sample.get("secret").is_null(),
        "bulk copy must project to published attributes, like live updates"
    );
    eco.stop_all();
}

/// Writes racing with the bulk copy are not lost: messages published
/// during steps 1–2 are drained in step 3.
#[test]
fn writes_during_bootstrap_are_not_lost() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 100);
    let subscriber = eco.add_node(
        SynapseConfig::new("late"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    // A writer hammers the publisher while the bootstrap runs.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let publisher = publisher.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                publisher
                    .orm()
                    .create("User", vmap! { "name" => format!("live-{n}") })
                    .unwrap();
                n += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    subscriber.start_and_bootstrap_from(&publisher).unwrap();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    writer.join().unwrap();

    let expected = publisher.orm().count("User").unwrap();
    assert!(eventually(Duration::from_secs(10), || {
        subscriber.orm().count("User").unwrap() == expected
    }));
    eco.stop_all();
}

/// Ephemeral publications have no stored history — bootstrap skips them
/// rather than failing (§3.1: published, never persisted).
#[test]
fn ephemeral_models_are_skipped_by_bootstrap() {
    let eco = Ecosystem::new();
    let frontend = eco.add_node(
        SynapseConfig::new("frontend"),
        Arc::new(EphemeralAdapter::new()),
    );
    frontend
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    frontend
        .publish(Publication::model("Click").fields(&["target"]).ephemeral())
        .unwrap();
    for _ in 0..5 {
        frontend
            .orm()
            .create("Click", vmap! { "target" => "buy" })
            .unwrap();
    }

    let analytics = eco.add_node(
        SynapseConfig::new("analytics"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    analytics
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    analytics
        .subscribe(Subscription::model("Click", "frontend").fields(&["target"]))
        .unwrap();
    eco.connect();

    analytics.start_and_bootstrap_from(&frontend).unwrap();
    // The five pre-subscription clicks were never persisted anywhere (the
    // publisher is ephemeral and the queue was not yet bound), so the
    // bootstrap has no history to copy: the subscriber starts empty.
    assert_eq!(analytics.orm().count("Click").unwrap(), 0);
    // Only live events arrive from now on.
    frontend
        .orm()
        .create("Click", vmap! { "target" => "cart" })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        analytics.orm().count("Click").unwrap() == 1
    }));
    eco.stop_all();
}

/// A decorator chain bootstraps stage by stage: a brand-new downstream
/// subscriber obtains both the owner's attributes and the decorations.
#[test]
fn decorator_chain_bootstraps_downstream() {
    let eco = Ecosystem::new();
    let owner = publisher_with_users(&eco, 20);
    let decorator = eco.add_node(
        SynapseConfig::new("dec"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    decorator
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    decorator
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    decorator
        .publish(Publication::model("User").fields(&["vip"]))
        .unwrap();
    eco.connect();
    decorator.start_and_bootstrap_from(&owner).unwrap();
    // The decorator decorates everything it replicated.
    for user in decorator.orm().all("User").unwrap() {
        decorator
            .orm()
            .update(
                "User",
                user.id,
                vmap! { "vip" => user.id.raw().is_multiple_of(2) },
            )
            .unwrap();
    }

    // Now a downstream subscriber joins, bootstrapping from both.
    let downstream = eco.add_node(
        SynapseConfig::new("down"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    downstream
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    downstream
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    downstream
        .subscribe(Subscription::model("User", "dec").fields(&["vip"]))
        .unwrap();
    eco.connect();
    downstream.start_and_bootstrap_from(&owner).unwrap();
    downstream.bootstrap_from(&decorator).unwrap();

    assert_eq!(downstream.orm().count("User").unwrap(), 20);
    let u2 = downstream
        .orm()
        .find("User", synapse_repro::model::Id(2))
        .unwrap()
        .unwrap();
    assert_eq!(u2.get("name").as_str(), Some("u1"));
    assert_eq!(u2.get("vip").as_bool(), Some(true));
    eco.stop_all();
}

/// Regression for the stuck-bootstrap-flag bug: a bootstrap whose step 1
/// fails (dead publisher version store) must clear the ORM bootstrap flag
/// on its error path, leave the node writable, and let a later
/// `bootstrap_from` succeed.
#[test]
fn failed_bootstrap_clears_flag_and_retry_succeeds() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 10);
    let subscriber = eco.add_node(
        SynapseConfig::new("late"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .orm()
        .define_model(ModelSchema::open("Note"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    // Step 1 cannot snapshot a dead publisher store; the retry policy
    // exhausts and the attempt fails.
    publisher.pub_store().kill();
    let err = subscriber.start_and_bootstrap_from(&publisher);
    assert!(err.is_err(), "snapshot from a dead pub store must fail");

    // The old code leaked `set_bootstrap(true)` here, permanently wedging
    // the node in bootstrap mode.
    assert!(
        !subscriber.orm().is_bootstrap(),
        "failed bootstrap must clear the bootstrap flag"
    );
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.attempts, 1);
    assert_eq!(stats.completions, 0);
    assert!(stats.retries >= 1, "transient step failures are retried");
    assert_eq!(stats.phase, BootstrapPhase::Idle);
    // Still writable: local models work as if no bootstrap ever ran.
    subscriber
        .orm()
        .create("Note", vmap! { "body" => "still alive" })
        .unwrap();

    // Publisher heals; the second attempt completes.
    publisher.pub_store().revive();
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(!subscriber.orm().is_bootstrap());
    assert_eq!(subscriber.orm().count("User").unwrap(), 10);
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.attempts, 2);
    assert_eq!(stats.completions, 1);
    assert_eq!(stats.phase, BootstrapPhase::Live);
    eco.stop_all();
}

/// Arms one retry budget's worth of transient chunk-copy failures the
/// first time the copier enters `chunk` (0-based). Returns the once-flag.
fn arm_copy_fault_at_chunk(node: &Arc<SynapseNode>, chunk: u64) -> Arc<AtomicBool> {
    let armed = Arc::new(AtomicBool::new(false));
    let target = node.clone();
    let flag = armed.clone();
    let at = chunk;
    let budget = node.config().retry.max_attempts as u64;
    node.set_bootstrap_probe(move |state| {
        if let BootstrapState::Copying { chunk, .. } = state {
            if *chunk == at && !flag.swap(true, Ordering::SeqCst) {
                target.inject_copy_failures(budget);
            }
        }
    });
    armed
}

/// A mid-copy fault exhausts the retry policy and fails the attempt, but
/// leaves the committed chunk watermarks in the version store, so the next
/// attempt resumes past the copied rows instead of redoing the copy — and
/// still converges. (Runs on the synchronous no-worker path; the live
/// backlog drains once workers start.)
#[test]
fn copy_fault_fails_attempt_then_resume_converges() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 30);
    let subscriber = eco.add_node(
        SynapseConfig::new("late").bootstrap_chunk(8),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    // Live writes after the binding exists put messages in the queue and
    // rows in the publisher db; the copy must cover the rows, the workers
    // (started later) the messages.
    for i in 0..5 {
        publisher
            .orm()
            .create("User", vmap! { "name" => format!("live-{i}") })
            .unwrap();
    }
    // The copier's third chunk (two watermarks committed) hits a burst of
    // transient faults that exhausts the retry policy.
    let armed = arm_copy_fault_at_chunk(&subscriber, 2);
    let err = subscriber.bootstrap_from(&publisher);
    assert!(err.is_err(), "the armed chunk fault must fail the attempt");
    assert!(armed.load(Ordering::SeqCst));
    assert!(!subscriber.orm().is_bootstrap());
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.attempts, 1);
    assert_eq!(stats.resumes, 0, "first attempt starts from scratch");
    assert_eq!(
        stats.chunks_copied, 2,
        "the chunks before the faulted one committed watermarks"
    );
    assert!(stats.retries >= 1, "the chunk retried before exhausting");
    let copied_first = stats.records_copied;
    assert_eq!(copied_first, 16);

    // Second attempt: the watermark survived, so the copier resumes past
    // everything already copied and covers the rest.
    subscriber.bootstrap_from(&publisher).unwrap();
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert!(stats.resumes >= 1, "second attempt resumed from watermark");
    assert_eq!(
        stats.records_copied, 35,
        "resume must not re-copy records behind the watermark"
    );
    assert_eq!(
        stats.copies_merged, 0,
        "with no workers the copy applies synchronously, not via the queue"
    );
    assert_eq!(subscriber.orm().count("User").unwrap(), 35);
    assert_eq!(stats.phase, BootstrapPhase::Live);

    // The queued live messages drain once workers run; applying them over
    // their own copies must not double anything.
    subscriber.start();
    assert!(subscriber.subscriber().drain(Duration::from_secs(10)));
    assert_eq!(subscriber.orm().count("User").unwrap(), 35);
    eco.stop_all();
}

/// Watermark lineage across decommission/reinstate, the keep path: a
/// decommission that swept nothing leaves live-stream coverage intact, so
/// a reinstating bootstrap must keep its committed watermarks and resume.
#[test]
fn reinstate_with_unswept_backlog_keeps_resume_watermarks() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 40);
    let subscriber = eco.add_node(
        SynapseConfig::new("late").bootstrap_chunk(8),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    let armed = arm_copy_fault_at_chunk(&subscriber, 2);
    assert!(subscriber.bootstrap_from(&publisher).is_err());
    assert!(armed.load(Ordering::SeqCst));
    assert_eq!(subscriber.bootstrap_stats().records_copied, 16);

    // The queue dies with an *empty* backlog: nothing is swept, so the
    // discard lineage does not move and the watermarks stay trustworthy.
    eco.broker().decommission_queue("late");
    subscriber.bootstrap_from(&publisher).unwrap();
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert!(
        stats.resumes >= 1,
        "an unswept reinstate must keep the watermarks and resume"
    );
    assert_eq!(
        stats.records_copied, 40,
        "rows behind the watermark were not re-copied"
    );
    assert_eq!(subscriber.orm().count("User").unwrap(), 40);
    assert_eq!(eco.broker().stats().reinstated, 1);
    eco.stop_all();
}

/// Watermark lineage across decommission/reinstate, the clear path: a
/// decommission that swept queued messages broke live-stream coverage —
/// the copied chunks relied on those messages to carry the writes they
/// raced with — so a reinstating bootstrap must clear its watermarks and
/// restart the copy from scratch, which also re-covers the swept rows.
#[test]
fn reinstate_after_swept_backlog_clears_resume_watermarks() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 40);
    let subscriber = eco.add_node(
        SynapseConfig::new("late").bootstrap_chunk(8),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    // Live writes land in the bound queue (and the publisher db).
    for i in 0..3 {
        publisher
            .orm()
            .create("User", vmap! { "name" => format!("live-{i}") })
            .unwrap();
    }
    let armed = arm_copy_fault_at_chunk(&subscriber, 2);
    assert!(subscriber.bootstrap_from(&publisher).is_err());
    assert!(armed.load(Ordering::SeqCst));

    // The decommission sweeps the three queued messages: real loss, and
    // the discard lineage moves.
    eco.broker().decommission_queue("late");
    subscriber.bootstrap_from(&publisher).unwrap();
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert_eq!(
        stats.resumes, 0,
        "a swept backlog breaks marker lineage: no resume"
    );
    // The full re-copy covers the swept writes too: exact convergence.
    assert_eq!(subscriber.orm().count("User").unwrap(), 43);
    assert!(eco.broker().stats().discarded >= 3);
    eco.stop_all();
}

/// A watermark-cleanup failure after convergence must not fail the
/// attempt: the node still transitions to Live, the deferral is counted,
/// and the *next* attempt clears the stale resume state before trusting
/// any watermark.
#[test]
fn cleanup_failure_defers_and_node_still_goes_live() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 20);
    let subscriber = eco.add_node(
        SynapseConfig::new("late").bootstrap_chunk(8),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();

    // Kill the watermark's home shard between the last chunk and the
    // cleanup: the probe fires on the Finalizing transition, which sits
    // exactly there.
    let wm_shard = subscriber
        .sub_store()
        .shard_for(subscriber.config().dep_space.key(
            &synapse_repro::core::DepName::bootstrap_watermark("pub", "User"),
        ));
    let killed = Arc::new(AtomicBool::new(false));
    {
        let store = subscriber.sub_store().clone();
        let killed = killed.clone();
        subscriber.set_bootstrap_probe(move |state| {
            if matches!(state, BootstrapState::Finalizing) && !killed.swap(true, Ordering::SeqCst) {
                store.kill_shard(wm_shard);
            }
        });
    }
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(killed.load(Ordering::SeqCst));
    let stats = subscriber.bootstrap_stats();
    assert_eq!(
        stats.completions, 1,
        "cleanup failure must not fail the attempt"
    );
    assert_eq!(stats.phase, BootstrapPhase::Live);
    assert_eq!(stats.cleanup_deferred, 1);
    assert_eq!(
        subscriber
            .telemetry_snapshot()
            .counter("bootstrap.cleanup_deferred"),
        1
    );
    assert_eq!(subscriber.orm().count("User").unwrap(), 20);

    // The next attempt revives the store, clears the (dirty) watermark
    // state first, and completes cleanly from scratch.
    subscriber.clear_bootstrap_probe();
    subscriber.bootstrap_from(&publisher).unwrap();
    let stats = subscriber.bootstrap_stats();
    assert_eq!(stats.completions, 2);
    assert_eq!(stats.cleanup_deferred, 1, "the deferral happened once");
    assert!(!subscriber.sub_store().is_dead());
    assert_eq!(subscriber.orm().count("User").unwrap(), 20);
    eco.stop_all();
}

/// A publisher whose only publication is ephemeral has nothing to copy:
/// bootstrap completes straight through to Live with zero chunks.
#[test]
fn ephemeral_only_publication_completes_with_empty_copy() {
    let eco = Ecosystem::new();
    let frontend = eco.add_node(
        SynapseConfig::new("frontend"),
        Arc::new(EphemeralAdapter::new()),
    );
    frontend
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    frontend
        .publish(Publication::model("Click").fields(&["target"]).ephemeral())
        .unwrap();

    let analytics = eco.add_node(
        SynapseConfig::new("analytics"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    analytics
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    analytics
        .subscribe(Subscription::model("Click", "frontend").fields(&["target"]))
        .unwrap();
    eco.connect();

    analytics.start_and_bootstrap_from(&frontend).unwrap();
    let stats = analytics.bootstrap_stats();
    assert_eq!(stats.completions, 1);
    assert_eq!(stats.chunks_copied, 0);
    assert_eq!(stats.records_copied, 0);
    assert_eq!(stats.phase, BootstrapPhase::Live);
    eco.stop_all();
}

/// A reinstate racing a broker restart: armed per-queue drop faults belong
/// to the decommissioned incarnation and must not eat the reinstated
/// queue's first live messages; a second reinstate of the now-active queue
/// is a no-op.
#[test]
fn reinstate_racing_broker_restart_discards_stale_drop_faults() {
    let eco = Ecosystem::new();
    let publisher = publisher_with_users(&eco, 3);
    let subscriber = eco.add_node(
        SynapseConfig::new("late"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "pub").fields(&["name"]))
        .unwrap();
    eco.connect();
    subscriber.start_and_bootstrap_from(&publisher).unwrap();
    assert_eq!(subscriber.orm().count("User").unwrap(), 3);

    // The queue dies with drop faults still armed; the broker restarts
    // while it is decommissioned.
    eco.broker().inject_drop_next("late", 5);
    eco.broker().decommission_queue("late");
    eco.broker().recover();

    // Partial bootstrap reinstates the queue; the armed drops must have
    // died with the old incarnation.
    subscriber.bootstrap_from(&publisher).unwrap();
    assert_eq!(eco.broker().stats().reinstated, 1);
    assert!(
        !eco.broker().reinstate_queue("late"),
        "reinstating an active queue is a no-op"
    );
    for i in 0..2 {
        publisher
            .orm()
            .create("User", vmap! { "name" => format!("post-{i}") })
            .unwrap();
    }
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().count("User").unwrap() == 5
    }));
    assert_eq!(
        eco.broker().stats().dropped,
        0,
        "no armed drop may survive the reinstate"
    );
    eco.stop_all();
}
