//! Multi-threaded stress test for the batched publish→deliver hot path:
//! concurrent batched publishers fanning out to several queues, batched
//! consumers that nack and dead-letter along the way, and a broker
//! restart in the middle. The test asserts the zero-silent-loss identity
//! the fault soak relies on: once the pipeline drains, every enqueued
//! copy ended exactly one of acked or dead-lettered, nothing was
//! dropped, and every queue saw every payload.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::broker::{Broker, QueueConfig};

const QUEUES: usize = 4;
const PUBLISHERS: usize = 2;
const PER_PUBLISHER: usize = 1_500;
const CHUNK: usize = 25;
/// Every `DL_EVERY`-th payload of a publisher is marked for
/// dead-lettering by the consumers.
const DL_EVERY: usize = 50;

fn total_messages() -> usize {
    PUBLISHERS * PER_PUBLISHER
}

fn payload_for(publisher: usize, seq: usize) -> String {
    if seq.is_multiple_of(DL_EVERY) {
        format!("p{publisher}-{seq}#dl")
    } else {
        format!("p{publisher}-{seq}")
    }
}

#[test]
fn concurrent_batched_fanout_loses_nothing() {
    let broker = Broker::new();
    for q in 0..QUEUES {
        let name = format!("q{q}");
        broker.declare_queue(&name, QueueConfig::default());
        broker.bind("pub", &name);
    }

    let stop = Arc::new(AtomicBool::new(false));

    // One consumer thread per queue: pop in batches, nack a deterministic
    // subset once (first delivery only), dead-letter `#dl` payloads, ack
    // the rest in one batch. Returns (seen payloads, dead payloads).
    let consumers: Vec<_> = (0..QUEUES)
        .map(|q| {
            let consumer = broker.consumer(&format!("q{q}")).unwrap();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen: BTreeSet<String> = BTreeSet::new();
                let mut dead: BTreeSet<String> = BTreeSet::new();
                while !stop.load(Ordering::SeqCst) {
                    let batch = consumer.pop_batch(16, Duration::from_millis(20));
                    let mut tags = Vec::with_capacity(batch.len());
                    for d in &batch {
                        if d.tag.is_multiple_of(13) && !d.redelivered {
                            // Exercise the requeue path: the redelivery
                            // comes back flagged and is then handled.
                            consumer.nack(d.tag);
                            continue;
                        }
                        seen.insert(d.payload.to_string());
                        if d.payload.ends_with("#dl") {
                            // A restart may have raced us and requeued the
                            // tag; only a live dead-letter decides the copy.
                            if consumer.dead_letter(d.tag) {
                                dead.insert(d.payload.to_string());
                            }
                        } else {
                            tags.push(d.tag);
                        }
                    }
                    consumer.ack_batch(&tags);
                }
                (seen, dead)
            })
        })
        .collect();

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let broker = broker.clone();
            std::thread::spawn(move || {
                let mut sent = 0;
                while sent < PER_PUBLISHER {
                    let n = CHUNK.min(PER_PUBLISHER - sent);
                    let chunk: Vec<String> =
                        (sent..sent + n).map(|seq| payload_for(p, seq)).collect();
                    broker.publish_batch("pub", chunk).unwrap();
                    sent += n;
                }
            })
        })
        .collect();

    // Restart the broker mid-run: everything in flight is requeued
    // flagged `redelivered` and must still be decided exactly once.
    std::thread::sleep(Duration::from_millis(5));
    broker.recover();

    for h in publishers {
        h.join().unwrap();
    }

    // Drain: wait until every queue is empty with nothing in flight. A
    // final recover sweeps up any copy whose ack raced the mid-run
    // restart.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let drained = (0..QUEUES).all(|q| {
            let name = format!("q{q}");
            broker.queue_len(&name) == Some(0) && broker.queue_unacked_len(&name) == Some(0)
        });
        if drained {
            break;
        }
        assert!(Instant::now() < deadline, "pipeline failed to drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    for q in 0..QUEUES {
        broker.wake_queue(&format!("q{q}"));
    }
    let results: Vec<_> = consumers.into_iter().map(|h| h.join().unwrap()).collect();

    // The zero-silent-loss identity.
    let stats = broker.stats();
    let expected: BTreeSet<String> = (0..PUBLISHERS)
        .flat_map(|p| (0..PER_PUBLISHER).map(move |seq| payload_for(p, seq)))
        .collect();
    let dl_expected: BTreeSet<String> = expected
        .iter()
        .filter(|p| p.ends_with("#dl"))
        .cloned()
        .collect();
    assert_eq!(stats.published, total_messages() as u64);
    assert_eq!(stats.enqueued, (total_messages() * QUEUES) as u64);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.discarded, 0);
    assert_eq!(stats.refused, 0);
    assert_eq!(
        stats.acked + stats.dead_lettered,
        stats.enqueued,
        "every enqueued copy must end acked or dead-lettered"
    );
    for (q, (seen, dead)) in results.iter().enumerate() {
        assert_eq!(seen, &expected, "queue q{q} missed payloads");
        assert_eq!(dead, &dl_expected, "queue q{q} dead-letter set");
        assert_eq!(
            broker.dead_letter_len(&format!("q{q}")),
            Some(dl_expected.len()),
            "queue q{q} dead-letter store"
        );
    }
}
