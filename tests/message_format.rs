//! The wire format of Fig. 6(b): a real publisher's message for the
//! figure's exact scenario (pub3 updates User#100's interests), captured
//! off the broker and checked field by field.

use std::sync::Arc;
use std::time::Duration;
use synapse_repro::broker::QueueConfig;
use synapse_repro::core::{Ecosystem, Publication, SynapseConfig, WriteMessage};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{varray, vmap, wire, Id, ModelSchema};
use synapse_repro::orm::adapters::MongoidAdapter;

#[test]
fn fig6b_write_message_shape() {
    let eco = Ecosystem::new();
    let pub3 = eco.add_node(
        SynapseConfig::new("pub3"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub3.orm().define_model(ModelSchema::open("User")).unwrap();
    pub3.publish(Publication::model("User").field("interests"))
        .unwrap();
    eco.broker().declare_queue("raw", QueueConfig::default());
    eco.broker().bind("pub3", "raw");

    pub3.orm()
        .create_with_id("User", Id(100), vmap! { "interests" => varray!["birds"] })
        .unwrap();
    pub3.orm()
        .update(
            "User",
            Id(100),
            vmap! { "interests" => varray!["cats", "dogs"] },
        )
        .unwrap();

    let consumer = eco.broker().consumer("raw").unwrap();
    let _create = consumer.pop(Duration::from_millis(100)).unwrap();
    let update = consumer.pop(Duration::from_millis(100)).unwrap();

    // The payload is plain JSON with the figure's fields.
    let parsed = wire::decode(&update.payload).expect("payload is JSON");
    assert_eq!(parsed.get("app").as_str(), Some("pub3"));
    assert_eq!(parsed.get("generation").as_int(), Some(1));
    assert!(parsed.get("published_at").as_int().unwrap_or(0) > 0);
    let ops = parsed.get("operations").as_array().unwrap();
    assert_eq!(ops.len(), 1);
    assert_eq!(ops[0].get("operation").as_str(), Some("update"));
    assert_eq!(ops[0].get("id").as_int(), Some(100));
    assert_eq!(
        ops[0].get("attributes").get("interests"),
        &varray!["cats", "dogs"]
    );
    let types = ops[0].get("types").as_array().unwrap();
    assert_eq!(types[0].as_str(), Some("User"));
    assert!(
        !parsed.get("dependencies").as_map().unwrap().is_empty(),
        "the update carries its object dependency"
    );

    // The typed decoder agrees with the raw parse.
    let msg = WriteMessage::decode(&update.payload).unwrap();
    assert_eq!(msg.app, "pub3");
    assert_eq!(msg.operations[0].id, Id(100));

    // And the encoding is canonical: decode → encode is the identity.
    assert_eq!(msg.encode(), update.payload);
}
