//! Failure injection and recovery (§4.4 and the §6.5 production notes):
//! lost messages, queue decommission + partial bootstrap, publisher
//! version-store death + generation bump, subscriber store death, broker
//! restarts, and publish-crash journal recovery.

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    DeliveryMode, Ecosystem, Publication, Subscription, SynapseConfig, SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::ModelSchema;
use synapse_repro::model::{vmap, Id};
use synapse_repro::orm::adapters::MongoidAdapter;

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn mongo_node(eco: &Ecosystem, config: SynapseConfig) -> Arc<SynapseNode> {
    let node = eco.add_node(
        config,
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    node.orm().define_model(ModelSchema::open("Post")).unwrap();
    node
}

fn publishing_node(eco: &Ecosystem, app: &str) -> Arc<SynapseNode> {
    let node = mongo_node(eco, SynapseConfig::new(app));
    node.publish(Publication::model("Post").fields(&["body", "version"]))
        .unwrap();
    node
}

fn subscribing_node(eco: &Ecosystem, config: SynapseConfig, from: &str) -> Arc<SynapseNode> {
    let node = mongo_node(eco, config);
    node.subscribe(Subscription::model("Post", from).fields(&["body", "version"]))
        .unwrap();
    node
}

/// §6.5: under strict causal mode, a lost message deadlocks the subscriber
/// on the missing dependency; a finite timeout lets it give up and proceed.
#[test]
fn lost_message_stalls_strict_causal_until_timeout() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub").wait_timeout(Some(Duration::from_millis(200))),
        "pub",
    );
    eco.connect();
    eco.start_all();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "v1", "version" => 1 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", post.id).unwrap().is_some()
    }));

    // Lose the next update, then publish one more.
    eco.broker().inject_drop_next("sub", 1);
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 2 })
        .unwrap();
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 3 })
        .unwrap();

    // The subscriber eventually gives up on the missing dependency and
    // applies v3 (skipping the lost v2 — an overwritten history).
    assert!(eventually(Duration::from_secs(5), || {
        subscriber
            .orm()
            .find("Post", post.id)
            .unwrap()
            .map(|p| p.get("version").as_int() == Some(3))
            .unwrap_or(false)
    }));
    assert!(subscriber.subscriber_stats().dep_timeouts >= 1);
    eco.stop_all();
}

/// Weak mode tolerates the same loss without any stall (§3.2: "its most
/// important benefit is high availability due to its tolerance of message
/// loss").
#[test]
fn weak_mode_tolerates_message_loss_without_stalling() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub").subscriber_mode(DeliveryMode::Weak),
        "pub",
    );
    eco.connect();
    eco.start_all();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "v1", "version" => 1 })
        .unwrap();
    eco.broker().inject_drop_next("sub", 1);
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 2 })
        .unwrap();
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 3 })
        .unwrap();

    assert!(eventually(Duration::from_secs(5), || {
        subscriber
            .orm()
            .find("Post", post.id)
            .unwrap()
            .map(|p| p.get("version").as_int() == Some(3))
            .unwrap_or(false)
    }));
    assert_eq!(subscriber.subscriber_stats().dep_timeouts, 0);
    eco.stop_all();
}

/// Weak mode discards out-of-order (stale) redeliveries: objects only move
/// to their latest version.
#[test]
fn weak_mode_discards_stale_redeliveries() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub").subscriber_mode(DeliveryMode::Weak),
        "pub",
    );
    eco.connect();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "v1", "version" => 1 })
        .unwrap();
    publisher
        .orm()
        .update("Post", post.id, vmap! { "version" => 2 })
        .unwrap();

    // Process manually, replaying the *create* again after the update
    // (a redelivery arriving out of order).
    let consumer = eco.broker().consumer("sub").unwrap();
    let d1 = consumer.pop(Duration::from_millis(100)).unwrap();
    let d2 = consumer.pop(Duration::from_millis(100)).unwrap();
    subscriber.subscriber().process(&d2).unwrap();
    subscriber.subscriber().process(&d1).unwrap();

    let replica = subscriber.orm().find("Post", post.id).unwrap().unwrap();
    assert_eq!(
        replica.get("version").as_int(),
        Some(2),
        "stale create must not overwrite the newer update"
    );
    assert_eq!(subscriber.subscriber_stats().ops_stale, 1);
}

/// §4.4: a slow subscriber's queue hits its cap, the queue is killed and
/// the subscriber decommissioned; a partial bootstrap brings it back.
#[test]
fn queue_cap_decommissions_and_partial_bootstrap_recovers() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub").queue_cap(10), "pub");
    eco.connect();
    // Subscriber is down (workers not started); flood past the cap.
    for i in 0..50 {
        publisher
            .orm()
            .create("Post", vmap! { "body" => format!("p{i}"), "version" => i })
            .unwrap();
    }
    assert!(subscriber.is_decommissioned());

    // Partial bootstrap: reinstate, copy state, drain.
    subscriber.start();
    subscriber.bootstrap_from(&publisher).unwrap();
    assert_eq!(subscriber.orm().count("Post").unwrap(), 50);

    // Live replication works again afterwards.
    let fresh = publisher
        .orm()
        .create("Post", vmap! { "body" => "after", "version" => 100 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    eco.stop_all();
}

/// §4.4: when the *publisher's* version store dies, the generation number
/// is incremented and subscribers flush their stores at the barrier.
#[test]
fn publisher_store_death_bumps_generation_and_subscribers_flush() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub"), "pub");
    eco.connect();
    eco.start_all();

    let a = publisher
        .orm()
        .create("Post", vmap! { "body" => "before", "version" => 1 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", a.id).unwrap().is_some()
    }));

    // Kill the publisher-side version store: all counters lost.
    publisher.pub_store().kill();
    let b = publisher
        .orm()
        .create("Post", vmap! { "body" => "after", "version" => 2 })
        .unwrap();
    assert_eq!(publisher.generations().current(), 2, "generation bumped");
    assert_eq!(publisher.publisher_stats().generation_bumps, 1);

    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", b.id).unwrap().is_some()
    }));
    assert!(subscriber.subscriber_stats().generation_flushes >= 1);
    eco.stop_all();
}

/// A crash window between local commit and broker publish leaves payloads
/// in the journal; recovery republishes them (the 2PC of §4.2).
#[test]
fn publish_crash_journal_recovers_messages() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub"), "pub");
    eco.connect();
    eco.start_all();

    publisher.publisher().inject_publish_failure(true);
    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "lost?", "version" => 1 })
        .unwrap();
    // Local write landed, nothing reached the broker.
    assert!(publisher.orm().find("Post", post.id).unwrap().is_some());
    assert_eq!(publisher.publisher_stats().messages_published, 0);
    assert_eq!(publisher.publisher().journal_len(), 1);

    // Crash over; recovery drains the journal.
    publisher.publisher().inject_publish_failure(false);
    publisher.publisher().recover();
    assert_eq!(publisher.publisher().journal_len(), 0);
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", post.id).unwrap().is_some()
    }));
    eco.stop_all();
}

/// Broker restart redelivers unacked in-flight messages; the subscriber's
/// upsert semantics make redelivery idempotent.
#[test]
fn broker_restart_redelivery_is_idempotent() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub"), "pub");
    eco.connect();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "x", "version" => 1 })
        .unwrap();
    // Process without acking (worker crash mid-flight)...
    let consumer = eco.broker().consumer("sub").unwrap();
    let d = consumer.pop(Duration::from_millis(100)).unwrap();
    subscriber.subscriber().process(&d).unwrap();
    // ...then the broker restarts and redelivers.
    eco.broker().recover();
    let redelivered = consumer.pop(Duration::from_millis(100)).unwrap();
    assert!(redelivered.redelivered);
    subscriber.subscriber().process(&redelivered).unwrap();
    consumer.ack(redelivered.tag);

    assert_eq!(subscriber.orm().count("Post").unwrap(), 1);
    let replica = subscriber.orm().find("Post", post.id).unwrap().unwrap();
    assert_eq!(replica.get("version").as_int(), Some(1));
}

/// `Subscriber::drain` must not report an empty queue while a message is
/// still in flight: `queue_len == 0` happens the moment a worker pops the
/// last message, *before* it is applied. The double-check around the
/// generation barrier (drain takes the write side, in-flight processing
/// holds the read side) closes that window.
#[test]
fn drain_waits_for_in_flight_messages() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub").workers(1), "pub");
    eco.connect();

    // Slow down application so the in-flight window is wide open.
    subscriber.orm().on(
        "Post",
        synapse_repro::orm::CallbackPoint::AfterCreate,
        |ctx, _| {
            if !ctx.bootstrap {
                std::thread::sleep(Duration::from_millis(150));
            }
            Ok(())
        },
    );
    eco.start_all();

    let post = publisher
        .orm()
        .create("Post", vmap! { "body" => "slow", "version" => 1 })
        .unwrap();
    // Wait for the worker to pop the message (queue empty, apply pending).
    assert!(eventually(Duration::from_secs(5), || {
        eco.broker().queue_len("sub") == Some(0)
    }));

    assert!(subscriber.subscriber().drain(Duration::from_secs(5)));
    // If drain honoured the barrier, the slow apply finished before it
    // returned true; the replica must be visible *now*, not eventually.
    assert!(subscriber.orm().find("Post", post.id).unwrap().is_some());
    eco.stop_all();
}

/// `Subscriber::drain` racing a concurrent publish storm: every true
/// verdict must coincide with a fully-applied backlog, and the storm must
/// still converge afterwards.
#[test]
fn drain_races_concurrent_publishes_without_lying() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(&eco, SynapseConfig::new("sub"), "pub");
    eco.connect();
    eco.start_all();

    let pub_orm = publisher.orm().clone();
    let storm = std::thread::spawn(move || {
        for i in 0u64..40 {
            pub_orm
                .create("Post", vmap! { "body" => format!("s{i}"), "version" => i })
                .unwrap();
            if i.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    });
    // Interleave drain calls with the storm; true verdicts mid-storm are
    // legitimate (the queue really was empty at that instant) — the test
    // is that drain never deadlocks against the in-flight read barrier
    // and never reports true with the backlog provably unapplied.
    for _ in 0..10 {
        let _ = subscriber.subscriber().drain(Duration::from_millis(20));
    }
    storm.join().unwrap();

    assert!(subscriber.subscriber().drain(Duration::from_secs(10)));
    assert_eq!(subscriber.orm().count("Post").unwrap(), 40);
    assert_eq!(
        subscriber.subscriber_stats().messages_processed,
        publisher.publisher_stats().messages_published
    );
    eco.stop_all();
}

/// Subscriber version-store death: revive empty and partially bootstrap.
#[test]
fn subscriber_store_death_recovers_via_bootstrap() {
    let eco = Ecosystem::new();
    let publisher = publishing_node(&eco, "pub");
    let subscriber = subscribing_node(
        &eco,
        SynapseConfig::new("sub").wait_timeout(Some(Duration::from_millis(100))),
        "pub",
    );
    eco.connect();
    eco.start_all();

    for i in 0..10 {
        publisher
            .orm()
            .create("Post", vmap! { "body" => format!("{i}"), "version" => i })
            .unwrap();
    }
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().count("Post").unwrap() == 10
    }));

    subscriber.sub_store().kill();
    subscriber.bootstrap_from(&publisher).unwrap();
    assert!(!subscriber.sub_store().is_dead());
    assert_eq!(subscriber.orm().count("Post").unwrap(), 10);

    let fresh = publisher
        .orm()
        .create("Post", vmap! { "body" => "fresh", "version" => 11 })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        subscriber.orm().find("Post", fresh.id).unwrap().is_some()
    }));
    let _ = Id(0);
    eco.stop_all();
}
