//! End-to-end replication tests across the whole stack: MVC controllers →
//! ORM interception → publisher → broker → subscriber workers →
//! heterogeneous subscriber databases.

use std::sync::Arc;
use std::time::{Duration, Instant};
use synapse_repro::core::{
    DeliveryMode, Ecosystem, ModeSlice, Publication, Stage, Subscription, SynapseConfig,
    SynapseNode,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{vmap, Id, ModelSchema};
use synapse_repro::orm::adapters::{
    ActiveRecordAdapter, MongoidAdapter, Neo4jAdapter, StretcherAdapter,
};
use synapse_repro::orm::CallbackPoint;

/// Polls until `cond` holds or the deadline passes.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn wait_replicated(node: &SynapseNode, model: &str, id: Id) -> bool {
    eventually(Duration::from_secs(5), || {
        node.orm()
            .find(model, id)
            .map(|r| r.is_some())
            .unwrap_or(false)
    })
}

/// Fig. 1 / Fig. 4: a MongoDB publisher replicating `User.name` to SQL,
/// Elasticsearch, and MongoDB subscribers simultaneously.
#[test]
fn fig4_basic_integration_across_three_engine_families() {
    let eco = Ecosystem::new();

    let pub1 = eco.add_node(
        SynapseConfig::new("pub1"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("User")).unwrap();
    pub1.publish(Publication::model("User").field("name"))
        .unwrap();

    let sub_sql = eco.add_node(
        SynapseConfig::new("sub1a"),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub_sql
        .orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    sub_sql
        .subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();

    let sub_es = eco.add_node(
        SynapseConfig::new("sub1b"),
        Arc::new(StretcherAdapter::new(LatencyModel::off())),
    );
    sub_es
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    sub_es
        .subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();

    let sub_mongo = eco.add_node(
        SynapseConfig::new("sub1c"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    sub_mongo
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    sub_mongo
        .subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();

    assert!(eco.connect().is_empty());
    eco.start_all();

    let user = pub1
        .orm()
        .create("User", vmap! { "name" => "alice", "private" => "hidden" })
        .unwrap();

    for sub in [&sub_sql, &sub_es, &sub_mongo] {
        assert!(wait_replicated(sub, "User", user.id), "{}", sub.app());
        let replica = sub.orm().find("User", user.id).unwrap().unwrap();
        assert_eq!(replica.get("name").as_str(), Some("alice"));
        assert!(
            replica.get("private").is_null(),
            "unpublished attributes must not replicate"
        );
    }

    // Updates propagate too.
    pub1.orm()
        .update("User", user.id, vmap! { "name" => "alicia" })
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        sub_sql
            .orm()
            .find("User", user.id)
            .ok()
            .flatten()
            .map(|r| r.get("name").as_str() == Some("alicia"))
            .unwrap_or(false)
    }));

    // Deletions propagate.
    pub1.orm().destroy("User", user.id).unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        sub_es
            .orm()
            .find("User", user.id)
            .map(|r| r.is_none())
            .unwrap_or(false)
    }));

    // The telemetry plane observed the whole trip. Each subscriber saw the
    // three publishes (create, update, destroy), every staged histogram is
    // internally consistent with the end-to-end one, and the publisher's
    // side recorded its intercept/encode stages. The destroy was only
    // confirmed on sub1b above, so give the other replicas their own
    // bounded settle window before asserting exact counts.
    for sub in [&sub_sql, &sub_es, &sub_mongo] {
        assert!(
            eventually(Duration::from_secs(5), || {
                sub.telemetry_snapshot().total_delivered() == 3
            }),
            "{} never delivered all three messages",
            sub.app()
        );
        let snap = sub.telemetry_snapshot();
        snap.check_consistency()
            .unwrap_or_else(|e| panic!("{}: {e}", sub.app()));
        assert_eq!(snap.total_delivered(), 3, "{}", sub.app());
        let e2e = snap.end_to_end(ModeSlice::Causal);
        assert_eq!(e2e.count, 3, "{}", sub.app());
        assert!(e2e.sum_nanos > 0, "{}", sub.app());
        assert_eq!(snap.counter("subscriber.messages_processed"), 3);
    }
    let pub_snap = pub1.telemetry_snapshot();
    assert_eq!(
        pub_snap.stage(ModeSlice::Causal, Stage::Intercept).count,
        3,
        "publisher records one intercept per write"
    );
    assert_eq!(pub_snap.counter("orm.writes_intercepted"), 3);
    assert_eq!(pub_snap.counter("publisher.messages_published"), 3);

    eco.stop_all();
}

/// §3.1's read-only subscription rule: subscribers cannot create, delete,
/// or update imported attributes — but can decorate.
#[test]
fn subscribers_are_read_only_for_imported_data() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("owner"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    publisher
        .publish(Publication::model("User").field("name"))
        .unwrap();

    let subscriber = eco.add_node(
        SynapseConfig::new("follower"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "owner").field("name"))
        .unwrap();
    eco.connect();
    eco.start_all();

    let user = publisher
        .orm()
        .create("User", vmap! { "name" => "a" })
        .unwrap();
    assert!(wait_replicated(&subscriber, "User", user.id));

    // Create and delete are forbidden on the subscriber.
    assert!(subscriber
        .orm()
        .create("User", vmap! { "name" => "x" })
        .is_err());
    assert!(subscriber.orm().destroy("User", user.id).is_err());
    // Updating the imported attribute is forbidden...
    assert!(subscriber
        .orm()
        .update("User", user.id, vmap! { "name" => "hacked" })
        .is_err());
    // ...but decorating with a new attribute is allowed.
    let decorated = subscriber
        .orm()
        .update("User", user.id, vmap! { "vip" => true })
        .unwrap();
    assert_eq!(decorated.get("vip").as_bool(), Some(true));

    eco.stop_all();
}

/// Fig. 3's decorator chain: Pub1 → Dec2 (adds `interests`) → Sub2, which
/// subscribes to both and sees merged data.
#[test]
fn decorator_chain_merges_attributes_downstream() {
    let eco = Ecosystem::new();
    let pub1 = eco.add_node(
        SynapseConfig::new("pub1"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("User")).unwrap();
    pub1.publish(Publication::model("User").field("name"))
        .unwrap();

    let dec2 = eco.add_node(
        SynapseConfig::new("dec2"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    dec2.orm().define_model(ModelSchema::open("User")).unwrap();
    dec2.subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();
    dec2.publish(Publication::model("User").field("interests"))
        .unwrap();

    let sub2 = eco.add_node(
        SynapseConfig::new("sub2"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    sub2.orm().define_model(ModelSchema::open("User")).unwrap();
    sub2.subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();
    sub2.subscribe(Subscription::model("User", "dec2").field("interests"))
        .unwrap();

    assert!(eco.connect().is_empty());
    eco.start_all();

    let user = pub1
        .orm()
        .create("User", vmap! { "name" => "carol" })
        .unwrap();
    assert!(wait_replicated(&dec2, "User", user.id));

    // The decorator computes and publishes interests.
    dec2.orm()
        .update(
            "User",
            user.id,
            vmap! { "interests" => synapse_repro::model::varray!["cats"] },
        )
        .unwrap();

    assert!(eventually(Duration::from_secs(5), || {
        sub2.orm()
            .find("User", user.id)
            .ok()
            .flatten()
            .map(|r| {
                r.get("name").as_str() == Some("carol")
                    && r.get("interests").as_array().map(|a| a.len()) == Some(1)
            })
            .unwrap_or(false)
    }));

    // Decorator restriction: dec2 cannot publish what it subscribes to.
    assert!(dec2
        .publish(Publication::model("User").field("name"))
        .is_err());

    eco.stop_all();
}

/// Fig. 5 / Example 2: a SQL publisher's `Friendship` join table becomes
/// Neo4j edges through an observer model, enabling graph traversals.
#[test]
fn sql_friendships_become_graph_edges_via_observer() {
    let eco = Ecosystem::new();
    let pub2 = eco.add_node(
        SynapseConfig::new("pub2"),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    pub2.orm()
        .define_model(
            ModelSchema::new("User")
                .field("name")
                .field("likes")
                .has_many("friendships", "Friendship"),
        )
        .unwrap();
    pub2.orm()
        .define_model(
            ModelSchema::new("Friendship")
                .belongs_to("user1", "User")
                .belongs_to("user2", "User"),
        )
        .unwrap();
    pub2.publish(Publication::model("User").fields(&["name", "likes"]))
        .unwrap();
    pub2.publish(Publication::model("Friendship").fields(&["user1_id", "user2_id"]))
        .unwrap();

    let neo4j_adapter = Arc::new(Neo4jAdapter::new(LatencyModel::off()));
    let sub2 = eco.add_node(SynapseConfig::new("recommender"), neo4j_adapter.clone());
    sub2.orm().define_model(ModelSchema::open("User")).unwrap();
    sub2.subscribe(Subscription::model("User", "pub2").fields(&["name", "likes"]))
        .unwrap();
    // The Friendship observer: not persisted; edges added in callbacks.
    sub2.subscribe(
        Subscription::model("Friendship", "pub2")
            .fields(&["user1_id", "user2_id"])
            .observer(),
    )
    .unwrap();
    let adapter_for_add = neo4j_adapter.clone();
    sub2.orm()
        .on("Friendship", CallbackPoint::AfterCreate, move |_, r| {
            let u1 = Id(r.get("user1_id").as_int().unwrap_or(0) as u64);
            let u2 = Id(r.get("user2_id").as_int().unwrap_or(0) as u64);
            adapter_for_add.add_edge("friends", u1, u2)?;
            Ok(())
        });
    let adapter_for_remove = neo4j_adapter.clone();
    sub2.orm()
        .on("Friendship", CallbackPoint::AfterDestroy, move |_, r| {
            let u1 = Id(r.get("user1_id").as_int().unwrap_or(0) as u64);
            let u2 = Id(r.get("user2_id").as_int().unwrap_or(0) as u64);
            adapter_for_remove.remove_edge("friends", u1, u2)?;
            Ok(())
        });

    assert!(eco.connect().is_empty());
    eco.start_all();

    let alice = pub2
        .orm()
        .create("User", vmap! { "name" => "alice" })
        .unwrap();
    let bob = pub2
        .orm()
        .create("User", vmap! { "name" => "bob" })
        .unwrap();
    let carol = pub2
        .orm()
        .create("User", vmap! { "name" => "carol" })
        .unwrap();
    pub2.orm()
        .create(
            "Friendship",
            vmap! { "user1_id" => alice.id.raw(), "user2_id" => bob.id.raw() },
        )
        .unwrap();
    let f2 = pub2
        .orm()
        .create(
            "Friendship",
            vmap! { "user1_id" => bob.id.raw(), "user2_id" => carol.id.raw() },
        )
        .unwrap();

    // Friends-of-friends traversal works on the subscriber.
    assert!(eventually(Duration::from_secs(5), || {
        neo4j_adapter
            .traverse("friends", alice.id, 2)
            .map(|ids| ids == vec![bob.id, carol.id])
            .unwrap_or(false)
    }));

    // Unfriending removes the edge.
    pub2.orm().destroy("Friendship", f2.id).unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        neo4j_adapter
            .traverse("friends", alice.id, 2)
            .map(|ids| ids == vec![bob.id])
            .unwrap_or(false)
    }));

    eco.stop_all();
}

/// Example 3 (Fig. 7): MongoDB array attribute into SQL through a virtual
/// attribute setter that explodes it into an `interests` table.
#[test]
fn mongodb_arrays_into_sql_via_virtual_attribute() {
    let eco = Ecosystem::new();
    let pub3 = eco.add_node(
        SynapseConfig::new("pub3"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub3.orm().define_model(ModelSchema::open("User")).unwrap();
    pub3.publish(Publication::model("User").field("interests"))
        .unwrap();

    let sub3b = eco.add_node(
        SynapseConfig::new("sub3b"),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub3b
        .orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    sub3b
        .orm()
        .define_model(
            ModelSchema::new("Interest")
                .field("tag")
                .belongs_to("user", "User"),
        )
        .unwrap();
    sub3b
        .subscribe(Subscription::model("User", "pub3").field_as("interests", "interests_virt"))
        .unwrap();
    // The virtual setter: replace the user's Interest rows.
    sub3b
        .orm()
        .virtuals()
        .setter("User", "interests_virt", |orm, record, value| {
            let existing = orm.where_eq("Interest", "user_id", record.id.raw())?;
            for e in existing {
                orm.destroy("Interest", e.id)?;
            }
            if let Some(tags) = value.as_array() {
                for tag in tags {
                    orm.create(
                        "Interest",
                        vmap! { "tag" => tag.clone(), "user_id" => record.id.raw() },
                    )?;
                }
            }
            Ok(())
        });

    assert!(eco.connect().is_empty());
    eco.start_all();

    let user = pub3
        .orm()
        .create(
            "User",
            vmap! { "interests" => synapse_repro::model::varray!["cats", "dogs"] },
        )
        .unwrap();

    assert!(eventually(Duration::from_secs(5), || {
        sub3b
            .orm()
            .where_eq("Interest", "user_id", user.id.raw())
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    }));

    // Updating interests replaces the rows.
    pub3.orm()
        .update(
            "User",
            user.id,
            vmap! { "interests" => synapse_repro::model::varray!["fish"] },
        )
        .unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        sub3b
            .orm()
            .where_eq("Interest", "user_id", user.id.raw())
            .map(|v| v.len() == 1 && v[0].get("tag").as_str() == Some("fish"))
            .unwrap_or(false)
    }));

    eco.stop_all();
}

/// §3.2: an ephemeral publisher (no DB) feeding an analytics subscriber.
#[test]
fn ephemeral_clicks_reach_analytics_without_local_storage() {
    let eco = Ecosystem::new();
    let frontend = eco.add_node(
        SynapseConfig::new("frontend"),
        Arc::new(synapse_repro::orm::adapters::EphemeralAdapter::new()),
    );
    frontend
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    frontend
        .publish(
            Publication::model("Click")
                .fields(&["target", "user_id"])
                .ephemeral(),
        )
        .unwrap();

    let analytics = eco.add_node(
        SynapseConfig::new("analytics").mode(DeliveryMode::Weak),
        Arc::new(StretcherAdapter::new(LatencyModel::off())),
    );
    analytics
        .orm()
        .define_model(ModelSchema::open("Click"))
        .unwrap();
    analytics
        .subscribe(Subscription::model("Click", "frontend").fields(&["target", "user_id"]))
        .unwrap();

    assert!(eco.connect().is_empty());
    eco.start_all();

    for i in 0..20 {
        frontend
            .orm()
            .create("Click", vmap! { "target" => "buy", "user_id" => i })
            .unwrap();
    }
    // The frontend stored nothing...
    assert_eq!(frontend.orm().count("Click").unwrap(), 0);
    // ...but analytics got every event.
    assert!(eventually(Duration::from_secs(5), || {
        analytics
            .orm()
            .count("Click")
            .map(|n| n == 20)
            .unwrap_or(false)
    }));

    eco.stop_all();
}

/// Static checking (§4.5): subscribing to unpublished models or attributes
/// is reported at connect time.
#[test]
fn static_checks_catch_unpublished_subscriptions() {
    let eco = Ecosystem::new();
    let publisher = eco.add_node(
        SynapseConfig::new("pub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    publisher
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    publisher
        .publish(Publication::model("User").field("name"))
        .unwrap();

    let subscriber = eco.add_node(
        SynapseConfig::new("sub"),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    subscriber
        .orm()
        .define_model(ModelSchema::open("User"))
        .unwrap();
    subscriber
        .orm()
        .define_model(ModelSchema::open("Ghost"))
        .unwrap();
    subscriber
        .subscribe(
            Subscription::model("User", "pub")
                .field("name")
                .field("email"),
        )
        .unwrap();
    subscriber
        .subscribe(Subscription::model("Ghost", "pub").field("x"))
        .unwrap();
    subscriber
        .subscribe(Subscription::model("User", "nowhere").field("name"))
        .unwrap();

    let violations = eco.connect();
    assert_eq!(violations.len(), 3, "{violations:?}");
    assert!(violations.iter().any(|v| v.contains("email")));
    assert!(violations.iter().any(|v| v.contains("Ghost")));
    assert!(violations.iter().any(|v| v.contains("nowhere")));
}
