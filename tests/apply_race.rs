//! Regression test for the copier-vs-worker apply race (ROADMAP's
//! subscriber gap): `advance_latest` and the ORM apply used to be two
//! separate steps, so two threads carrying different versions of the same
//! object could *both* pass the freshness check before either applied —
//! and the thread carrying the **older** version could write the row last,
//! leaving the database stale while the version store says fresh.
//!
//! The fix holds a per-object apply slot across the freshness check and
//! the ORM writes. `Subscriber::serialize_applies(false)` is a test hook
//! that bypasses the slot, re-exposing the original interleaving so this
//! test can prove it reproduces the bug (stale value lands last) and that
//! the default path fixes it (fresh value survives).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use synapse_repro::core::testing::emulate_delivery;
use synapse_repro::core::{
    DeliveryMode, DepName, Ecosystem, Operation, Publication, Subscription, SynapseConfig,
    WriteMessage,
};
use synapse_repro::db::LatencyModel;
use synapse_repro::model::{Id, ModelSchema, Record, Value};
use synapse_repro::orm::adapters::{ActiveRecordAdapter, MongoidAdapter};
use synapse_repro::orm::CallbackPoint;

const OBJECT: Id = Id(7);

/// Builds a weak-mode message for the shared object carrying `version`
/// in its dependency map.
fn object_msg(operation: &str, key: u64, version: u64, name: &str) -> WriteMessage {
    let mut attrs = BTreeMap::new();
    attrs.insert("name".to_owned(), Value::from(name));
    let record = Record::with_attrs("User", OBJECT, attrs);
    WriteMessage {
        app: "pub1".to_owned(),
        operations: vec![Operation::from_record(operation, &record)],
        dependencies: [(key, version)].into_iter().collect(),
        published_at: 0,
        generation: 1,
        vectors: BTreeMap::new(),
    }
}

/// Runs the forced interleaving once and returns the final row value.
///
/// Thread B processes the *stale* update (version 1). A `BeforeUpdate`
/// callback recognizes B's payload, signals the main thread, and parks —
/// B is now past the freshness check but before its ORM write. The main
/// thread then processes the *fresh* update (version 2) end to end and
/// releases B. Without per-object serialization B's stale write lands
/// last; with it, the main thread blocks on the apply slot until B
/// finishes, so the fresh write always wins.
fn race_once(serialize: bool) -> String {
    let eco = Ecosystem::new();
    let pub1 = eco.add_node(
        SynapseConfig::new("pub1").mode(DeliveryMode::Weak),
        Arc::new(MongoidAdapter::new("mongodb", LatencyModel::off())),
    );
    pub1.orm().define_model(ModelSchema::open("User")).unwrap();
    pub1.publish(Publication::model("User").field("name"))
        .unwrap();

    let sub = eco.add_node(
        SynapseConfig::new("sub1").mode(DeliveryMode::Weak),
        Arc::new(ActiveRecordAdapter::new("postgresql", LatencyModel::off())),
    );
    sub.orm()
        .define_model(ModelSchema::new("User").field("name"))
        .unwrap();
    sub.subscribe(Subscription::model("User", "pub1").field("name"))
        .unwrap();
    sub.set_publisher_mode("pub1", DeliveryMode::Weak);
    sub.subscriber().serialize_applies(serialize);

    let key = sub
        .config()
        .dep_space
        .key(&DepName::object("pub1", "User", OBJECT));

    // Seed the row through the replication path (subscribed models are
    // owner-write-only) so both racing operations are plain updates.
    sub.subscriber()
        .process(&emulate_delivery(&object_msg("create", key, 0, "v0")))
        .unwrap();

    // Rendezvous: B announces it is inside the race window, then waits
    // (bounded) for the fresh apply to finish.
    let b_inside = Arc::new((Mutex::new(false), Condvar::new()));
    let fresh_done = Arc::new(AtomicBool::new(false));
    {
        let b_inside = b_inside.clone();
        let fresh_done = fresh_done.clone();
        sub.orm()
            .on("User", CallbackPoint::BeforeUpdate, move |_, rec| {
                if rec.get("name").as_str() == Some("v1") {
                    let (lock, cvar) = &*b_inside;
                    *lock.lock().unwrap() = true;
                    cvar.notify_all();
                    // Bounded wait: under the fix the fresh apply *cannot*
                    // proceed while we hold the slot, so this times out and B
                    // simply applies first.
                    let deadline = std::time::Instant::now() + Duration::from_millis(400);
                    while !fresh_done.load(Ordering::SeqCst) && std::time::Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                Ok(())
            });
    }

    let stale = emulate_delivery(&object_msg("update", key, 1, "v1"));
    let fresh = emulate_delivery(&object_msg("update", key, 2, "v2"));

    let subscriber = sub.subscriber().clone();
    let b = std::thread::spawn(move || subscriber.process(&stale));

    // Wait until B is parked inside the race window.
    {
        let (lock, cvar) = &*b_inside;
        let mut inside = lock.lock().unwrap();
        while !*inside {
            let (guard, timeout) = cvar.wait_timeout(inside, Duration::from_secs(2)).unwrap();
            inside = guard;
            assert!(!timeout.timed_out(), "B never reached the race window");
        }
    }

    sub.subscriber().process(&fresh).unwrap();
    fresh_done.store(true, Ordering::SeqCst);
    b.join().unwrap().unwrap();

    sub.orm()
        .find("User", OBJECT)
        .unwrap()
        .expect("row exists")
        .get("name")
        .as_str()
        .expect("name is a string")
        .to_owned()
}

/// With per-object serialization bypassed, the historical interleaving
/// lands the stale value last — this is the bug the fix closes. If this
/// assertion ever starts failing, the forced schedule no longer exercises
/// the race and the test needs a new trigger.
#[test]
fn bypassing_apply_slots_reproduces_the_stale_write() {
    assert_eq!(race_once(false), "v1");
}

/// The default path holds the apply slot across the freshness check and
/// the ORM write: the fresh value survives the same forced schedule.
#[test]
fn apply_slots_serialize_the_racing_pair() {
    assert_eq!(race_once(true), "v2");
}
