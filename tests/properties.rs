//! Property-based tests (proptest) on the core invariants: wire-format
//! round-tripping, version-store protocol algebra, engine CRUD coherence
//! across all five families, and end-to-end replication convergence.

use proptest::prelude::*;
use std::collections::BTreeMap;
use synapse_repro::core::{normalize_dep_sets, DepName, Operation, WriteMessage};
use synapse_repro::db::{profiles, Filter, LatencyModel, Query, QueryResult, Row};
use synapse_repro::model::{wire, Id, Value};
use synapse_repro::versionstore::{BumpScratch, VersionStore};

/// Strategy for arbitrary dynamic values (bounded depth).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN/∞ intentionally encode as null.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 äöü❤\\\\\"\n\t]{0,24}".prop_map(Value::from),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::btree_map("[a-z_]{1,8}", inner, 0..5).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// Every value round-trips through the JSON wire format.
    #[test]
    fn wire_roundtrip(v in value_strategy()) {
        let encoded = wire::encode(&v);
        let decoded = wire::decode(&encoded).expect("canonical output parses");
        prop_assert_eq!(decoded, v);
    }

    /// Encoding is canonical: decode(encode(v)) re-encodes identically.
    #[test]
    fn wire_encoding_is_canonical(v in value_strategy()) {
        let once = wire::encode(&v);
        let twice = wire::encode(&wire::decode(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// Write messages round-trip through the broker payload format.
    #[test]
    fn message_roundtrip(
        ops in prop::collection::vec(
            ("[a-z]{4,8}", 1u64..1000, prop::collection::btree_map("[a-z]{1,6}", value_strategy(), 0..4)),
            1..4,
        ),
        deps in prop::collection::btree_map(any::<u64>(), any::<u64>(), 0..6),
        generation in 1u64..10,
    ) {
        let msg = WriteMessage {
            app: "prop".into(),
            operations: ops
                .into_iter()
                .map(|(op, id, attributes)| Operation {
                    operation: op,
                    types: vec!["Model".into()],
                    id: Id(id),
                    attributes,
                })
                .collect(),
            dependencies: deps,
            published_at: 42,
            generation,
            vectors: BTreeMap::new(),
        };
        let decoded = WriteMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// The publisher's linear hash-set dependency normalization must
    /// produce exactly the ordered `(write_deps, read_deps)` pair of the
    /// historical quadratic code: in-place `contains` dedup of each list,
    /// then dropping from reads every name present in writes.
    #[test]
    fn dep_normalization_matches_quadratic_reference(
        writes in prop::collection::vec(0u8..12, 0..24),
        reads in prop::collection::vec(0u8..12, 0..24),
    ) {
        fn quadratic_dedup(deps: &mut Vec<DepName>) {
            let mut i = 1;
            while i < deps.len() {
                if deps[..i].contains(&deps[i]) {
                    deps.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        let name = |i: &u8| DepName::named(&format!("app/dep/{i}"));
        let mut new_writes: Vec<DepName> = writes.iter().map(name).collect();
        let mut new_reads: Vec<DepName> = reads.iter().map(name).collect();
        let mut old_writes = new_writes.clone();
        let mut old_reads = new_reads.clone();

        quadratic_dedup(&mut old_writes);
        quadratic_dedup(&mut old_reads);
        old_reads.retain(|d| !old_writes.contains(d));

        normalize_dep_sets(&mut new_writes, &mut new_reads);
        prop_assert_eq!(new_writes, old_writes);
        prop_assert_eq!(new_reads, old_reads);
    }

    /// `publish_bump_into` is observationally identical to `publish_bump`:
    /// replaying any script through both yields the same dependency values
    /// at every step (scratch reuse must leak nothing between calls).
    #[test]
    fn bump_into_replays_identically_to_bump(
        script in prop::collection::vec(
            prop::collection::vec((0u64..10, any::<bool>()), 1..6),
            1..24,
        ),
    ) {
        let reference = VersionStore::new(4);
        let reused = VersionStore::new(4);
        let mut scratch = BumpScratch::default();
        let mut out = Vec::new();
        for deps in &script {
            let expected = reference.publish_bump(deps).unwrap();
            reused.publish_bump_into(deps, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(&out, &expected);
        }
    }

    /// Concurrent publishers mixing both bump APIs never lose or duplicate
    /// an increment: final `ops` counters equal each key's total occurrence
    /// count, and every call returns values for exactly its keys in order.
    #[test]
    fn concurrent_mixed_bump_apis_count_every_increment(
        scripts in prop::collection::vec(
            prop::collection::vec(
                (prop::collection::vec((0u64..10, any::<bool>()), 1..4), any::<bool>()),
                1..12,
            ),
            2..4,
        ),
    ) {
        use std::sync::Arc;
        let store = Arc::new(VersionStore::new(4));
        let handles: Vec<_> = scripts
            .clone()
            .into_iter()
            .map(|script| {
                let store = store.clone();
                std::thread::spawn(move || {
                    let mut scratch = BumpScratch::default();
                    let mut out = Vec::new();
                    for (deps, use_into) in script {
                        if use_into {
                            store
                                .publish_bump_into(&deps, &mut scratch, &mut out)
                                .unwrap();
                        } else {
                            out = store.publish_bump(&deps).unwrap();
                        }
                        let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
                        let expected: Vec<u64> = deps.iter().map(|(k, _)| *k).collect();
                        assert_eq!(keys, expected, "values cover the call's keys in order");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for script in &scripts {
            for (deps, _) in script {
                for (k, _) in deps {
                    *counts.entry(*k).or_default() += 1;
                }
            }
        }
        for (key, count) in counts {
            prop_assert_eq!(store.ops(key).unwrap(), count);
        }
    }

    /// Version-store invariant: after any interleaving of bumps, `ops`
    /// equals the number of operations that referenced the key, and
    /// `version`-derived message values are monotone per key for writes.
    #[test]
    fn version_store_counters_are_consistent(
        script in prop::collection::vec((0u64..8, any::<bool>()), 1..64),
    ) {
        let store = VersionStore::new(3);
        let mut expected_ops: BTreeMap<u64, u64> = BTreeMap::new();
        let mut last_write_value: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, is_write) in &script {
            let out = store.publish_bump(&[(*key, *is_write)]).unwrap();
            let (_, value) = out[0];
            *expected_ops.entry(*key).or_default() += 1;
            if *is_write {
                // Write values strictly increase per key.
                if let Some(prev) = last_write_value.get(key) {
                    prop_assert!(value > *prev);
                }
                last_write_value.insert(*key, value);
            }
        }
        for (key, ops) in expected_ops {
            prop_assert_eq!(store.ops(key).unwrap(), ops);
        }
    }

    /// Subscriber algebra: a message's dependencies are satisfied exactly
    /// when every key has been applied at least its required count.
    #[test]
    fn wait_satisfaction_matches_apply_counts(
        required in prop::collection::btree_map(0u64..6, 0u64..5, 1..5),
        applies in prop::collection::vec(0u64..6, 0..24),
    ) {
        let store = VersionStore::new(2);
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for k in &applies {
            store.apply(&[*k]).unwrap();
            *counts.entry(*k).or_default() += 1;
        }
        let deps: Vec<(u64, u64)> = required.iter().map(|(k, v)| (*k, *v)).collect();
        let expected = required
            .iter()
            .all(|(k, v)| counts.get(k).copied().unwrap_or(0) >= *v);
        prop_assert_eq!(store.satisfied(&deps).unwrap(), expected);
    }

    /// Engine coherence: for every engine family, a random sequence of
    /// upserts/deletes ends with exactly the surviving documents readable.
    #[test]
    fn engines_agree_on_surviving_rows(
        ops in prop::collection::vec((1u64..12, any::<bool>(), 0i64..100), 1..32),
    ) {
        for vendor in ["postgresql", "mysql", "mongodb", "cassandra", "elasticsearch", "neo4j"] {
            let engine = profiles::by_name(vendor, LatencyModel::off());
            engine.execute(&Query::CreateTable { table: "t".into() }).unwrap();
            if vendor == "postgresql" || vendor == "mysql" {
                // Strict SQL column set.
            }
            let mut model: BTreeMap<u64, i64> = BTreeMap::new();
            for (id, delete, n) in &ops {
                if *delete {
                    engine
                        .execute(&Query::Delete {
                            table: "t".into(),
                            filter: Filter::ById(Id(*id)),
                        })
                        .unwrap();
                    model.remove(id);
                } else if model.contains_key(id) {
                    let mut set = Row::new();
                    set.insert("n".into(), Value::from(*n));
                    engine
                        .execute(&Query::Update {
                            table: "t".into(),
                            filter: Filter::ById(Id(*id)),
                            set,
                            unset: vec![],
                        })
                        .unwrap();
                    model.insert(*id, *n);
                } else {
                    let mut row = Row::new();
                    row.insert("n".into(), Value::from(*n));
                    engine
                        .execute(&Query::Insert {
                            table: "t".into(),
                            id: Id(*id),
                            row,
                        })
                        .unwrap();
                    model.insert(*id, *n);
                }
            }
            let rows = match engine
                .execute(&Query::Select {
                    table: "t".into(),
                    filter: Filter::All,
                    order: None,
                    limit: None,
                })
                .unwrap()
            {
                QueryResult::Rows(rows) => rows,
                other => panic!("unexpected {other:?}"),
            };
            let got: BTreeMap<u64, i64> = rows
                .into_iter()
                .map(|(id, row)| (id.raw(), row["n"].as_int().unwrap()))
                .collect();
            prop_assert_eq!(got, model.clone(), "vendor {}", vendor);
        }
    }

    /// Broker delivery algebra: across arbitrary interleavings of publish,
    /// pop, ack, nack, worker crash (forgetting in-flight deliveries), and
    /// broker restart, (a) a payload is never delivered again after its
    /// ack, and (b) every unacked payload remains deliverable — the
    /// at-least-once contract the §4.2 journal relies on.
    #[test]
    fn broker_interleavings_preserve_at_least_once(
        script in prop::collection::vec(0u8..5, 1..64),
    ) {
        use std::collections::{BTreeSet, VecDeque};
        use std::time::Duration;
        use synapse_repro::broker::{Broker, Delivery, QueueConfig};

        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        let consumer = broker.consumer("q").unwrap();

        let mut next = 0u64;
        let mut acked: BTreeSet<String> = BTreeSet::new();
        let mut outstanding: BTreeSet<String> = BTreeSet::new();
        let mut inflight: VecDeque<Delivery> = VecDeque::new();
        for action in &script {
            match action {
                0 => {
                    let payload = format!("m{next}");
                    next += 1;
                    broker.publish("x", &payload).unwrap();
                    outstanding.insert(payload);
                }
                1 => {
                    if let Some(d) = consumer.pop(Duration::ZERO) {
                        prop_assert!(
                            !acked.contains(d.payload.as_str()),
                            "delivered again after ack: {}", d.payload
                        );
                        inflight.push_back(d);
                    }
                }
                2 => {
                    if let Some(d) = inflight.pop_front() {
                        // A stale tag (restart already requeued it) is a
                        // spurious ack: the broker must reject it, so the
                        // payload stays deliverable.
                        if consumer.ack(d.tag) {
                            acked.insert(d.payload.to_string());
                            outstanding.remove(d.payload.as_str());
                        }
                    }
                }
                3 => {
                    if let Some(d) = inflight.pop_front() {
                        consumer.nack(d.tag);
                    }
                }
                _ => {
                    // Broker restart + worker crash: the broker requeues
                    // all unacked deliveries; the worker forgets its
                    // in-flight list.
                    broker.recover();
                    inflight.clear();
                }
            }
        }

        // Requeue whatever is still un-decided, then drain: at-least-once
        // means exactly the unacked payloads come back, each at least once.
        broker.recover();
        let mut delivered: BTreeSet<String> = BTreeSet::new();
        while let Some(d) = consumer.pop(Duration::from_millis(10)) {
            prop_assert!(
                !acked.contains(d.payload.as_str()),
                "delivered again after ack: {}", d.payload
            );
            delivered.insert(d.payload.to_string());
            consumer.ack(d.tag);
        }
        prop_assert_eq!(delivered, outstanding);
    }

    /// Batched FIFO: with no redelivery in play, any interleaving of
    /// `publish_batch` and `pop_batch` yields every payload exactly once,
    /// in exact publish order — batching must not reorder a queue.
    #[test]
    fn publish_batch_pop_batch_preserve_fifo(
        script in prop::collection::vec((0u8..2, 1usize..9), 1..48),
    ) {
        use std::time::Duration;
        use synapse_repro::broker::{Broker, QueueConfig};

        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        let consumer = broker.consumer("q").unwrap();

        let mut next = 0u64;
        let mut expected = 0u64;
        for (action, n) in &script {
            match action {
                0 => {
                    let payloads: Vec<String> =
                        (0..*n).map(|_| { let p = format!("m{next}"); next += 1; p }).collect();
                    broker.publish_batch("x", payloads).unwrap();
                }
                _ => {
                    for d in consumer.pop_batch(*n, Duration::ZERO) {
                        let want = format!("m{expected}");
                        prop_assert_eq!(d.payload.as_str(), want.as_str(), "out of FIFO order");
                        expected += 1;
                        consumer.ack(d.tag);
                    }
                }
            }
        }
        // Drain the tail: everything published must still arrive, in order.
        loop {
            let batch = consumer.pop_batch(16, Duration::ZERO);
            if batch.is_empty() { break; }
            for d in batch {
                let want = format!("m{expected}");
                prop_assert_eq!(d.payload.as_str(), want.as_str());
                expected += 1;
                consumer.ack(d.tag);
            }
        }
        prop_assert_eq!(expected, next, "every published payload delivered once");
    }

    /// The batched ops obey the same at-least-once algebra as the
    /// single-message ops: across interleavings of `publish_batch`,
    /// `pop_batch`, `ack_batch`, nack, and broker restart, an acked
    /// payload never reappears and every unacked payload stays
    /// deliverable.
    #[test]
    fn batched_interleavings_preserve_at_least_once(
        script in prop::collection::vec((0u8..5, 1usize..7), 1..48),
    ) {
        use std::collections::{BTreeSet, VecDeque};
        use std::time::Duration;
        use synapse_repro::broker::{Broker, Delivery, QueueConfig};

        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig::default());
        broker.bind("x", "q");
        let consumer = broker.consumer("q").unwrap();

        let mut next = 0u64;
        let mut acked: BTreeSet<String> = BTreeSet::new();
        let mut outstanding: BTreeSet<String> = BTreeSet::new();
        let mut inflight: VecDeque<Delivery> = VecDeque::new();
        for (action, n) in &script {
            match action {
                0 => {
                    let payloads: Vec<String> =
                        (0..*n).map(|_| { let p = format!("m{next}"); next += 1; p }).collect();
                    for p in &payloads {
                        outstanding.insert(p.clone());
                    }
                    broker.publish_batch("x", payloads).unwrap();
                }
                1 => {
                    for d in consumer.pop_batch(*n, Duration::ZERO) {
                        prop_assert!(
                            !acked.contains(d.payload.as_str()),
                            "delivered again after ack: {}", d.payload
                        );
                        inflight.push_back(d);
                    }
                }
                2 => {
                    // Batch-ack the oldest `n` in-flight deliveries. The
                    // in-flight list is cleared on every restart, so its
                    // tags are always live — `ack_batch` must report every
                    // one as a hit, and each payload is then decided.
                    let take: Vec<Delivery> =
                        (0..*n).filter_map(|_| inflight.pop_front()).collect();
                    let tags: Vec<u64> = take.iter().map(|d| d.tag).collect();
                    let hits = consumer.ack_batch(&tags);
                    prop_assert_eq!(
                        hits as usize, take.len(),
                        "in-flight tags are live between restarts"
                    );
                    for d in &take {
                        acked.insert(d.payload.to_string());
                        outstanding.remove(d.payload.as_str());
                    }
                }
                3 => {
                    if let Some(d) = inflight.pop_front() {
                        consumer.nack(d.tag);
                    }
                }
                _ => {
                    broker.recover();
                    inflight.clear();
                }
            }
        }

        // Final drain: everything not known-acked must come back.
        broker.recover();
        let mut delivered: BTreeSet<String> = BTreeSet::new();
        loop {
            let batch = consumer.pop_batch(8, Duration::from_millis(10));
            if batch.is_empty() { break; }
            for d in batch {
                prop_assert!(
                    !acked.contains(d.payload.as_str()),
                    "delivered again after ack: {}", d.payload
                );
                delivered.insert(d.payload.to_string());
                consumer.ack(d.tag);
            }
        }
        for p in &acked {
            prop_assert!(!delivered.contains(p));
        }
        for p in &outstanding {
            prop_assert!(
                delivered.contains(p) || acked.contains(p),
                "silently lost: {}", p
            );
        }
    }
    /// Partitioned delivery FIFO: with keyed routing, any interleaving of
    /// `publish_batch_routed`, targeted `pop_batch_from`, and
    /// `steal_batch` (with immediate acks, so no redelivery) yields every
    /// key's payloads in exact publish order — a key lives in one
    /// partition, and pops and steals both take from the front of that
    /// partition's ready run.
    #[test]
    fn routed_partitions_preserve_per_key_fifo(
        script in prop::collection::vec((0u8..3, 1usize..7, 0usize..300), 1..48),
        partitions in 1usize..9,
    ) {
        use std::collections::BTreeMap;
        use std::time::Duration;
        use synapse_repro::broker::{Broker, Delivery, QueueConfig};

        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig { max_len: None, partitions });
        broker.bind("x", "q");
        let consumer = broker.consumer("q").unwrap();
        let parts = consumer.partition_count();

        let mut published: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
        let mut check = |d: &Delivery| -> Result<(), TestCaseError> {
            let (key, seq) = d
                .payload
                .as_str()
                .strip_prefix('k')
                .and_then(|s| s.split_once('-'))
                .map(|(k, s)| (k.parse::<u64>().unwrap(), s.parse::<u64>().unwrap()))
                .unwrap();
            let expect = seen.entry(key).or_default();
            prop_assert_eq!(seq, *expect, "key {} out of publish order", key);
            *expect += 1;
            Ok(())
        };
        for (action, n, sel) in &script {
            match action {
                0 => {
                    // Batch of `n` messages over a rotating window of the
                    // five keys; payloads carry (key, per-key sequence).
                    let batch: Vec<(synapse_repro::broker::SharedStr, u64, u64)> = (0..*n)
                        .map(|i| {
                            let key = 1 + ((*sel + i) % 5) as u64;
                            let seq = published.entry(key).or_default();
                            let payload = format!("k{key}-{seq}");
                            *seq += 1;
                            (payload.into(), 0, key)
                        })
                        .collect();
                    broker.publish_batch_routed("x", batch).unwrap();
                }
                1 => {
                    for d in consumer.pop_batch_from(*sel % parts, *n, Duration::ZERO) {
                        check(&d)?;
                        consumer.ack(d.tag);
                    }
                }
                _ => {
                    for d in consumer.steal_batch(*sel % parts, *n) {
                        check(&d)?;
                        consumer.ack(d.tag);
                    }
                }
            }
        }
        // Drain the tail partition by partition: per-key order must hold
        // to the last message, and nothing may be left behind.
        for p in 0..parts {
            loop {
                let batch = consumer.pop_batch_from(p, 16, Duration::ZERO);
                if batch.is_empty() { break; }
                for d in batch {
                    check(&d)?;
                    consumer.ack(d.tag);
                }
            }
        }
        prop_assert_eq!(seen, published, "every key drained to its publish count");
    }

    /// At-least-once survives work stealing: across interleavings of keyed
    /// batch publishes, targeted pops, steals, batch acks, nacks, and
    /// broker restarts, an acked payload never reappears and every unacked
    /// payload stays deliverable — stealing relocates a delivery, it never
    /// duplicates or loses one.
    #[test]
    fn stolen_deliveries_preserve_at_least_once(
        script in prop::collection::vec((0u8..6, 1usize..7, 0usize..300), 1..48),
        partitions in 1usize..9,
    ) {
        use std::collections::{BTreeSet, VecDeque};
        use std::time::Duration;
        use synapse_repro::broker::{Broker, Delivery, QueueConfig};

        let broker = Broker::new();
        broker.declare_queue("q", QueueConfig { max_len: None, partitions });
        broker.bind("x", "q");
        let consumer = broker.consumer("q").unwrap();
        let parts = consumer.partition_count();

        let mut next = 0u64;
        let mut acked: BTreeSet<String> = BTreeSet::new();
        let mut outstanding: BTreeSet<String> = BTreeSet::new();
        let mut inflight: VecDeque<Delivery> = VecDeque::new();
        for (action, n, sel) in &script {
            match action {
                0 => {
                    let batch: Vec<(synapse_repro::broker::SharedStr, u64, u64)> = (0..*n)
                        .map(|_| {
                            let payload = format!("m{next}");
                            let key = 1 + next % 7;
                            next += 1;
                            outstanding.insert(payload.clone());
                            (payload.into(), 0, key)
                        })
                        .collect();
                    broker.publish_batch_routed("x", batch).unwrap();
                }
                1 => {
                    for d in consumer.pop_batch_from(*sel % parts, *n, Duration::ZERO) {
                        prop_assert!(
                            !acked.contains(d.payload.as_str()),
                            "delivered again after ack: {}", d.payload
                        );
                        inflight.push_back(d);
                    }
                }
                2 => {
                    for d in consumer.steal_batch(*sel % parts, *n) {
                        prop_assert!(
                            !acked.contains(d.payload.as_str()),
                            "delivered again after ack: {}", d.payload
                        );
                        inflight.push_back(d);
                    }
                }
                3 => {
                    let take: Vec<Delivery> =
                        (0..*n).filter_map(|_| inflight.pop_front()).collect();
                    let tags: Vec<u64> = take.iter().map(|d| d.tag).collect();
                    let hits = consumer.ack_batch(&tags);
                    prop_assert_eq!(
                        hits as usize, take.len(),
                        "in-flight tags are live between restarts"
                    );
                    for d in &take {
                        acked.insert(d.payload.to_string());
                        outstanding.remove(d.payload.as_str());
                    }
                }
                4 => {
                    if let Some(d) = inflight.pop_front() {
                        consumer.nack(d.tag);
                    }
                }
                _ => {
                    broker.recover();
                    inflight.clear();
                }
            }
        }

        // Final drain over the whole queue: exactly the undecided payloads
        // must come back, wherever stealing left them.
        broker.recover();
        let mut delivered: BTreeSet<String> = BTreeSet::new();
        loop {
            let batch = consumer.pop_batch(8, Duration::from_millis(10));
            if batch.is_empty() { break; }
            for d in batch {
                prop_assert!(
                    !acked.contains(d.payload.as_str()),
                    "delivered again after ack: {}", d.payload
                );
                delivered.insert(d.payload.to_string());
                consumer.ack(d.tag);
            }
        }
        prop_assert_eq!(delivered, outstanding);
    }
}

/// End-to-end convergence under random operation sequences: whatever the
/// publisher ends with, the subscriber ends with (causal mode).
#[test]
fn replication_converges_on_random_histories() {
    use proptest::test_runner::{Config, TestRunner};
    let mut runner = TestRunner::new(Config {
        cases: 12,
        ..Config::default()
    });
    let strategy = prop::collection::vec((1u64..8, 0u8..3, 0i64..100), 1..25);
    runner
        .run(&strategy, |ops| {
            let eco = synapse_repro::core::Ecosystem::new();
            let pair = synapse_apps::stress::build_pair(
                &eco,
                "mongodb",
                "postgresql",
                synapse_repro::core::DeliveryMode::Causal,
                2,
                LatencyModel::off(),
            );
            eco.connect();
            eco.start_all();
            let orm = pair.publisher.orm();
            for (id, kind, n) in &ops {
                let exists = orm.find("Post", Id(*id)).unwrap().is_some();
                match kind {
                    0 if !exists => {
                        orm.create_with_id(
                            "Post",
                            Id(*id),
                            synapse_repro::model::vmap! { "author_id" => *n, "body" => "b" },
                        )
                        .unwrap();
                    }
                    1 if exists => {
                        orm.update(
                            "Post",
                            Id(*id),
                            synapse_repro::model::vmap! { "author_id" => *n },
                        )
                        .unwrap();
                    }
                    2 if exists => {
                        orm.destroy("Post", Id(*id)).unwrap();
                    }
                    _ => {}
                }
            }
            // Wait for convergence.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let target = pair.publisher.publisher_stats().messages_published;
            while pair.subscriber.subscriber_stats().messages_processed < target
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let pub_posts = orm.all("Post").unwrap();
            let sub_posts = pair.subscriber.orm().all("Post").unwrap();
            assert_eq!(pub_posts.len(), sub_posts.len());
            for (p, s) in pub_posts.iter().zip(sub_posts.iter()) {
                assert_eq!(p.id, s.id);
                assert_eq!(p.get("author_id"), s.get("author_id"));
            }
            eco.stop_all();
            Ok(())
        })
        .unwrap();
}
