//! Facade crate for the Synapse reproduction workspace.
//!
//! Re-exports every subsystem so the `examples/` and `tests/` directories at
//! the repository root can exercise the whole stack through one dependency.
//! Library users should depend on the individual crates (`synapse-core`,
//! `synapse-orm`, …) instead.

pub use synapse_apps as apps;
pub use synapse_broker as broker;
pub use synapse_core as core;
pub use synapse_db as db;
pub use synapse_faults as faults;
pub use synapse_model as model;
pub use synapse_mvc as mvc;
pub use synapse_orm as orm;
pub use synapse_versionstore as versionstore;
